"""Metrics-at-scale benchmark: streaming accumulators vs. retained objects.

Feeds a synthetic million-request-class observation stream straight into a
:class:`~repro.cluster.metrics.MetricsCollector` in both modes and measures
what each mode *keeps*:

* ``retained_bytes`` — tracemalloc-traced bytes still allocated once the
  feed finishes (the collector's steady-state footprint: whole
  Request/Task object graphs in retained mode, compact counters and
  ``array('d')`` buffers in streaming mode),
* ``peak_bytes`` — the traced high-water mark across feed + summary,
* ``feed_s`` / ``summary_s`` — the record-time vs. summarisation-time
  split (retained mode defers all aggregation work to ``summary()``;
  streaming pays a little per record and summarises in one pass).

tracemalloc is used instead of RSS deltas because it attributes exact
allocation byte counts to this process deterministically, independent of
allocator/OS page behaviour, and both modes run under identical tracing
overhead.  The whole-process ``ru_maxrss`` is reported once per row as
context (it is a process-lifetime high-water mark, so it cannot compare
modes run in the same process).

The feed drives the collector through its public recording surface in a
realistic order (register -> stage completions -> completion notification ->
task record -> overhead sample) and the two modes must produce
**byte-identical** RunSummaries at every size — asserted here and in the
tier-1 parity suite.  The headline acceptance number: streaming retains
**>= 10x** less at 100k+ requests (~17.5x measured, through 1M requests).

Environment knobs::

    REPRO_BENCH_METRICS_SIZES=10000,100000,1000000  # sweep sizes
    REPRO_BENCH_JSON=bench_metrics_scale.json       # also write BENCH JSON here
"""

from __future__ import annotations

import gc
import json
import os
import random
import resource
import time
import tracemalloc

from conftest import run_once

from repro.cluster.metrics import MetricsCollector, MetricsConfig, RunSummary
from repro.cluster.tasks import Task
from repro.profiles.configuration import Configuration
from repro.workloads.applications import depth_recognition, image_classification
from repro.workloads.request import Job, Request

DEFAULT_SIZES = (10_000, 100_000, 1_000_000)

#: The memory-ratio assertion needs enough requests for the collector to
#: dominate interpreter noise; tiny smoke sweeps only assert parity.
MIN_REQUESTS_FOR_MEMORY_ASSERT = 100_000

#: Task configuration shared by every synthetic task (as in a real run,
#: Configuration objects are interned per plan, not per task).
TASK_CONFIG = Configuration(1, 2, 2)


def sweep_sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_METRICS_SIZES")
    if not raw:
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def feed_collector(mode: str, num_requests: int, seed: int = 42) -> MetricsCollector:
    """Drive one collector through a deterministic synthetic run."""
    rng = random.Random(seed)
    apps = (image_classification(), depth_recognition())
    collector = MetricsCollector(
        policy_name="bench",
        setting_name="synthetic",
        config=MetricsConfig(mode=mode),
    )
    for i in range(num_requests):
        workflow = apps[i % len(apps)]
        arrival = i * 2.0
        request = Request(
            request_id=i, workflow=workflow, arrival_ms=arrival, slo_ms=400.0
        )
        collector.register_request(request)
        t = arrival
        for sid in workflow.topological_order():
            t += rng.uniform(30.0, 160.0)
            request.record_stage_completion(sid, t, invoker_id=i % 16)
        collector.record_completion(request)
        task = Task(
            app_name=request.app_name,
            stage_id="s1",
            function_name=workflow.function_of("s1"),
            jobs=[Job(request=request, stage_id="s1", ready_ms=arrival)],
            config=TASK_CONFIG,
            invoker_id=i % 16,
            dispatch_ms=arrival + rng.uniform(0.0, 5.0),
            exec_ms=rng.uniform(20.0, 120.0),
        )
        task.cost_cents = rng.uniform(0.01, 0.2)
        collector.record_task(task)
        collector.record_overhead(rng.uniform(0.0, 3.0))
    return collector


def measure_mode(mode: str, num_requests: int) -> tuple[dict, RunSummary]:
    """Feed + summarise one mode under tracemalloc; returns (row, summary)."""
    gc.collect()
    tracemalloc.start()
    try:
        start = time.perf_counter()
        collector = feed_collector(mode, num_requests)
        feed_s = time.perf_counter() - start
        gc.collect()
        retained_bytes, _ = tracemalloc.get_traced_memory()
        start = time.perf_counter()
        summary = collector.summary()
        summary_s = time.perf_counter() - start
        _, peak_bytes = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    row = {
        "retained_bytes": int(retained_bytes),
        "peak_bytes": int(peak_bytes),
        "feed_s": round(feed_s, 4),
        "summary_s": round(summary_s, 4),
    }
    return row, summary


def run_metrics_scale_sweep(sizes: tuple[int, ...]) -> dict:
    rows = []
    for num_requests in sizes:
        retained_row, retained_summary = measure_mode("retained", num_requests)
        streaming_row, streaming_summary = measure_mode("streaming", num_requests)
        rows.append(
            {
                "requests": num_requests,
                "retained": retained_row,
                "streaming": streaming_row,
                "memory_ratio": round(
                    retained_row["retained_bytes"]
                    / max(1, streaming_row["retained_bytes"]),
                    2,
                ),
                "summary_speedup": round(
                    retained_row["summary_s"] / max(1e-9, streaming_row["summary_s"]), 2
                ),
                "summaries_identical": retained_summary == streaming_summary,
                "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            }
        )
    return {"benchmark": "metrics_scale", "sizes": rows}


def emit_bench_json(report: dict) -> None:
    payload = json.dumps(report, indent=2, sort_keys=True)
    print("BENCH_JSON " + json.dumps(report, sort_keys=True))
    out_path = os.environ.get("REPRO_BENCH_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")


def render_rows(report: dict) -> str:
    lines = [
        "Metrics-scale sweep  (synthetic feed, retained vs streaming collectors)",
        f"{'requests':>9}  {'retained MB':>12}  {'streaming MB':>13}  "
        f"{'memory x':>9}  {'ret summary':>12}  {'str summary':>12}",
    ]
    for row in report["sizes"]:
        lines.append(
            f"{row['requests']:>9}  "
            f"{row['retained']['retained_bytes'] / 1e6:>11.1f}M  "
            f"{row['streaming']['retained_bytes'] / 1e6:>12.1f}M  "
            f"{row['memory_ratio']:>8.1f}x  "
            f"{row['retained']['summary_s']:>11.3f}s  "
            f"{row['streaming']['summary_s']:>11.3f}s"
        )
    return "\n".join(lines)


def test_metrics_scale_memory(benchmark):
    sizes = sweep_sizes()
    report = run_once(benchmark, run_metrics_scale_sweep, sizes)
    print()
    print(render_rows(report))
    emit_bench_json(report)

    # The hard guarantee at every size: memory-only divergence.
    for row in report["sizes"]:
        assert row["summaries_identical"], row["requests"]

    # The acceptance number: streaming retains >= 10x less at 100k+ requests.
    for row in report["sizes"]:
        if row["requests"] >= MIN_REQUESTS_FOR_MEMORY_ASSERT:
            assert row["memory_ratio"] >= 10.0, row
