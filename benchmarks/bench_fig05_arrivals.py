"""Benchmark regenerating Figure 5 (job arrival interval distributions)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.arrivals import render_figure5, run_figure5


def test_fig05_arrival_intervals(benchmark):
    distributions = run_once(benchmark, run_figure5, 400, 42)
    print()
    print(render_figure5(distributions))

    by_setting = {d.setting: d for d in distributions}
    # The paper's interval ranges: heavy [10, 16.8], normal [20, 33.6], light [40, 67.2].
    assert by_setting["relaxed-heavy"].min_ms >= 10.0
    assert by_setting["relaxed-heavy"].max_ms <= 16.8
    assert by_setting["moderate-normal"].min_ms >= 20.0
    assert by_setting["moderate-normal"].max_ms <= 33.6
    assert by_setting["strict-light"].min_ms >= 40.0
    assert by_setting["strict-light"].max_ms <= 67.2
