"""Benchmark regenerating Figure 11 (sensitivity to the K parameter)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.sensitivity import render_figure11, run_figure11


def test_fig11_sensitivity_to_k(benchmark, bench_config, bench_jobs):
    points = run_once(
        benchmark,
        run_figure11,
        (1, 5, 20, 40, 80),
        setting="strict-light",
        config=bench_config,
        n_jobs=bench_jobs,
    )
    print()
    print(render_figure11(points))

    by_k = {p.k: p for p in points}
    # The search overhead grows (weakly) with K...
    assert by_k[80].mean_overhead_ms >= by_k[1].mean_overhead_ms * 0.8
    # ...while the SLO hit rate stays essentially unchanged...
    assert abs(by_k[80].slo_hit_rate - by_k[1].slo_hit_rate) <= 0.15
    # ...and the cost does not increase with more fallback candidates.
    assert by_k[80].total_cost_cents <= by_k[1].total_cost_cents * 1.10
