"""Benchmark regenerating Figure 8 (per-application SLO hit rates and cost
in each of the three workload settings)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.end_to_end import figure8_rows, render_figure8, run_end_to_end
from repro.experiments.runner import DEFAULT_POLICIES


def test_fig08_per_application_breakdown(benchmark, bench_config, bench_jobs):
    results = run_once(
        benchmark, run_end_to_end, DEFAULT_POLICIES, config=bench_config, n_jobs=bench_jobs
    )
    rows = figure8_rows(results)
    print()
    print(render_figure8(rows))

    settings = {r.setting for r in rows}
    assert settings == {"strict-light", "moderate-normal", "relaxed-heavy"}

    # ESG's per-application hit rate is never far below the per-application best.
    for setting in settings:
        for app in {r.app for r in rows if r.setting == setting}:
            app_rows = {r.policy: r for r in rows if r.setting == setting and r.app == app}
            if "ESG" not in app_rows:
                continue
            best = max(r.slo_hit_rate for r in app_rows.values())
            assert app_rows["ESG"].slo_hit_rate >= best - 0.25, (setting, app)
