"""Benchmark regenerating Figure 12 (GPU-sharing / batching ablation)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation import render_figure12, run_figure12


def test_fig12_gpu_sharing_and_batching_ablation(benchmark, bench_config, bench_jobs):
    rows = run_once(
        benchmark, run_figure12, setting="relaxed-heavy", config=bench_config, n_jobs=bench_jobs
    )
    print()
    print(render_figure12(rows))

    by_variant = {r.variant: r for r in rows}
    esg = by_variant["ESG"]
    no_sharing = by_variant["ESG w/o GPU sharing"]
    no_batching = by_variant["ESG w/o batching"]

    # Removing GPU sharing wastes GPU capacity: each task grabs a whole GPU,
    # so the consumed vGPU-time (and with it the cost) goes up substantially.
    assert no_sharing.total_vgpu_ms > esg.total_vgpu_ms
    assert no_sharing.total_cost_cents > esg.total_cost_cents

    # Removing batching costs more per job than full ESG (batching amortises
    # the fixed per-invocation work) while hit rates stay comparable.
    assert no_batching.total_cost_cents >= esg.total_cost_cents * 0.95
    assert esg.slo_hit_rate >= max(r.slo_hit_rate for r in rows) - 0.1
