"""Benchmark regenerating Figure 10 (ESG scheduling overhead distribution)
and the Section 5.3 brute-force comparison."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.overhead import (
    render_bruteforce_comparison,
    render_figure10,
    run_bruteforce_comparison,
    run_figure10,
)


def test_fig10_esg_scheduling_overhead(benchmark, bench_config, bench_jobs):
    distributions = run_once(
        benchmark,
        run_figure10,
        ("strict-light", "moderate-normal", "relaxed-heavy"),
        config=bench_config,
        group_size=3,
        n_jobs=bench_jobs,
    )
    print()
    print(render_figure10(distributions))

    # The per-decision overhead stays in the tens-of-milliseconds range
    # (the paper reports < 10 ms for its native implementation; the pure
    # Python search is allowed a looser bound of 50 ms on average).
    for dist in distributions:
        assert dist.stats.count > 0
        assert dist.mean_ms < 50.0, dist.setting


def test_section53_bruteforce_comparison(benchmark):
    comparison = run_once(benchmark, run_bruteforce_comparison)
    print()
    print(render_bruteforce_comparison(comparison))
    # ESG's pruned search finds the same optimum while examining fewer states
    # and finishing substantially faster than exhaustive enumeration.
    assert comparison.same_optimum
    assert comparison.esg_expansions < comparison.bruteforce_examined
    assert comparison.esg_time_ms < comparison.bruteforce_time_ms / 2
