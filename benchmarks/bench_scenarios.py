"""Benchmark sweeping every policy over the named scenario registry.

This is the breadth counterpart of the figure benches: instead of the
paper's three fixed settings, every scheduler faces the whole scenario
gallery — Poisson, MMPP-style bursts, diurnal drift, trace replay and a
non-paper application mix — on identical per-scenario workloads.  Shape
assertions are deliberately loose (the scenarios are new territory); the
hard guarantees (cross-process determinism, paper-default byte-identity)
live in the tier-1 tests.
"""

from __future__ import annotations

from conftest import DEFAULT_BENCH_REQUESTS, run_once

from repro.experiments.runner import DEFAULT_POLICIES
from repro.experiments.scenario_sweep import (
    render_scenario_comparison,
    run_scenario_sweep,
    scenario_rows,
)
from repro.workloads.scenarios import SCENARIOS


def test_scenario_sweep_all_policies(benchmark, bench_config, bench_jobs):
    scenario_names = SCENARIOS.names()
    results = run_once(
        benchmark,
        run_scenario_sweep,
        scenario_names,
        DEFAULT_POLICIES,
        config=bench_config,
        n_jobs=bench_jobs,
    )
    rows = scenario_rows(results)
    print()
    print(render_scenario_comparison(rows))

    # Every cell ran: full cross product, nothing silently dropped.
    assert len(rows) == len(scenario_names) * len(DEFAULT_POLICIES)

    by_scenario: dict[str, dict[str, float]] = {}
    for cell in rows:
        by_scenario.setdefault(cell.scenario, {})[cell.policy] = cell.slo_hit_rate
        # Work happened in every cell.
        assert cell.num_completed > 0, (cell.scenario, cell.policy)

    # The horizon-bounded overload scenario actually truncates — given a
    # workload big enough to outlast its 1.5 s horizon (a handful of
    # REPRO_BENCH_REQUESTS can drain before it).
    if bench_config.num_requests >= DEFAULT_BENCH_REQUESTS:
        overload = [c for c in rows if c.scenario == "overload-spike"]
        assert all(c.truncated for c in overload)

    # On the paper scenarios ESG stays the competitive scheduler it is in
    # Figure 6: within 5 points of the best hit rate.
    for name in ("paper-strict-light", "paper-moderate-normal", "paper-relaxed-heavy"):
        hit = by_scenario[name]
        assert hit["ESG"] >= max(hit.values()) - 0.05, name
