"""Hot-path profile of a ``loop_mode="fast"`` streaming run.

Runs one end-to-end simulation (the same single-stage relaxed-heavy
configuration as ``bench_workload_scale.py``'s throughput row) under
cProfile and buckets the per-function ``tottime`` by subsystem — event
loop vs dispatch/policy vs controller vs metrics vs cluster state — so
every future PR can see where the next bottleneck moved without
re-deriving the breakdown.  The result is printed as a table and emitted
as a BENCH JSON artifact next to the scale benchmarks.

cProfile inflates small-function call costs (~2.5-3x wall clock on the
fast loop, which is exactly the many-small-calls shape tracing is worst
at), so the *shares* are the signal here, never the absolute seconds —
throughput claims live in ``bench_workload_scale.py``, timed untraced.

Environment knobs::

    REPRO_PROFILE_REQUESTS=20000            # simulated request count
    REPRO_BENCH_JSON=profile_hotpath.json   # also write BENCH JSON here
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
import time

from conftest import run_once

from repro.cluster.metrics import MetricsConfig
from repro.cluster.simulator import Simulation, SimulationConfig
from repro.experiments.runner import build_profile_store, make_policy
from repro.utils.rng import derive_rng
from repro.workloads.applications import build_application
from repro.workloads.generator import RELAXED_HEAVY, WorkloadGenerator

DEFAULT_PROFILE_REQUESTS = 20_000

#: How many individual functions to keep in the JSON artifact.
TOP_FUNCTIONS = 25

#: Subsystem buckets, matched by path fragment in declaration order (first
#: match wins).  Anything unmatched — stdlib, numpy, builtins — lands in
#: ``other``.
BUCKETS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("event_loop", ("cluster/simulator.py", "cluster/events.py")),
    ("controller", ("cluster/controller.py",)),
    ("policy", ("core/", "baselines/", "cluster/policy_api.py")),
    ("metrics", ("cluster/metrics.py", "utils/stats.py")),
    (
        "cluster_state",
        (
            "cluster/cluster.py",
            "cluster/invoker.py",
            "cluster/container.py",
            "cluster/gpu.py",
            "cluster/tasks.py",
        ),
    ),
    ("prewarm", ("cluster/prewarm.py",)),
    ("profiles", ("profiles/",)),
    ("workload", ("workloads/",)),
)


def profile_requests() -> int:
    return int(os.environ.get("REPRO_PROFILE_REQUESTS", DEFAULT_PROFILE_REQUESTS))


def bucket_of(filename: str) -> str:
    normalized = filename.replace(os.sep, "/")
    for bucket, fragments in BUCKETS:
        if any(fragment in normalized for fragment in fragments):
            return bucket
    return "other"


def run_profiled(num_requests: int) -> dict:
    """One fast-mode streaming run under cProfile; returns the breakdown."""
    store = build_profile_store()
    generator = WorkloadGenerator(
        applications=[build_application("single_stage_classification")],
        setting=RELAXED_HEAVY,
        profile_store=store,
        rng=derive_rng(42, "bench-workload-e2e"),
    )
    simulation = Simulation(
        policy=make_policy("ESG"),
        requests=generator.stream(num_requests),
        profile_store=store,
        config=SimulationConfig(
            seed=42, loop_mode="fast", metrics=MetricsConfig(mode="streaming")
        ),
        setting_name=RELAXED_HEAVY.name,
    )
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    summary = simulation.run()
    profiler.disable()
    elapsed = time.perf_counter() - start
    assert summary.num_completed == num_requests, summary.num_completed

    stats = pstats.Stats(profiler)
    buckets: dict[str, float] = {name: 0.0 for name, _ in BUCKETS}
    buckets["other"] = 0.0
    total_tottime = 0.0
    rows = []
    for (filename, lineno, funcname), (
        _primitive_calls,
        ncalls,
        tottime,
        cumtime,
        _callers,
    ) in stats.stats.items():
        total_tottime += tottime
        buckets[bucket_of(filename)] += tottime
        rows.append((tottime, cumtime, ncalls, filename, lineno, funcname))
    rows.sort(reverse=True)

    top = [
        {
            "function": f"{os.path.basename(filename)}:{lineno}({funcname})",
            "bucket": bucket_of(filename),
            "ncalls": ncalls,
            "tottime_s": round(tottime, 4),
            "cumtime_s": round(cumtime, 4),
        }
        for tottime, cumtime, ncalls, filename, lineno, funcname in rows[:TOP_FUNCTIONS]
    ]
    shares = {
        name: round(seconds / total_tottime, 4) if total_tottime else 0.0
        for name, seconds in buckets.items()
    }
    return {
        "benchmark": "profile_hotpath",
        "requests": num_requests,
        "completed": summary.num_completed,
        "run_s": round(elapsed, 2),
        "requests_per_s": round(num_requests / elapsed),
        "total_tottime_s": round(total_tottime, 2),
        "bucket_tottime_s": {k: round(v, 4) for k, v in buckets.items()},
        "bucket_shares": shares,
        "top_functions": top,
    }


def emit_bench_json(report: dict) -> None:
    payload = json.dumps(report, indent=2, sort_keys=True)
    print("BENCH_JSON " + json.dumps(report, sort_keys=True))
    out_path = os.environ.get("REPRO_BENCH_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")


def render_report(report: dict) -> str:
    lines = [
        f"Hot-path profile  ({report['requests']} requests, fast loop, traced "
        f"{report['run_s']}s = {report['requests_per_s']}/s under cProfile)",
        f"{'bucket':>14}  {'tottime s':>10}  {'share':>6}",
    ]
    shares = report["bucket_shares"]
    for name, seconds in sorted(
        report["bucket_tottime_s"].items(), key=lambda item: -item[1]
    ):
        lines.append(f"{name:>14}  {seconds:>10.3f}  {shares[name] * 100:>5.1f}%")
    lines.append("top functions by tottime:")
    for row in report["top_functions"][:10]:
        lines.append(
            f"  {row['tottime_s']:>7.3f}s  {row['ncalls']:>8}x  {row['function']}"
        )
    return "\n".join(lines)


def test_profile_hotpath(benchmark):
    report = run_once(benchmark, run_profiled, profile_requests())
    print()
    print(render_report(report))
    emit_bench_json(report)

    assert report["completed"] == report["requests"], report
    # The bucket decomposition must account for every sampled function.
    assert (
        abs(sum(report["bucket_tottime_s"].values()) - report["total_tottime_s"]) < 0.02
    ), report["bucket_tottime_s"]
