"""Benchmarks regenerating Tables 1-3 (feature matrix, testbed, functions)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    table1_feature_matrix,
    table3_functions,
)


def test_table1_feature_matrix(benchmark):
    rows = run_once(benchmark, table1_feature_matrix)
    print()
    print(render_table1())
    esg_features = sum(
        1 for r in rows if r.esg
    )
    assert esg_features == len(rows), "ESG supports every feature of Table 1"


def test_table2_testbed(benchmark):
    text = run_once(benchmark, render_table2)
    print()
    print(text)
    assert "16" in text and "112" in text


def test_table3_functions(benchmark):
    rows = run_once(benchmark, table3_functions)
    print()
    print(render_table3())
    assert len(rows) == 6
    by_name = {r.function: r for r in rows}
    assert by_name["super_resolution"].exec_time_ms == 86.0
    assert by_name["deblur"].cold_start_ms == 22343.0
