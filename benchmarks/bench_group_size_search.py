"""Benchmark for the Section 5.4 group-size study: ESG_1Q search time as the
function-group size of the dominator-based SLO distribution grows."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.sensitivity import render_group_size_search, run_group_size_search


def test_section54_group_size_search_time(benchmark):
    points = run_once(benchmark, run_group_size_search, (1, 2, 3, 4))
    print()
    print(render_group_size_search(points))

    by_size = {p.group_size: p for p in points}
    # The search space (and hence the search effort) grows with the group size;
    # the jump from 3 to 4 is the reason the paper fixes the default at 3.
    assert by_size[4].expansions > by_size[3].expansions
    assert by_size[3].expansions > by_size[1].expansions
    assert all(p.feasible for p in points)
