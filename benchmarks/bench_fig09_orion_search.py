"""Benchmark regenerating Figure 9 (Orion search time vs. SLO hit rate)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.orion_search import render_figure9, run_figure9


def test_fig09_orion_search_tradeoff(benchmark, bench_config, bench_jobs):
    points = run_once(
        benchmark,
        run_figure9,
        (1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 2000.0),
        setting="strict-light",
        config=bench_config,
        n_jobs=bench_jobs,
    )
    print()
    print(render_figure9(points))

    with_overhead = {p.cutoff_ms: p for p in points if p.count_search_overhead}
    without_overhead = {p.cutoff_ms: p for p in points if not p.count_search_overhead}

    # Charging the search overhead can only hurt the hit rate.
    for cutoff, point in with_overhead.items():
        assert point.slo_hit_rate <= without_overhead[cutoff].slo_hit_rate + 1e-9

    # Without overhead, a larger search budget never hurts configuration quality
    # (hit rate is non-decreasing up to noise); with overhead the largest
    # cutoffs are no better than the small ones — the paper's collapse.
    assert without_overhead[2000.0].slo_hit_rate >= without_overhead[1.0].slo_hit_rate - 0.05
    assert (
        with_overhead[2000.0].slo_hit_rate
        <= without_overhead[2000.0].slo_hit_rate + 1e-9
    )
