"""Benchmark regenerating Figure 6 (average SLO hit rate and normalised cost).

Runs the full (policy x setting) matrix on identical workloads.  The
headline shapes checked here mirror the paper's claims: ESG achieves the
highest (or tied-highest) SLO hit rate in every setting while its cost is
not the highest, and INFless is the most expensive scheduler.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.end_to_end import figure6_rows, render_figure6, run_end_to_end
from repro.experiments.runner import DEFAULT_POLICIES


def test_fig06_slo_hit_rate_and_cost(benchmark, bench_config, bench_jobs):
    results = run_once(
        benchmark, run_end_to_end, DEFAULT_POLICIES, config=bench_config, n_jobs=bench_jobs
    )
    rows = figure6_rows(results)
    print()
    print(render_figure6(rows))

    for setting in {r.setting for r in rows}:
        setting_rows = {r.policy: r for r in rows if r.setting == setting}
        esg = setting_rows["ESG"]
        # ESG reaches the highest (or tied-highest) SLO hit rate.
        best_hit = max(r.slo_hit_rate for r in setting_rows.values())
        assert esg.slo_hit_rate >= best_hit - 0.05, setting
        # ESG is never the most expensive scheduler.
        assert esg.total_cost_cents <= max(r.total_cost_cents for r in setting_rows.values()), setting
        # INFless allocates the most resources (highest cost) as in the paper.
        assert setting_rows["INFless"].total_cost_cents >= esg.total_cost_cents, setting
