"""Benchmark regenerating Figure 7 (per-application end-to-end latencies,
relaxed-heavy setting)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.end_to_end import figure7_curves, render_figure7, run_end_to_end
from repro.experiments.runner import DEFAULT_POLICIES


def test_fig07_end_to_end_latency_curves(benchmark, bench_config, bench_jobs):
    results = run_once(
        benchmark,
        run_end_to_end,
        DEFAULT_POLICIES,
        ("relaxed-heavy",),
        config=bench_config,
        n_jobs=bench_jobs,
    )
    curves = figure7_curves(results, setting="relaxed-heavy")
    print()
    print(render_figure7(curves))

    # Every (application, policy) pair produced at least one completed request.
    assert curves
    assert all(len(c.latencies_ms) > 0 for c in curves)

    # ESG keeps latencies below but close to the SLO: its mean latency per
    # application stays under the SLO while not being the smallest possible
    # (it trades latency slack for cost, unlike INFless).
    for app in {c.app for c in curves}:
        esg_curve = next(c for c in curves if c.app == app and c.policy == "ESG")
        mean_esg = sum(esg_curve.latencies_ms) / len(esg_curve.latencies_ms)
        assert mean_esg <= esg_curve.slo_ms * 1.25
