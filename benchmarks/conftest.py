"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced rows/series.  The workload size is deliberately smaller than the
paper's (hundreds of requests) so the whole suite runs in minutes; set the
``REPRO_BENCH_REQUESTS`` environment variable to scale it up, and
``REPRO_BENCH_JOBS`` to fan the sweeps out across worker processes
(0 = one per core), e.g.::

    REPRO_BENCH_REQUESTS=300 REPRO_BENCH_JOBS=0 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentConfig

#: Default number of requests per simulated run in the benchmarks.
DEFAULT_BENCH_REQUESTS = 60


def bench_requests() -> int:
    """Number of requests per run (overridable via REPRO_BENCH_REQUESTS)."""
    return int(os.environ.get("REPRO_BENCH_REQUESTS", DEFAULT_BENCH_REQUESTS))


def bench_n_jobs() -> int:
    """Worker processes per sweep (overridable via REPRO_BENCH_JOBS; 0 = all cores)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", 1))


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration shared by all benchmarks."""
    return ExperimentConfig(num_requests=bench_requests(), seed=42)


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    """Worker-process count shared by all benchmark sweeps."""
    return bench_n_jobs()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
