"""Workload-at-scale benchmark: streaming request generation vs. materialized lists.

Two measurements, same tracemalloc methodology as ``bench_metrics_scale.py``
(exact attributed allocation bytes, identical tracing overhead for both
sides, whole-process ``ru_maxrss`` reported once per row as context):

* **Workload layer** — builds the identical workload twice per size:
  materialized (``WorkloadGenerator.generate``, the full ``Request`` list
  alive at once) vs. streaming (``WorkloadGenerator.stream``, two compact
  numpy arrays plus one transient ``Request`` at a time).  ``peak_bytes``
  is the high-water mark across build + full consumption.  The headline
  acceptance number: streaming peaks **>= 10x** lower at 100k+ requests.
* **End to end** — one complete simulated run at the sweep's largest size
  with *both* streaming axes on (lazy workload + streaming metrics
  accumulators): the configuration PR 4 could not yet claim, because the
  workload list was still an O(n) cost shared by both metrics modes.  The
  run must finish with a tracemalloc peak under a fixed ceiling that does
  not scale with the request count's object graphs — the bounded-memory
  million-request configuration, asserted.

The end-to-end run uses the paper's ESG policy on a single-stage
application under relaxed-heavy arrivals: one task per request keeps the
simulated-event count (and hence wall time) proportional to the request
count — ~9k requests/s under ``loop_mode="compat"``, ~2.4x that under the
default ``loop_mode="fast"``, so the million-request row completes in
under a minute.

* **Throughput** — the same streaming run timed untraced (no tracemalloc)
  under ``loop_mode="fast"`` and ``loop_mode="compat"``: requests/s per
  mode plus the speedup ratio, with the two ``RunSummary``s asserted
  byte-identical (the parity anchor) and the ratio asserted against
  :data:`THROUGHPUT_SPEEDUP_FLOOR` at 100k+ requests so the event-loop
  overhaul stays regression-pinned, not claimed.

Environment knobs::

    REPRO_BENCH_WORKLOAD_SIZES=10000,100000,1000000  # sweep sizes
    REPRO_BENCH_THROUGHPUT_REQUESTS=100000           # throughput-row size
    REPRO_BENCH_JSON=bench_workload_scale.json       # also write BENCH JSON here
"""

from __future__ import annotations

import gc
import json
import os
import resource
import time
import tracemalloc
from dataclasses import asdict

from conftest import run_once

from repro.cluster.metrics import MetricsConfig
from repro.cluster.simulator import Simulation, SimulationConfig
from repro.experiments.runner import build_profile_store, make_policy
from repro.utils.rng import derive_rng
from repro.workloads.applications import build_application, build_paper_applications
from repro.workloads.generator import RELAXED_HEAVY, WorkloadGenerator

DEFAULT_SIZES = (10_000, 100_000, 1_000_000)

#: The memory-ratio assertion needs enough requests for the workload to
#: dominate interpreter noise; tiny smoke sweeps only check completeness.
MIN_REQUESTS_FOR_MEMORY_ASSERT = 100_000

#: Hard cap on the end-to-end run's tracemalloc peak.  Fixed, not scaled:
#: a million-request run streams both its workload (~16 B/request of
#: compact arrays) and its metrics (per-app accumulators + quantile
#: buffers), so nothing in the run retains whole object graphs.  Measured
#: ~183 MB peak at 1M requests (~71 MB retained; the peak is summary()'s
#: transient sort/list materialisation over the compact buffers).  The
#: ceiling leaves headroom without ever admitting an O(n)-object-graph
#: regression: the materialized workload *alone* peaks at ~384 MB at 1M,
#: before any metrics retention.
E2E_PEAK_CEILING_BYTES = 256 * 1024 * 1024

#: Floor on the fast/compat throughput ratio, asserted at 100k+ requests.
#: Measured: ~2.6x at 100k and ~2.4x at 1M on the reference box (fast
#: ~21-26k req/s vs compat ~9-10k req/s, end to end including summary
#: finalisation).  The ROADMAP target for the event-loop overhaul was 5x;
#: byte-identical parity with the compat anchor caps the achievable gain
#: at the cost of the scheduling logic itself (see
#: ``benchmarks/profile_hotpath.py`` for where the remaining time goes),
#: so the pinned floor is the measured gain with CI-noise margin, not the
#: aspiration.
THROUGHPUT_SPEEDUP_FLOOR = 2.0

#: Below this the ratio is interpreter-noise dominated; smoke sweeps only
#: check parity and completeness.
MIN_REQUESTS_FOR_SPEEDUP_ASSERT = 100_000


def sweep_sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_WORKLOAD_SIZES")
    if not raw:
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def paper_generator(store) -> WorkloadGenerator:
    """The paper's four-app workload under relaxed-heavy arrivals."""
    return WorkloadGenerator(
        applications=build_paper_applications(),
        setting=RELAXED_HEAVY,
        profile_store=store,
        rng=derive_rng(42, "bench-workload-scale"),
    )


def measure_workload_layer(store, num_requests: int) -> dict:
    """Build the same workload materialized and streaming; compare peaks."""
    rows = {}
    checksums = {}
    for mode in ("materialized", "streaming"):
        generator = paper_generator(store)
        gc.collect()
        tracemalloc.start()
        try:
            start = time.perf_counter()
            if mode == "materialized":
                requests = generator.generate(num_requests)
                count = len(requests)
                checksum = round(sum(r.arrival_ms for r in requests), 6)
                gc.collect()
                retained_bytes, _ = tracemalloc.get_traced_memory()
                del requests
            else:
                stream = generator.stream(num_requests)
                count = 0
                checksum = 0.0
                for _, request in stream:
                    count += 1
                    checksum += request.arrival_ms
                checksum = round(checksum, 6)
                gc.collect()
                retained_bytes, _ = tracemalloc.get_traced_memory()
                del stream
            elapsed = time.perf_counter() - start
            _, peak_bytes = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert count == num_requests, (mode, count)
        checksums[mode] = checksum
        rows[mode] = {
            "retained_bytes": int(retained_bytes),
            "peak_bytes": int(peak_bytes),
            "build_s": round(elapsed, 4),
        }
    # Same arrivals either way (the bulk-draw byte-identity anchor).
    assert checksums["materialized"] == checksums["streaming"], checksums
    return {
        "requests": num_requests,
        "materialized": rows["materialized"],
        "streaming": rows["streaming"],
        "peak_ratio": round(
            rows["materialized"]["peak_bytes"] / max(1, rows["streaming"]["peak_bytes"]), 2
        ),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def run_end_to_end_streaming(store, num_requests: int) -> dict:
    """One full simulated run with streaming workload + streaming metrics."""
    generator = WorkloadGenerator(
        applications=[build_application("single_stage_classification")],
        setting=RELAXED_HEAVY,
        profile_store=store,
        rng=derive_rng(42, "bench-workload-e2e"),
    )
    gc.collect()
    tracemalloc.start()
    try:
        start = time.perf_counter()
        simulation = Simulation(
            policy=make_policy("ESG"),
            requests=generator.stream(num_requests),
            profile_store=store,
            config=SimulationConfig(
                seed=42, metrics=MetricsConfig(mode="streaming")
            ),
            setting_name=RELAXED_HEAVY.name,
        )
        summary = simulation.run()
        elapsed = time.perf_counter() - start
        gc.collect()
        retained_bytes, peak_bytes = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "requests": num_requests,
        "completed": summary.num_completed,
        "slo_hit_rate": round(summary.slo_hit_rate, 6),
        "run_s": round(elapsed, 2),
        "requests_per_s": round(num_requests / elapsed),
        "retained_bytes": int(retained_bytes),
        "peak_bytes": int(peak_bytes),
        "peak_ceiling_bytes": E2E_PEAK_CEILING_BYTES,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def throughput_requests(sizes: tuple[int, ...]) -> int:
    raw = os.environ.get("REPRO_BENCH_THROUGHPUT_REQUESTS")
    if raw:
        return int(raw)
    return max(sizes)


def run_throughput_comparison(store, num_requests: int) -> dict:
    """The same streaming run under ``loop_mode`` fast vs compat, untraced.

    Timed without tracemalloc (tracing would distort the very constant
    costs the fast loop removes).  Each mode gets a fresh generator seeded
    identically, so the workloads match sample for sample; the two run
    summaries are asserted byte-identical before any throughput claim.
    """
    rows = {}
    summaries = {}
    for mode in ("fast", "compat"):
        generator = WorkloadGenerator(
            applications=[build_application("single_stage_classification")],
            setting=RELAXED_HEAVY,
            profile_store=store,
            rng=derive_rng(42, "bench-workload-e2e"),
        )
        gc.collect()
        start = time.perf_counter()
        simulation = Simulation(
            policy=make_policy("ESG"),
            requests=generator.stream(num_requests),
            profile_store=store,
            config=SimulationConfig(
                seed=42, loop_mode=mode, metrics=MetricsConfig(mode="streaming")
            ),
            setting_name=RELAXED_HEAVY.name,
        )
        summary = simulation.run()
        elapsed = time.perf_counter() - start
        summaries[mode] = summary
        assert summary.num_completed == num_requests, (mode, summary.num_completed)
        rows[mode] = {
            "run_s": round(elapsed, 2),
            "requests_per_s": round(num_requests / elapsed),
        }
    # The parity anchor: fast must not buy throughput with drift.
    assert asdict(summaries["fast"]) == asdict(summaries["compat"]), (
        "fast/compat summaries diverged"
    )
    return {
        "requests": num_requests,
        "fast": rows["fast"],
        "compat": rows["compat"],
        "speedup": round(
            rows["fast"]["requests_per_s"] / max(1, rows["compat"]["requests_per_s"]), 2
        ),
        "speedup_floor": THROUGHPUT_SPEEDUP_FLOOR,
    }


def run_workload_scale_sweep(sizes: tuple[int, ...]) -> dict:
    store = build_profile_store()
    rows = [measure_workload_layer(store, num_requests) for num_requests in sizes]
    end_to_end = run_end_to_end_streaming(store, max(sizes))
    throughput = run_throughput_comparison(store, throughput_requests(sizes))
    return {
        "benchmark": "workload_scale",
        "sizes": rows,
        "end_to_end": end_to_end,
        "throughput": throughput,
    }


def emit_bench_json(report: dict) -> None:
    payload = json.dumps(report, indent=2, sort_keys=True)
    print("BENCH_JSON " + json.dumps(report, sort_keys=True))
    out_path = os.environ.get("REPRO_BENCH_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")


def render_rows(report: dict) -> str:
    lines = [
        "Workload-scale sweep  (paper workload, materialized vs streaming generation)",
        f"{'requests':>9}  {'materialized MB':>16}  {'streaming MB':>13}  {'peak x':>7}",
    ]
    for row in report["sizes"]:
        lines.append(
            f"{row['requests']:>9}  "
            f"{row['materialized']['peak_bytes'] / 1e6:>15.1f}M  "
            f"{row['streaming']['peak_bytes'] / 1e6:>12.1f}M  "
            f"{row['peak_ratio']:>6.1f}x"
        )
    e2e = report["end_to_end"]
    lines.append(
        f"end-to-end (streaming workload + metrics): {e2e['requests']} requests in "
        f"{e2e['run_s']}s ({e2e['requests_per_s']}/s), tracemalloc peak "
        f"{e2e['peak_bytes'] / 1e6:.1f} MB (ceiling {e2e['peak_ceiling_bytes'] / 1e6:.0f} MB)"
    )
    tp = report["throughput"]
    lines.append(
        f"throughput (untraced, {tp['requests']} requests): "
        f"fast {tp['fast']['requests_per_s']}/s vs compat "
        f"{tp['compat']['requests_per_s']}/s = {tp['speedup']}x "
        f"(floor {tp['speedup_floor']}x at "
        f"{MIN_REQUESTS_FOR_SPEEDUP_ASSERT}+; summaries byte-identical)"
    )
    return "\n".join(lines)


def test_workload_scale_memory(benchmark):
    sizes = sweep_sizes()
    report = run_once(benchmark, run_workload_scale_sweep, sizes)
    print()
    print(render_rows(report))
    emit_bench_json(report)

    # The acceptance number: streaming peaks >= 10x lower at 100k+ requests.
    for row in report["sizes"]:
        if row["requests"] >= MIN_REQUESTS_FOR_MEMORY_ASSERT:
            assert row["peak_ratio"] >= 10.0, row

    # The bounded-memory guarantee: the largest end-to-end run drains its
    # whole workload and stays under the fixed ceiling.
    e2e = report["end_to_end"]
    assert e2e["completed"] == e2e["requests"], e2e
    assert e2e["peak_bytes"] < e2e["peak_ceiling_bytes"], e2e

    # The event-loop gain, regression-pinned: at 100k+ requests the fast
    # loop must clear the measured floor (parity is asserted inside the
    # comparison regardless of size).
    tp = report["throughput"]
    if tp["requests"] >= MIN_REQUESTS_FOR_SPEEDUP_ASSERT:
        assert tp["speedup"] >= THROUGHPUT_SPEEDUP_FLOOR, tp
