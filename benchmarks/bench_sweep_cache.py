"""Sweep-cache benchmark: cold vs. warm runs of one result-store lattice.

Runs the same 24-cell (policy x scenario x seed) lattice twice against a
fresh content-addressed :class:`~repro.experiments.store.ResultStore`:

* **cold** — the store is empty, every cell simulates and persists,
* **warm** — every cell is a cache hit; zero simulations run.

The headline acceptance numbers, asserted here and in the CI sweep-smoke
job: the warm run executes **zero** cells, returns summaries byte-identical
to the cold run, and is **>= 10x** faster end-to-end (measured warm rates
are thousands of cells per second — the wall time is pure JSON decoding).

Environment knobs::

    REPRO_BENCH_REQUESTS=300                   # requests per cell
    REPRO_BENCH_JOBS=0                         # workers for the cold run
    REPRO_BENCH_JSON=bench_sweep_cache.json    # also write BENCH JSON here
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from conftest import bench_n_jobs, bench_requests, run_once

from repro.experiments.runner import ExperimentConfig
from repro.experiments.sweep import run_sweep

#: The benchmark lattice: 2 policies x 2 scenarios x 6 seeds = 24 cells.
POLICIES = ("ESG", "INFless")
SCENARIOS = ("paper-moderate-normal", "poisson-normal")
SEEDS = tuple(range(1, 7))

#: Acceptance floor: a warm sweep must be at least this much faster.
MIN_WARM_SPEEDUP = 10.0


def run_sweep_cache_benchmark() -> dict:
    config = ExperimentConfig(num_requests=bench_requests(), seed=42)
    n_jobs = bench_n_jobs()
    with tempfile.TemporaryDirectory(prefix="esg-bench-store-") as tmp:
        store = os.path.join(tmp, "store")
        start = time.perf_counter()
        cold = run_sweep(
            POLICIES, SCENARIOS, seeds=SEEDS, store=store, config=config, n_jobs=n_jobs
        )
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_sweep(
            POLICIES, SCENARIOS, seeds=SEEDS, store=store, config=config, n_jobs=n_jobs
        )
        warm_s = time.perf_counter() - start
    # SweepCell.summary is already a plain dict; dict equality over every
    # field is the byte-identity check.
    identical = len(cold.cells) == len(warm.cells) and all(
        a.summary == b.summary and a.key == b.key
        for a, b in zip(cold.cells, warm.cells)
    )
    return {
        "benchmark": "sweep_cache",
        "requests_per_cell": config.num_requests,
        "n_jobs": n_jobs,
        "cells": cold.total,
        "cold": {"elapsed_s": round(cold_s, 4), "executed": cold.executed},
        "warm": {"elapsed_s": round(warm_s, 4), "executed": warm.executed},
        "warm_speedup": round(cold_s / max(1e-9, warm_s), 2),
        "summaries_identical": bool(identical),
    }


def emit_bench_json(report: dict) -> None:
    payload = json.dumps(report, indent=2, sort_keys=True)
    print("BENCH_JSON " + json.dumps(report, sort_keys=True))
    out_path = os.environ.get("REPRO_BENCH_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")


def render_report(report: dict) -> str:
    return "\n".join(
        [
            "Sweep-cache benchmark  (content-addressed store, cold vs warm)",
            f"  cells: {report['cells']}  requests/cell: {report['requests_per_cell']}  "
            f"jobs: {report['n_jobs']}",
            f"  cold:  {report['cold']['elapsed_s']:.3f}s  "
            f"({report['cold']['executed']} executed)",
            f"  warm:  {report['warm']['elapsed_s']:.3f}s  "
            f"({report['warm']['executed']} executed)",
            f"  speedup: {report['warm_speedup']:.1f}x  "
            f"identical: {report['summaries_identical']}",
        ]
    )


def test_sweep_cache_speedup(benchmark):
    report = run_once(benchmark, run_sweep_cache_benchmark)
    print()
    print(render_report(report))
    emit_bench_json(report)

    # The hard guarantees: a warm sweep simulates nothing and returns the
    # same summaries the cold run produced.
    assert report["cold"]["executed"] == report["cells"]
    assert report["warm"]["executed"] == 0
    assert report["summaries_identical"]

    # The acceptance number: the warm run is >= 10x faster than cold.
    assert report["warm_speedup"] >= MIN_WARM_SPEEDUP, report
