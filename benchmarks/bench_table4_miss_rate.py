"""Benchmark regenerating Table 4 (pre-planned scheduling miss rate)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.miss_rate import render_table4, run_table4


def test_table4_preplanned_miss_rate(benchmark, bench_config, bench_jobs):
    rows = run_once(
        benchmark,
        run_table4,
        ("Orion", "Aquatope"),
        ("strict-light", "moderate-normal", "relaxed-heavy"),
        config=bench_config,
        n_jobs=bench_jobs,
    )
    print()
    print(render_table4(rows))

    by_key = {(r.setting, r.policy): r for r in rows}
    # Static planners make plan attempts in every setting.
    assert all(r.plan_attempts > 0 for r in rows)
    # Aquatope's offline-BO plans miss frequently (the paper reports 59-86%).
    assert by_key[("relaxed-heavy", "Aquatope")].miss_rate > 0.2
    # Orion misses grow with workload intensity (9.6% -> 51.7% in the paper).
    assert (
        by_key[("relaxed-heavy", "Orion")].miss_rate
        >= by_key[("strict-light", "Orion")].miss_rate - 1e-9
    )
