"""Cluster-scale benchmark: the indexed cluster core vs the scan-based path.

Sweeps the cluster from the paper's 16 invokers toward 1024, running the
same ESG workload twice per size:

* **scan** — ``ClusterConfig(index_mode="scan")`` with the ESG plan cache
  off: the pre-refactor reference path (per-tick expiry sweeps, linear
  warm/capacity scans, full round-robin queue walks, every plan searched).
  Scan mode pays no cluster-level index maintenance (the callbacks are not
  even bound); the only residual deltas vs the literal pre-refactor code
  are the invoker-local live-container lists (which scan queries now use)
  and the controller's pending-job counter — both cheaper than what they
  replaced, keeping the baseline conservative.
* **indexed** — the default path (incremental indexes, event-driven expiry,
  dirty-queue scheduling, memoized plans).

Two timings are reported per run:

* ``tick_s`` — wall time spent handling ``SchedulerTickEvent`` (the whole
  controller round including the policy's plan search), and
* ``platform_s`` — ``tick_s`` minus the time spent inside ``policy.plan``:
  the platform-side scheduling-pass cost the cluster refactor targets.
  The plan search itself is identical algorithm work on both paths (the
  indexed path merely memoizes exact repeats), so the platform metric is
  the honest measure of the O(invokers x containers) -> O(log n) claim.

The headline acceptance number is the **platform speedup at 256 invokers**
(>= 5x required; ~10x measured).  Both paths must produce byte-identical
RunSummaries at every size — asserted here and in the tier-1 parity tests.

Environment knobs::

    REPRO_BENCH_CLUSTER_SIZES=16,64,256,1024   # sweep sizes
    REPRO_BENCH_CLUSTER_SCENARIO=paper-moderate-normal
    REPRO_BENCH_REQUESTS=60                    # requests per run
    REPRO_BENCH_JSON=bench_cluster_scale.json  # also write the BENCH JSON here
"""

from __future__ import annotations

import json
import os
import time

from conftest import bench_requests, run_once

from repro.cluster.cluster import ClusterConfig
from repro.cluster.controller import ControllerConfig
from repro.cluster.events import SchedulerTickEvent
from repro.cluster.simulator import Simulation, SimulationConfig
from repro.experiments.runner import build_profile_store, make_policy
from repro.workloads.scenarios import get_scenario

DEFAULT_SIZES = (16, 64, 256, 1024)

#: Below this many requests the tick sample is too thin for a stable ratio,
#: so the speedup assertion is skipped (the parity assertion never is).
MIN_REQUESTS_FOR_SPEEDUP_ASSERT = 40


def sweep_sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_CLUSTER_SIZES")
    if not raw:
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def bench_scenario_name() -> str:
    return os.environ.get("REPRO_BENCH_CLUSTER_SCENARIO", "paper-moderate-normal")


def timed_run(store, scenario, num_invokers: int, mode: str, requests: int):
    """One full simulation; returns (summary, tick_seconds, plan_seconds)."""
    policy = make_policy("ESG", plan_cache=(mode == "indexed"))
    plan_acc = [0.0]
    inner_plan = policy.plan

    def timed_plan(queue, now_ms):
        start = time.perf_counter()
        try:
            return inner_plan(queue, now_ms)
        finally:
            plan_acc[0] += time.perf_counter() - start

    policy.plan = timed_plan
    simulation = Simulation(
        policy=policy,
        requests=scenario.build_requests(requests, 42, store),
        profile_store=store,
        config=SimulationConfig(
            cluster=ClusterConfig(num_invokers=num_invokers, index_mode=mode),
            controller=ControllerConfig(initial_warm="all"),
        ),
        setting_name=scenario.setting,
    )
    tick_acc = [0.0]

    def timed_tick(sim, event):
        start = time.perf_counter()
        event.apply(sim)
        tick_acc[0] += time.perf_counter() - start

    simulation.add_handler(SchedulerTickEvent, timed_tick)
    summary = simulation.run()
    return summary, tick_acc[0], plan_acc[0]


def run_cluster_scale_sweep(requests: int, sizes: tuple[int, ...]) -> dict:
    store = build_profile_store()
    scenario = get_scenario(bench_scenario_name())
    rows = []
    for num_invokers in sizes:
        scan_summary, scan_tick, scan_plan = timed_run(
            store, scenario, num_invokers, "scan", requests
        )
        idx_summary, idx_tick, idx_plan = timed_run(
            store, scenario, num_invokers, "indexed", requests
        )
        scan_platform = max(1e-9, scan_tick - scan_plan)
        idx_platform = max(1e-9, idx_tick - idx_plan)
        rows.append(
            {
                "num_invokers": num_invokers,
                "scan": {
                    "tick_s": round(scan_tick, 4),
                    "plan_s": round(scan_plan, 4),
                    "platform_s": round(scan_platform, 4),
                },
                "indexed": {
                    "tick_s": round(idx_tick, 4),
                    "plan_s": round(idx_plan, 4),
                    "platform_s": round(idx_platform, 4),
                },
                "platform_speedup": round(scan_platform / idx_platform, 2),
                "tick_speedup": round(scan_tick / max(1e-9, idx_tick), 2),
                "summaries_identical": scan_summary == idx_summary,
            }
        )
    return {
        "benchmark": "cluster_scale",
        "scenario": scenario.name,
        "requests": requests,
        "sizes": rows,
    }


def emit_bench_json(report: dict) -> None:
    payload = json.dumps(report, indent=2, sort_keys=True)
    print("BENCH_JSON " + json.dumps(report, sort_keys=True))
    out_path = os.environ.get("REPRO_BENCH_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")


def render_rows(report: dict) -> str:
    lines = [
        f"Cluster-scale sweep  ({report['scenario']}, {report['requests']} requests)",
        f"{'invokers':>8}  {'scan tick':>10}  {'idx tick':>10}  "
        f"{'scan platform':>14}  {'idx platform':>13}  {'platform x':>10}",
    ]
    for row in report["sizes"]:
        lines.append(
            f"{row['num_invokers']:>8}  {row['scan']['tick_s']:>9.3f}s  "
            f"{row['indexed']['tick_s']:>9.3f}s  {row['scan']['platform_s']:>13.3f}s  "
            f"{row['indexed']['platform_s']:>12.3f}s  {row['platform_speedup']:>9.1f}x"
        )
    return "\n".join(lines)


def test_cluster_scale_speedup(benchmark):
    requests = bench_requests()
    sizes = sweep_sizes()
    report = run_once(benchmark, run_cluster_scale_sweep, requests, sizes)
    print()
    print(render_rows(report))
    emit_bench_json(report)

    # The hard guarantee at every size: performance-only divergence.
    for row in report["sizes"]:
        assert row["summaries_identical"], row["num_invokers"]

    # The acceptance number: >= 5x platform scheduling-pass speedup at 256
    # invokers (skipped on tiny smoke sweeps where the sample is too thin).
    if requests >= MIN_REQUESTS_FOR_SPEEDUP_ASSERT:
        for row in report["sizes"]:
            if row["num_invokers"] >= 256:
                assert row["platform_speedup"] >= 5.0, row
