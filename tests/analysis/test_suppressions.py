"""Unit tests for suppression-comment parsing."""

from __future__ import annotations

import textwrap

from repro.analysis.engine import analyze_source
from repro.analysis.rules import META_RULE_CODE
from repro.analysis.suppressions import parse_suppressions


def _parse(source: str):
    return parse_suppressions(textwrap.dedent(source).splitlines())


class TestParsing:
    def test_trailing_suppression_targets_its_own_line(self) -> None:
        (sup,) = _parse(
            """\
            import time

            t = time.time()  # repro: allow[REP001] CLI-layer timing
            """
        )
        assert sup.line == 3
        assert sup.target_line == 3
        assert sup.codes == ("REP001",)
        assert sup.justification == "CLI-layer timing"
        assert not sup.malformed

    def test_standalone_suppression_targets_next_code_line(self) -> None:
        (sup,) = _parse(
            """\
            # repro: allow[REP004] ordering proven irrelevant here

            # another unrelated comment
            total = sum(values)
            """
        )
        assert sup.line == 1
        assert sup.target_line == 4
        assert sup.covers("REP004", 4)
        assert not sup.covers("REP004", 1)
        assert not sup.covers("REP001", 4)

    def test_multiple_codes_in_one_marker(self) -> None:
        (sup,) = _parse(
            """\
            x = 1  # repro: allow[REP001, REP007] benchmark shim reads both
            """
        )
        assert sup.codes == ("REP001", "REP007")
        assert sup.covers("REP001", 1)
        assert sup.covers("REP007", 1)


class TestMalformed:
    def test_missing_justification_is_malformed(self) -> None:
        (sup,) = _parse("x = 1  # repro: allow[REP001]")
        assert sup.malformed
        assert "justification" in sup.malformed
        assert not sup.covers("REP001", 1)

    def test_empty_code_list_is_malformed(self) -> None:
        (sup,) = _parse("x = 1  # repro: allow[] because reasons")
        assert sup.malformed

    def test_unknown_code_shape_is_malformed(self) -> None:
        (sup,) = _parse("x = 1  # repro: allow[REP1] because reasons")
        assert "REP1" in sup.malformed


class TestTokenizeImmunity:
    def test_marker_inside_docstring_is_not_a_suppression(self) -> None:
        found = _parse(
            '''\
            def f():
                """Docs show the marker: # repro: allow[REP001] example."""
                return 1
            '''
        )
        assert found == []

    def test_marker_inside_string_literal_is_not_a_suppression(self) -> None:
        found = _parse(
            """\
            MARKER = "# repro: allow[REP001] not a real comment"
            """
        )
        assert found == []

    def test_untokenizable_source_falls_back_to_line_scan(self) -> None:
        # Unterminated string: tokenize raises, the line scan still finds
        # the comment so broken files keep their suppressions.
        found = _parse(
            """\
            x = 1  # repro: allow[REP001] still parsed
            y = "unterminated
            """
        )
        assert len(found) == 1
        assert found[0].codes == ("REP001",)


class TestMetaDiagnostics:
    def test_malformed_suppression_is_a_rep000_failure(self) -> None:
        source = "import time\nt = time.time()  # repro: allow[REP001]\n"
        violations = analyze_source(source, path="pkg/mod.py")
        codes = {violation.rule for violation in violations}
        assert META_RULE_CODE in codes
        # The malformed marker silences nothing: REP001 still fails.
        rep001 = [v for v in violations if v.rule == "REP001"]
        assert rep001 and not rep001[0].suppressed

    def test_unused_suppression_is_a_rep000_failure(self) -> None:
        source = "x = 1  # repro: allow[REP001] nothing here needs this\n"
        violations = analyze_source(source, path="pkg/mod.py")
        assert [v.rule for v in violations] == [META_RULE_CODE]
        assert "unused" in violations[0].message

    def test_used_suppression_emits_no_rep000(self) -> None:
        source = "import time\nt = time.time()  # repro: allow[REP001] CLI shim\n"
        violations = analyze_source(source, path="pkg/mod.py")
        assert [v.rule for v in violations] == ["REP001"]
        assert violations[0].suppressed
        assert violations[0].justification == "CLI shim"
        assert not violations[0].is_failure
