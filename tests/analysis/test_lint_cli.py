"""CLI tests: ``python -m repro.analysis`` and the ``esg-repro lint`` route."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.experiments.cli import main as esg_main

CLEAN = "x = 1\n"
DIRTY = "import time\n\nt = time.perf_counter()\n"


def _tree(tmp_path: Path, source: str) -> Path:
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "mod.py").write_text(source)
    return root


class TestStandaloneCli:
    def test_clean_tree_exits_zero(self, tmp_path: Path, capsys) -> None:
        assert lint_main([str(_tree(tmp_path, CLEAN))]) == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_dirty_tree_exits_one(self, tmp_path: Path, capsys) -> None:
        assert lint_main([str(_tree(tmp_path, DIRTY))]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path: Path, capsys) -> None:
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_bad_select_exits_two(self, tmp_path: Path, capsys) -> None:
        root = _tree(tmp_path, CLEAN)
        assert lint_main([str(root), "--select", "REP999"]) == 2
        assert "REP999" in capsys.readouterr().err

    def test_select_limits_rules(self, tmp_path: Path) -> None:
        root = _tree(tmp_path, DIRTY)
        assert lint_main([str(root), "--select", "REP007"]) == 0
        assert lint_main([str(root), "--select", "REP001"]) == 1

    def test_list_rules(self, capsys) -> None:
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP001" in out and "REP008" in out

    def test_json_format(self, tmp_path: Path, capsys) -> None:
        root = _tree(tmp_path, DIRTY)
        assert lint_main([str(root), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["counts"]["failures"] == 1


class TestBaselineWorkflow:
    def test_write_then_apply_baseline(self, tmp_path: Path, capsys) -> None:
        root = _tree(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(root), "--write-baseline", str(baseline)]) == 0
        assert "grandfathering 1 violation(s)" in capsys.readouterr().out
        # Grandfathered: the same tree now passes under the baseline.
        assert lint_main([str(root), "--baseline", str(baseline)]) == 0

    def test_ratchet_fails_on_stale_entry(self, tmp_path: Path, capsys) -> None:
        root = _tree(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(root), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        (root / "mod.py").write_text(CLEAN)  # pay off the debt
        assert lint_main([str(root), "--baseline", str(baseline)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_missing_baseline_exits_two(self, tmp_path: Path, capsys) -> None:
        root = _tree(tmp_path, CLEAN)
        assert lint_main([str(root), "--baseline", str(tmp_path / "nope.json")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestEsgReproRoute:
    def test_lint_subcommand_reaches_linter(self, tmp_path: Path, capsys) -> None:
        root = _tree(tmp_path, DIRTY)
        assert esg_main(["lint", str(root)]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_lint_subcommand_clean_exit(self, tmp_path: Path) -> None:
        assert esg_main(["lint", str(_tree(tmp_path, CLEAN))]) == 0

    def test_lint_must_be_first_argument(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            esg_main(["--seed", "1", "lint"])
        assert excinfo.value.code == 2
        assert "must be the first argument" in capsys.readouterr().err
