"""Unit tests for the ratcheted baseline."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    match_baseline,
)
from repro.analysis.violations import Violation


def _violation(
    rule: str = "REP001",
    path: str = "pkg/mod.py",
    line: int = 10,
    snippet: str = "t = time.time()",
    suppressed: bool = False,
) -> Violation:
    return Violation(
        rule=rule,
        path=path,
        line=line,
        col=4,
        message="msg",
        snippet=snippet,
        suppressed=suppressed,
        justification="why" if suppressed else "",
    )


class TestMatching:
    def test_matched_violation_is_baselined_not_failing(self) -> None:
        baseline = Baseline(
            entries=[BaselineEntry("REP001", "pkg/mod.py", "t = time.time()")]
        )
        matched, stale = match_baseline([_violation()], baseline)
        assert matched[0].baselined
        assert not matched[0].is_failure
        assert stale == []

    def test_matching_is_by_content_not_line_number(self) -> None:
        baseline = Baseline(
            entries=[BaselineEntry("REP001", "pkg/mod.py", "t = time.time()")]
        )
        moved = _violation(line=999)
        matched, stale = match_baseline([moved], baseline)
        assert matched[0].baselined
        assert stale == []

    def test_unmatched_violation_stays_a_failure(self) -> None:
        baseline = Baseline(entries=[])
        matched, stale = match_baseline([_violation()], baseline)
        assert not matched[0].baselined
        assert matched[0].is_failure

    def test_count_budget_is_consumed_per_match(self) -> None:
        baseline = Baseline(
            entries=[BaselineEntry("REP001", "pkg/mod.py", "t = time.time()", count=1)]
        )
        two = [_violation(line=10), _violation(line=20)]
        matched, stale = match_baseline(two, baseline)
        assert sum(violation.baselined for violation in matched) == 1
        assert sum(violation.is_failure for violation in matched) == 1
        assert stale == []

    def test_stale_entry_is_reported(self) -> None:
        baseline = Baseline(
            entries=[BaselineEntry("REP004", "gone.py", "for x in s:")]
        )
        matched, stale = match_baseline([], baseline)
        assert matched == []
        assert stale == [BaselineEntry("REP004", "gone.py", "for x in s:", count=1)]

    def test_suppressed_violations_never_consume_budget(self) -> None:
        baseline = Baseline(
            entries=[BaselineEntry("REP001", "pkg/mod.py", "t = time.time()")]
        )
        suppressed = _violation(suppressed=True)
        matched, stale = match_baseline([suppressed], baseline)
        assert not matched[0].baselined
        # The budget went unconsumed, so the entry is stale: a suppression
        # and a baseline entry for the same site is double-bookkeeping.
        assert len(stale) == 1


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path: Path) -> None:
        baseline = Baseline.from_violations(
            [_violation(), _violation(line=20), _violation(rule="REP007", snippet="os.getenv('X')")]
        )
        target = tmp_path / "baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        assert loaded.entries == baseline.entries
        # count aggregated for the duplicated content key
        assert {entry.count for entry in loaded.entries} == {1, 2}

    def test_from_violations_skips_suppressed(self) -> None:
        baseline = Baseline.from_violations([_violation(suppressed=True)])
        assert baseline.entries == []

    def test_load_rejects_unknown_version(self, tmp_path: Path) -> None:
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported version"):
            Baseline.load(target)

    def test_checked_in_baseline_shape(self) -> None:
        repo_baseline = Path(__file__).resolve().parents[2] / "lint-baseline.json"
        document = json.loads(repo_baseline.read_text())
        assert document["version"] == 1
        assert isinstance(document["entries"], list)
