"""Corpus tests: every rule must catch its positives and pass its negatives.

The corpus lives in ``tests/analysis/corpus/`` as ``repNNN_pos_K.py`` /
``repNNN_neg_K.py`` snippets.  Positive snippets mark each line where the
rule must fire with a trailing ``# expect[REPNNN]`` comment; the test
asserts the rule's findings land on *exactly* those lines.  Negative
snippets must produce zero findings for their rule.

The coverage gate is parametrized over the registered rule catalog, so
adding a rule without at least two positive and two negative corpus
snippets fails the suite — corpus coverage ratchets with the catalog.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.engine import analyze_source
from repro.analysis.rules import rule_codes

CORPUS = Path(__file__).parent / "corpus"

_EXPECT_RE = re.compile(r"#\s*expect\[(?P<code>REP\d{3})\]")


def _corpus_files(code: str, kind: str) -> list[Path]:
    return sorted(CORPUS.glob(f"{code.lower()}_{kind}_*.py"))


def _expected_lines(source: str, code: str) -> set[int]:
    expected: set[int] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match and match.group("code") == code:
            expected.add(lineno)
    return expected


def _rule_violation_lines(source: str, path: str, code: str) -> list[int]:
    violations = analyze_source(source, path=path)
    return [violation.line for violation in violations if violation.rule == code]


@pytest.mark.parametrize("code", rule_codes())
def test_corpus_coverage_gate(code: str) -> None:
    """Each registered rule needs >= 2 positive and >= 2 negative snippets."""
    positives = _corpus_files(code, "pos")
    negatives = _corpus_files(code, "neg")
    assert len(positives) >= 2, (
        f"{code} has {len(positives)} positive corpus snippet(s); add "
        f"{code.lower()}_pos_*.py files under {CORPUS}"
    )
    assert len(negatives) >= 2, (
        f"{code} has {len(negatives)} negative corpus snippet(s); add "
        f"{code.lower()}_neg_*.py files under {CORPUS}"
    )


@pytest.mark.parametrize("code", rule_codes())
def test_positives_fire_on_marked_lines(code: str) -> None:
    """Positive snippets: the rule fires exactly on the expect-marked lines."""
    for path in _corpus_files(code, "pos"):
        source = path.read_text()
        expected = _expected_lines(source, code)
        assert expected, f"{path.name} has no '# expect[{code}]' markers"
        actual = _rule_violation_lines(source, path.name, code)
        assert set(actual) == expected, (
            f"{path.name}: {code} fired on lines {sorted(set(actual))}, "
            f"expected exactly {sorted(expected)}"
        )


@pytest.mark.parametrize("code", rule_codes())
def test_negatives_stay_clean(code: str) -> None:
    """Negative snippets: zero findings for their rule."""
    for path in _corpus_files(code, "neg"):
        source = path.read_text()
        actual = _rule_violation_lines(source, path.name, code)
        assert not actual, (
            f"{path.name}: {code} unexpectedly fired on lines {actual}"
        )


def test_no_orphan_corpus_files() -> None:
    """Every corpus file belongs to a registered rule and a known kind."""
    known = set(rule_codes())
    name_re = re.compile(r"^(?P<code>rep\d{3})_(?P<kind>pos|neg)_\d+\.py$")
    for path in sorted(CORPUS.glob("*.py")):
        match = name_re.match(path.name)
        assert match, f"corpus file {path.name} does not match repNNN_(pos|neg)_K.py"
        assert match.group("code").upper() in known, (
            f"corpus file {path.name} names unregistered rule "
            f"{match.group('code').upper()}"
        )


def test_expect_markers_name_their_own_rule() -> None:
    """An expect marker inside repNNN_pos must name REPNNN (typo guard)."""
    for path in sorted(CORPUS.glob("*_pos_*.py")):
        own_code = path.name.split("_")[0].upper()
        for match in _EXPECT_RE.finditer(path.read_text()):
            assert match.group("code") == own_code, (
                f"{path.name} carries an expect marker for "
                f"{match.group('code')}, not {own_code}"
            )
