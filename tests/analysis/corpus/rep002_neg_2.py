"""REP002 negative: hash()/id() uses that never reach a key or seed."""

import hashlib


def same_object(a, b):
    # Identity comparison consumes id() immediately — nothing persists.
    return id(a) == id(b)


def stable_key(name: str) -> int:
    # The blake2s construction is the sanctioned replacement.
    return int.from_bytes(hashlib.blake2s(name.encode(), digest_size=4).digest(), "little")
