"""REP004 positive: materializing set order into ordered containers."""


class Tracker:
    def __init__(self):
        self._dirty: set[str] = set()

    def snapshot(self):
        return list(self._dirty)  # expect[REP004]


def summarize(samples):
    distinct = frozenset(samples)
    ordered = [value for value in distinct]  # expect[REP004]
    grand_total = sum(value for value in distinct)  # expect[REP004]
    return ordered, grand_total
