"""REP008 negative: an explicit total-order key is the sanctioned pattern."""


class PathCandidate:
    def __init__(self, cost_cents, latency_ms):
        self.cost_cents = cost_cents
        self.latency_ms = latency_ms


def rank(entries):
    candidates = [PathCandidate(e.cost, e.latency) for e in entries]
    candidates.sort(key=lambda c: (c.cost_cents, c.latency_ms))
    return candidates
