"""REP006 positive: locally-defined closures in spec fields."""


def build_scenario(apps, horizon_ms):
    def pick_arrival(rng):
        return rng.exponential(100.0)

    return Scenario(  # noqa: F821 - corpus snippet
        applications=apps,
        arrival=pick_arrival,  # expect[REP006]
        horizon_ms=horizon_ms,
    )
