"""REP002 negative: in-process protocol uses of hash() are legitimate."""


class FrozenKey:
    def __init__(self, parts):
        self.parts = tuple(parts)

    def __hash__(self):
        # Defining __hash__ in terms of hash() is the protocol itself; the
        # value never leaves the process.
        return hash(self.parts)

    def __eq__(self, other):
        return isinstance(other, FrozenKey) and self.parts == other.parts
