"""REP003 positive: the stdlib global RNG in simulation code."""

import random
from random import shuffle


def jitter(values):
    shuffle(values)  # expect[REP003]
    return values


def noisy_latency(base_ms):
    return base_ms * (1.0 + random.gauss(0.0, 0.05))  # expect[REP003]
