"""REP005 positive: mutable defaults on spec/config classes."""

from dataclasses import dataclass


@dataclass
class SweepConfig:
    label: str = "default"
    overrides: dict = {}  # expect[REP005]


class RetrySpec:
    attempts = []  # expect[REP005]

    def register(self, names=set()):  # expect[REP005]
        self.attempts.extend(names)
