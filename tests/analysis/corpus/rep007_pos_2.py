"""REP007 positive: os.getenv and aliased environment access."""

import os as _os
from os import getenv


def chunk_size():
    return int(getenv("REPRO_CHUNK", "256"))  # expect[REP007]


def keepalive_ms(config):
    override = _os.getenv("REPRO_KEEPALIVE_MS")  # expect[REP007]
    return float(override) if override else config.keep_alive_ms
