"""REP006 positive: lambdas in picklable spec fields."""


def build_specs(policy_names):
    return [
        RunSpec(  # noqa: F821 - corpus snippet, name resolution is irrelevant
            policy=name,
            on_event=lambda event: event,  # expect[REP006]
        )
        for name in policy_names
    ]


def tweak(spec):
    return replace(spec, selector=lambda inv: inv[0])  # expect[REP006] # noqa: F821
