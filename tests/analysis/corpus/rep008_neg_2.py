"""REP008 negative: classes that define a total order sort fine bare."""

from dataclasses import dataclass, field


@dataclass(order=True)
class Ranked:
    score: float
    name: str = field(compare=False, default="")


class Interval:
    def __init__(self, start):
        self.start = start

    def __lt__(self, other):
        return self.start < other.start


def order_all(raw_scores, raw_starts):
    ranked = [Ranked(s) for s in raw_scores]
    intervals = [Interval(s) for s in raw_starts]
    return sorted(ranked), sorted(intervals), sorted(raw_scores)
