"""REP003 negative: seeded generators threaded through explicitly."""

import numpy as np


def sample_intervals(rng: np.random.Generator, n: int):
    # Instance methods on a handed-down Generator are the sanctioned path.
    return rng.exponential(scale=100.0, size=n)


def make_stream(seed: int):
    # Explicitly seeded construction is deterministic.
    return np.random.default_rng(seed)
