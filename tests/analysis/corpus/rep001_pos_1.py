"""REP001 positive: direct wall-clock reads in simulation code."""

import time
from datetime import datetime


def schedule_pass(queue, now_ms):
    started = time.time()  # expect[REP001]
    stamp = datetime.now()  # expect[REP001]
    return started, stamp, now_ms
