"""REP004 negative: order-free set consumption is fine."""


def reconcile(tracked, live):
    # Membership tests and set algebra never observe iteration order.
    missing = tracked - live
    if not missing:
        return tracked & live
    return missing


def prune(candidates, keep):
    survivors = set()
    for candidate in candidates:  # candidates is a list — ordered input
        if candidate in keep:
            survivors.add(candidate)
    count = len(survivors)
    return survivors, count
