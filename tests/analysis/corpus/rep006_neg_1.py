"""REP006 negative: module-level functions pickle fine in spec fields."""


def default_arrival(rng):
    return rng.exponential(100.0)


def build_scenario(apps, horizon_ms):
    return Scenario(  # noqa: F821 - corpus snippet
        applications=apps,
        arrival=default_arrival,
        horizon_ms=horizon_ms,
    )
