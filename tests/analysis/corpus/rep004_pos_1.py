"""REP004 positive: float accumulation and event emission over sets."""


def total_cost(jobs):
    pending = {job for job in jobs if not job.done}
    total = 0.0
    for job in pending:  # expect[REP004]
        total += job.cost_cents
    return total


def flush(event_loop, invokers):
    stale = set(invokers)
    for invoker in stale:  # expect[REP004]
        event_loop.push(invoker.expiry_event())
