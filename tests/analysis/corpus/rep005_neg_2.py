"""REP005 negative: immutable defaults and non-spec class attributes."""


def retry(fn, attempts=3, backoff_ms=(10, 100, 1000)):
    for delay in backoff_ms[:attempts]:
        if fn(delay):
            return True
    return False


class _ScratchBuffer:
    # Not a dataclass and not a *Spec/*Config class: a deliberate
    # module-internal shared cache is outside this rule's scope.
    entries = []
