"""REP002 positive: hash()/id() flowing into RNG seeds."""

import numpy as np


def derive_stream(label):
    seed = hash(label)  # expect[REP002]
    return seed


def make_rng(consumer):
    return np.random.default_rng(id(consumer))  # expect[REP002]
