"""REP003 positive: numpy's legacy global RNG and unseeded constructors."""

import numpy as np
import numpy.random as npr


def sample_intervals(n):
    return np.random.exponential(scale=100.0, size=n)  # expect[REP003]


def reseed_worker():
    npr.seed(0)  # expect[REP003]


def fresh_stream():
    return np.random.default_rng()  # expect[REP003]
