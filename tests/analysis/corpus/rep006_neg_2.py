"""REP006 negative: lambdas are fine outside picklable spec boundaries."""


def cheapest(candidates):
    # sorted() runs in-process; a lambda key never crosses a pickle boundary.
    return sorted(candidates, key=lambda c: (c.cost_cents, c.latency_ms))


def bind_logger(registry, name):
    registry[name] = lambda msg: print(f"[{name}] {msg}")
    return registry
