"""REP004 negative: sorted() restores a total order before consumption."""


def total_cost(jobs):
    pending = {job.job_id for job in jobs if not job.done}
    total = 0.0
    for job_id in sorted(pending):
        total += job_id * 0.5
    return total


def flush(event_loop, invoker_ids):
    stale = set(invoker_ids)
    for invoker_id in sorted(stale):
        event_loop.push(invoker_id)
