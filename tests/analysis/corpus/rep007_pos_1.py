"""REP007 positive: environment reads inside simulation code."""

import os


def worker_count():
    return int(os.environ["REPRO_JOBS"])  # expect[REP007]


def debug_enabled():
    return os.environ.get("REPRO_DEBUG", "0") == "1"  # expect[REP007]
