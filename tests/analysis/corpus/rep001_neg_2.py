"""REP001 negative: importing time (e.g. for sleep) is not reading the clock."""

import time


def backoff(attempt):
    # Sleeping changes pacing, not results; only clock *reads* are flagged.
    time.sleep(0.01 * attempt)


def record(times_ms, value):
    # Attribute access named like the module on another object is fine.
    times_ms.append(value)
    return times_ms
