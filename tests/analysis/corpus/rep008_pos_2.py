"""REP008 positive: dataclasses without order=True are not sortable either."""

from dataclasses import dataclass


@dataclass
class Placement:
    invoker_id: int
    score: float


def order_placements(raw):
    placements = [Placement(i, s) for i, s in raw]
    return sorted(placements)  # expect[REP008]


def merge(left, right):
    merged = [Placement(i, s) for i, s in left + right]
    merged.sort()  # expect[REP008]
    return merged
