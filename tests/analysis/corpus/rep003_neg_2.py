"""REP003 negative: names that merely look like the random module."""


class _Sampler:
    def random(self):
        return 0.5


def draw(sampler: _Sampler):
    # `sampler.random()` is an instance method, not the random module.
    random = sampler.random()
    return random


def choose(options, rng):
    return rng.choice(options)
