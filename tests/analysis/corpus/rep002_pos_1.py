"""REP002 positive: hash()/id() flowing into cache keys and sort keys."""


def remember(cache, spec, value):
    cache[hash(spec)] = value  # expect[REP002]
    return cache


def stable_order(entries):
    return sorted(entries, key=lambda entry: hash(entry.name))  # expect[REP002]
