"""REP001 positive: aliased imports do not hide the wall clock."""

import time as _time
from time import perf_counter as tick


def measure_plan(policy, queue):
    start = tick()  # expect[REP001]
    decision = policy.plan(queue)
    elapsed = (_time.perf_counter() - start) * 1000.0  # expect[REP001]
    return decision, elapsed
