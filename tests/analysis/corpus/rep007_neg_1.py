"""REP007 negative: configuration threaded through the spec, not the env."""


def worker_count(config):
    return config.n_jobs


def keepalive_ms(config):
    return config.keep_alive_ms
