"""REP005 positive: mutable default arguments."""


def collect(value, seen=[]):  # expect[REP005]
    seen.append(value)
    return seen


def merge(updates, base={}):  # expect[REP005]
    base.update(updates)
    return base
