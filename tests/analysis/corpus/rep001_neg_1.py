"""REP001 negative: simulated time comes from the event loop, not the host."""


def schedule_pass(simulation, queue):
    now_ms = simulation.now_ms
    deadline = now_ms + queue.slo_ms
    return deadline


def modeled_overhead(expansions, per_expansion_ms):
    return expansions * per_expansion_ms
