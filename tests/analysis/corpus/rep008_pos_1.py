"""REP008 positive: sorting instances of a class with no total order."""


class PathCandidate:
    def __init__(self, cost_cents, latency_ms):
        self.cost_cents = cost_cents
        self.latency_ms = latency_ms


def rank(entries):
    candidates = [PathCandidate(e.cost, e.latency) for e in entries]
    candidates.sort()  # expect[REP008]
    return candidates


def best_two(a, b):
    return sorted([PathCandidate(a, 0.0), PathCandidate(b, 0.0)])  # expect[REP008]
