"""REP005 negative: the sanctioned default patterns."""

from dataclasses import dataclass, field


@dataclass
class SweepConfig:
    label: str = "default"
    overrides: dict = field(default_factory=dict)
    seeds: tuple = ()


def collect(value, seen=None):
    if seen is None:
        seen = []
    seen.append(value)
    return seen
