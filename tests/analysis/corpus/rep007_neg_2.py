"""REP007 negative: names that merely look like environment access."""


class _Context:
    def __init__(self, environ):
        self.environ = dict(environ)

    def get(self, key, default=None):
        # A snapshot dict *named* environ is explicit state, not ambient.
        return self.environ.get(key, default)


def resolve(context: _Context):
    environ = {"REPRO_JOBS": "4"}
    return context.get("REPRO_JOBS", environ["REPRO_JOBS"])
