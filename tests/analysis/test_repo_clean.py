"""Tier-1 gate: ``src/repro`` honors the byte-identity contract.

This is the enforcement point of the determinism linter: every rule runs
over the whole package, and anything that is neither justified inline
(``# repro: allow[CODE] why``) nor grandfathered in ``lint-baseline.json``
fails the suite.  Stale baseline entries fail too — the ratchet only
tightens.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.engine import analyze_path, format_text

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / "lint-baseline.json"


def test_package_sources_exist() -> None:
    assert PACKAGE_ROOT.is_dir(), f"expected package sources at {PACKAGE_ROOT}"
    assert BASELINE_PATH.is_file(), f"expected checked-in baseline at {BASELINE_PATH}"


def test_repo_has_no_unjustified_violations() -> None:
    baseline = Baseline.load(BASELINE_PATH)
    report = analyze_path(PACKAGE_ROOT, baseline=baseline)
    assert report.files_analyzed > 0
    assert report.ok, "determinism lint failed:\n" + format_text(report)


def test_every_suppression_carries_a_justification() -> None:
    """Redundant with REP000 in principle; kept as a direct, readable gate."""
    baseline = Baseline.load(BASELINE_PATH)
    report = analyze_path(PACKAGE_ROOT, baseline=baseline)
    for violation in report.suppressed:
        assert violation.justification, (
            f"{violation.location()}: suppressed {violation.rule} "
            "without a justification"
        )
