"""Unit tests for the analysis engine: layering, selection, reports."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.engine import (
    DEFAULT_LAYER_ALLOWLIST,
    REPORT_SCHEMA_VERSION,
    LintConfig,
    analyze_path,
    analyze_paths,
    analyze_source,
    format_json,
    format_text,
)
from repro.analysis.rules import RULES, rule_codes

WALL_CLOCK = "import time\n\nt = time.perf_counter()\n"


class TestLayering:
    def test_layered_rule_skipped_in_allowlisted_layer(self) -> None:
        assert analyze_source(WALL_CLOCK, path="experiments/cli.py") == []
        assert analyze_source(WALL_CLOCK, path="benchmarks/bench_x.py") == []

    def test_layered_rule_fires_in_simulation_code(self) -> None:
        violations = analyze_source(WALL_CLOCK, path="cluster/controller.py")
        assert [violation.rule for violation in violations] == ["REP001"]

    def test_custom_allowlist(self) -> None:
        config = LintConfig(layer_allowlist=("special/*",))
        assert analyze_source(WALL_CLOCK, path="special/mod.py", config=config) == []
        assert analyze_source(WALL_CLOCK, path="experiments/cli.py", config=config)

    def test_default_allowlist_covers_cli_and_benchmarks(self) -> None:
        config = LintConfig()
        assert config.is_allowlisted("repro/experiments/cli.py")
        assert config.is_allowlisted("benchmarks/bench_sweep.py")
        assert config.is_allowlisted("conftest.py")
        assert not config.is_allowlisted("repro/cluster/controller.py")
        assert DEFAULT_LAYER_ALLOWLIST  # the default is non-empty by contract


class TestSelection:
    def test_select_restricts_rules(self) -> None:
        config = LintConfig(select=("REP007",))
        violations = analyze_source(WALL_CLOCK, path="pkg/mod.py", config=config)
        assert violations == []

    def test_unknown_select_raises(self) -> None:
        with pytest.raises(ValueError, match="REP999"):
            LintConfig(select=("REP999",)).active_rules()

    def test_rule_catalog_is_stable(self) -> None:
        codes = rule_codes()
        assert codes == tuple(sorted(codes))
        assert len(codes) == len(set(codes))
        assert codes == tuple(rule.code for rule in RULES)
        assert len(codes) >= 8  # the determinism catalog: REP001..REP008


class TestFileDiscovery:
    def test_paths_are_root_relative_posix(self, tmp_path: Path) -> None:
        package = tmp_path / "pkg" / "sub"
        package.mkdir(parents=True)
        (package / "mod.py").write_text(WALL_CLOCK)
        report = analyze_path(tmp_path / "pkg")
        assert report.files_analyzed == 1
        assert report.violations[0].path == "sub/mod.py"

    def test_single_file_root(self, tmp_path: Path) -> None:
        target = tmp_path / "mod.py"
        target.write_text(WALL_CLOCK)
        report = analyze_path(target)
        assert report.files_analyzed == 1
        assert report.violations[0].path == "mod.py"

    def test_multiple_roots_aggregate(self, tmp_path: Path) -> None:
        for name in ("a", "b"):
            (tmp_path / name).mkdir()
            (tmp_path / name / "mod.py").write_text(WALL_CLOCK)
        report = analyze_paths([tmp_path / "a", tmp_path / "b"])
        assert report.files_analyzed == 2
        assert len(report.failures) == 2


class TestReports:
    def _report(self, tmp_path: Path):
        (tmp_path / "mod.py").write_text(WALL_CLOCK)
        return analyze_path(tmp_path)

    def test_exit_code_tracks_ok(self, tmp_path: Path) -> None:
        report = self._report(tmp_path)
        assert not report.ok
        assert report.exit_code == 1
        clean = analyze_source("x = 1\n", path="pkg/mod.py")
        assert clean == []

    def test_text_format_has_location_and_summary(self, tmp_path: Path) -> None:
        text = format_text(self._report(tmp_path))
        assert "mod.py:3" in text
        assert "REP001" in text
        assert "1 failure(s)" in text

    def test_json_format_schema(self, tmp_path: Path) -> None:
        document = json.loads(format_json(self._report(tmp_path)))
        assert document["version"] == REPORT_SCHEMA_VERSION
        assert document["ok"] is False
        assert document["counts"]["failures"] == 1
        assert document["counts"]["total"] == 1
        (violation,) = document["violations"]
        assert violation["rule"] == "REP001"
        assert violation["path"] == "mod.py"
        assert set(document["rules"]) == set(rule_codes())
        for metadata in document["rules"].values():
            assert set(metadata) == {"name", "summary", "layered"}
