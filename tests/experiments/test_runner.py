"""Tests for the shared experiment runner."""

from __future__ import annotations

import pytest

from repro.baselines.infless import INFlessPolicy
from repro.core.esg import ESGPolicy
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    EXPERIMENT_SPACE,
    ExperimentConfig,
    build_profile_store,
    build_requests,
    make_policy,
    run_experiment,
    run_matrix,
    run_setting,
    summaries_by_policy,
)
from repro.workloads.generator import WORKLOAD_SETTINGS


class TestMakePolicy:
    @pytest.mark.parametrize("name", DEFAULT_POLICIES)
    def test_all_paper_policies_constructible(self, name):
        policy = make_policy(name)
        assert policy.name == name

    def test_name_is_case_insensitive(self):
        assert isinstance(make_policy("esg"), ESGPolicy)
        assert isinstance(make_policy("INFLESS"), INFlessPolicy)

    def test_overrides_forwarded(self):
        policy = make_policy("ESG", k=7)
        assert policy.k == 7

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("made-up")


class TestBuilders:
    def test_experiment_space_has_64_configs(self):
        assert EXPERIMENT_SPACE.size == 64

    def test_build_requests_identical_across_calls(self):
        store = build_profile_store()
        a = build_requests("strict-light", 20, seed=5, profile_store=store)
        b = build_requests("strict-light", 20, seed=5, profile_store=store)
        assert [(r.arrival_ms, r.app_name, r.slo_ms) for r in a] == [
            (r.arrival_ms, r.app_name, r.slo_ms) for r in b
        ]

    def test_experiment_config_overrides(self):
        config = ExperimentConfig(num_requests=10).with_overrides(seed=9)
        assert config.seed == 9
        assert config.num_requests == 10


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def small_run(self):
        config = ExperimentConfig(num_requests=25, seed=3)
        return run_experiment("ESG", "moderate-normal", config=config)

    def test_summary_counts(self, small_run):
        assert small_run.summary.num_requests == 25
        assert small_run.summary.num_completed == 25
        assert 0.0 <= small_run.slo_hit_rate <= 1.0
        assert small_run.total_cost_cents > 0

    def test_metrics_accessible(self, small_run):
        assert len(small_run.metrics.tasks) >= 25  # at least one task per request
        assert small_run.metrics.app_names()

    def test_run_setting_wrapper(self):
        summary = run_setting("INFless", "relaxed-heavy", num_requests=15, seed=2)
        assert summary.policy == "INFless"
        assert summary.setting == "relaxed-heavy"

    def test_unknown_setting_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("ESG", "no-such-setting", config=ExperimentConfig(num_requests=5))


class TestRunMatrix:
    def test_matrix_covers_requested_cells(self):
        config = ExperimentConfig(num_requests=12, seed=1)
        results = run_matrix(["ESG", "INFless"], ["strict-light"], config=config)
        assert set(results) == {("strict-light", "ESG"), ("strict-light", "INFless")}
        by_policy = summaries_by_policy(results, "strict-light")
        assert set(by_policy) == {"ESG", "INFless"}

    def test_matrix_uses_identical_workloads_per_policy(self):
        config = ExperimentConfig(num_requests=10, seed=4)
        results = run_matrix(["ESG", "FaST-GShare"], ["moderate-normal"], config=config)
        esg_requests = results[("moderate-normal", "ESG")].requests
        fast_requests = results[("moderate-normal", "FaST-GShare")].requests
        assert [(r.arrival_ms, r.app_name) for r in esg_requests] == [
            (r.arrival_ms, r.app_name) for r in fast_requests
        ]

    def test_all_settings_registered(self):
        assert set(WORKLOAD_SETTINGS) == {"strict-light", "moderate-normal", "relaxed-heavy"}

    def test_duplicate_policy_names_rejected_before_running(self):
        config = ExperimentConfig(num_requests=6, seed=1)
        with pytest.raises(ValueError, match="duplicate policy names: 'ESG'"):
            run_matrix([ESGPolicy(), ESGPolicy(k=2)], ["strict-light"], config=config)

    def test_duplicate_setting_names_rejected_before_running(self):
        config = ExperimentConfig(num_requests=6, seed=1)
        setting = WORKLOAD_SETTINGS["strict-light"]
        with pytest.raises(ValueError, match="duplicate setting names"):
            run_matrix([ESGPolicy()], [setting, setting], config=config)
