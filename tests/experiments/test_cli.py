"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_known_experiments_parse(self):
        parser = build_parser()
        args = parser.parse_args(["tables"])
        assert args.experiment == "tables"
        assert args.requests == 120

    def test_options_parse(self):
        args = build_parser().parse_args(["fig5", "--requests", "30", "--seed", "9"])
        assert args.requests == 30
        assert args.seed == 9

    def test_jobs_option_parses_and_defaults_to_sequential(self):
        assert build_parser().parse_args(["fig6"]).jobs == 1
        assert build_parser().parse_args(["fig6", "--jobs", "4"]).jobs == 4

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestMain:
    def test_tables_command_prints_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out

    def test_fig5_command(self, capsys):
        assert main(["fig5", "--seed", "3"]) == 0
        assert "Figure 5" in capsys.readouterr().out
