"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_known_experiments_parse(self):
        parser = build_parser()
        args = parser.parse_args(["tables"])
        assert args.experiment == "tables"
        assert args.requests == 120

    def test_options_parse(self):
        args = build_parser().parse_args(["fig5", "--requests", "30", "--seed", "9"])
        assert args.requests == 30
        assert args.seed == 9

    def test_jobs_option_parses_and_defaults_to_sequential(self):
        assert build_parser().parse_args(["fig6"]).jobs == 1
        assert build_parser().parse_args(["fig6", "--jobs", "4"]).jobs == 4

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_topology_and_num_invokers_options(self):
        from repro.cluster.cluster import ClusterConfig
        from repro.experiments.cli import _cluster_from_args

        args = build_parser().parse_args(["fig6"])
        assert _cluster_from_args(args) == ClusterConfig()

        args = build_parser().parse_args(["fig6", "--topology", "pod-256"])
        assert _cluster_from_args(args).num_invokers == 256

        args = build_parser().parse_args(["fig6", "--topology", "32x8x4"])
        cluster = _cluster_from_args(args)
        assert (cluster.num_invokers, cluster.vcpus_per_invoker, cluster.vgpus_per_invoker) == (
            32,
            8,
            4,
        )

        args = build_parser().parse_args(["fig6", "--num-invokers", "48"])
        assert _cluster_from_args(args).num_invokers == 48

        # --num-invokers refines a named topology's node count.
        args = build_parser().parse_args(
            ["fig6", "--topology", "pod-256", "--num-invokers", "12"]
        )
        assert _cluster_from_args(args).num_invokers == 12

    def test_workload_mode_option(self):
        from repro.experiments.cli import _config_from_args

        args = build_parser().parse_args(["fig6"])
        assert args.workload_mode == "materialized"
        args = build_parser().parse_args(["fig6", "--workload-mode", "streaming"])
        assert _config_from_args(args).workload_mode == "streaming"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--workload-mode", "bogus"])

    def test_invalid_topology_and_invoker_count_fail_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--topology", "bogus"])
        assert "registered name" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--num-invokers", "0"])
        assert "positive integer" in capsys.readouterr().err


class TestMain:
    def test_tables_command_prints_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out

    def test_fig5_command(self, capsys):
        assert main(["fig5", "--seed", "3"]) == 0
        assert "Figure 5" in capsys.readouterr().out
