"""Scenario execution through the runner, engine and CLI.

Covers the PR-2 acceptance criteria: the paper-default scenario reproduces
the pre-scenario RunSummary byte-for-byte, every new arrival process passes
cross-process (spawn) determinism parity, and horizon truncation interacts
correctly with the ``truncated`` flag.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.engine import ExperimentEngine, RunSpec, execute_spec
from repro.experiments.runner import (
    ExperimentConfig,
    run_experiment,
    run_scenario_matrix,
)
from repro.experiments.scenario_sweep import (
    render_scenario_comparison,
    render_scenario_list,
    run_scenario_sweep,
    scenario_rows,
)
from repro.workloads.scenarios import SCENARIOS, get_scenario

SMALL = ExperimentConfig(num_requests=6, seed=11)

#: One scenario per new arrival process (the spawn-parity acceptance set).
NEW_PROCESS_SCENARIOS = (
    "poisson-normal",
    "bursty-onoff-heavy",
    "diurnal-normal",
    "trace-replay-azure",
)


class TestRunSpecScenarios:
    def test_scenario_spec_round_trips_through_pickle(self):
        spec = RunSpec(policy="ESG", scenario="poisson-normal", config=SMALL)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_requires_setting_or_scenario(self):
        with pytest.raises(ValueError, match="setting or a scenario"):
            RunSpec(policy="ESG")

    def test_rejects_both_setting_and_scenario(self):
        with pytest.raises(ValueError, match="not both"):
            RunSpec(policy="ESG", setting="strict-light", scenario="poisson-normal")

    def test_rejects_unknown_scenario_eagerly(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            RunSpec(policy="ESG", scenario="no-such-scenario")

    def test_names_resolve_through_the_scenario(self):
        spec = RunSpec(policy="ESG", scenario="bursty-onoff-heavy", config=SMALL)
        assert spec.setting_name == "relaxed-heavy"
        assert spec.workload_name == "bursty-onoff-heavy"
        plain = RunSpec(policy="ESG", setting="strict-light", config=SMALL)
        assert plain.workload_name == "strict-light"


class TestPaperDefaultByteIdentity:
    def test_scenario_summary_identical_to_bare_setting(self):
        """Acceptance: the paper-default scenario reproduces pre-PR output."""
        for setting in ("strict-light", "moderate-normal"):
            bare = run_experiment("ESG", setting, config=SMALL)
            via = run_experiment("ESG", scenario=f"paper-{setting}", config=SMALL)
            assert via.summary == bare.summary, setting
            assert via.scenario_name == f"paper-{setting}"
            assert bare.scenario_name is None

    def test_execute_spec_matches_run_experiment(self):
        spec = RunSpec(policy="INFless", scenario="poisson-normal", config=SMALL)
        direct = run_experiment("INFless", scenario="poisson-normal", config=SMALL)
        assert execute_spec(spec).summary == direct.summary

    def test_conflicting_setting_and_scenario_rejected(self):
        with pytest.raises(ValueError, match="conflicts"):
            run_experiment(
                "ESG", "strict-light", scenario="paper-moderate-normal", config=SMALL
            )

    def test_setting_or_scenario_required(self):
        with pytest.raises(TypeError, match="setting or a scenario"):
            run_experiment("ESG", config=SMALL)


class TestCrossProcessParity:
    def test_registry_scenario_n_jobs_4_matches_n_jobs_1(self):
        """Acceptance: n_jobs=4 parity on a registry scenario."""
        scenarios = ("paper-moderate-normal", "mixed-dags-normal")
        sequential = run_scenario_matrix(scenarios, ("ESG", "INFless"), config=SMALL, n_jobs=1)
        parallel = run_scenario_matrix(scenarios, ("ESG", "INFless"), config=SMALL, n_jobs=4)
        assert set(sequential) == set(parallel)
        for key in sequential:
            assert sequential[key].summary == parallel[key].summary, key

    @pytest.mark.parametrize("scenario", NEW_PROCESS_SCENARIOS)
    def test_every_new_arrival_process_spawn_parity(self, scenario):
        """Acceptance: spawn workers (no fork inheritance) reproduce each
        new arrival process byte-for-byte."""
        specs = [RunSpec(policy="ESG", scenario=scenario, config=SMALL)]
        in_process = ExperimentEngine(n_jobs=1).run(specs)
        spawned = ExperimentEngine(n_jobs=2, mp_context="spawn").run(specs * 2)
        assert spawned[0].summary == in_process[0].summary
        assert spawned[1].summary == in_process[0].summary

    def test_keyed_results_use_scenario_names(self):
        results = run_scenario_matrix(("poisson-normal",), ("ESG",), config=SMALL)
        assert set(results) == {("poisson-normal", "ESG")}
        assert results[("poisson-normal", "ESG")].scenario_name == "poisson-normal"

    def test_unregistered_scenario_object_runs_even_in_spawn_workers(self):
        """Specs carry the resolved Scenario object, so a user-defined
        scenario that only exists in the parent process (or was never
        registered at all) still executes in spawn workers."""
        from repro.workloads.arrival import PoissonProcess
        from repro.workloads.scenarios import SCENARIOS, Scenario

        adhoc = Scenario(
            name="test-adhoc-unregistered",
            description="never registered",
            setting="strict-light",
            arrival=PoissonProcess(rate_per_s=30.0),
        )
        assert adhoc.name not in SCENARIOS
        results = run_scenario_matrix([adhoc], ("ESG",), config=SMALL, n_jobs=1)
        assert set(results) == {(adhoc.name, "ESG")}
        spec = RunSpec(policy="ESG", scenario=adhoc, config=SMALL)
        spawned = ExperimentEngine(n_jobs=2, mp_context="spawn").run([spec, spec])
        assert spawned[0].summary == results[(adhoc.name, "ESG")].summary
        assert spawned[1].summary == spawned[0].summary

    def test_scenario_names_normalise_to_objects_in_specs(self):
        spec = RunSpec(policy="ESG", scenario="poisson-normal", config=SMALL)
        assert spec.scenario == get_scenario("poisson-normal")


class TestHorizonTruncation:
    OVERLOAD = ExperimentConfig(num_requests=120, seed=3)

    def test_scenario_horizon_sets_truncated_flag(self):
        result = run_experiment("INFless", scenario="overload-spike", config=self.OVERLOAD)
        assert result.summary.truncated
        assert result.summary.num_completed < len(result.requests)

    def test_config_horizon_overrides_scenario_horizon(self):
        # A generous explicit horizon lets the whole spike drain.
        config = self.OVERLOAD.with_overrides(max_time_ms=10_000_000.0)
        result = run_experiment("INFless", scenario="overload-spike", config=config)
        assert not result.summary.truncated

    def test_unbounded_scenarios_do_not_truncate(self):
        result = run_experiment("ESG", scenario="paper-strict-light", config=SMALL)
        assert not result.summary.truncated

    def test_config_horizon_applies_without_scenario(self):
        config = SMALL.with_overrides(max_time_ms=30.0)
        result = run_experiment("ESG", "relaxed-heavy", config=config)
        assert result.summary.truncated


class TestScenarioSweep:
    def test_sweep_defaults_to_whole_registry(self):
        tiny = ExperimentConfig(num_requests=2, seed=1)
        results = run_scenario_sweep(policies=("ESG",), config=tiny)
        assert {scenario for scenario, _ in results} == set(SCENARIOS.names())
        rows = scenario_rows(results)
        assert len(rows) == len(SCENARIOS)
        rendered = render_scenario_comparison(rows)
        assert "Scenario comparison" in rendered
        for name in SCENARIOS.names():
            assert name in rendered

    def test_summary_only_results_skip_request_payloads(self):
        results = run_scenario_sweep(("poisson-normal",), ("ESG",), config=SMALL)
        result = results[("poisson-normal", "ESG")]
        assert result.requests == []
        assert result.summary.num_requests > 0


class TestScenarioCli:
    def test_list_scenarios_flag_parses_without_experiment(self):
        args = build_parser().parse_args(["--list-scenarios"])
        assert args.list_scenarios and args.experiment is None

    def test_scenario_flag_is_repeatable(self):
        args = build_parser().parse_args(
            ["compare", "--scenario", "poisson-normal", "--scenario", "diurnal-normal"]
        )
        assert args.scenario == ["poisson-normal", "diurnal-normal"]

    def test_list_scenarios_prints_the_registry(self, capsys):
        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        listed = [name for name in SCENARIOS.names() if name in out]
        assert len(listed) >= 6

    def test_missing_experiment_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_compare_command_runs_a_scenario(self, capsys):
        assert main(["compare", "--scenario", "poisson-normal", "--requests", "4"]) == 0
        out = capsys.readouterr().out
        assert "poisson-normal" in out and "ESG" in out

    def test_render_scenario_list_contains_descriptions(self):
        rendered = render_scenario_list()
        assert "MMPP" in rendered
        assert "paper-relaxed-heavy" in rendered
