"""Tests for the static table reproductions and the Figure 5 arrivals."""

from __future__ import annotations

import pytest

from repro.experiments.arrivals import render_figure5, run_figure5
from repro.experiments.report import format_percent, format_series, format_table
from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    table1_feature_matrix,
    table2_testbed,
    table3_functions,
)


class TestReport:
    def test_format_table_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_percent(self):
        assert format_percent(0.617) == "61.7%"
        assert format_percent(1.0, digits=0) == "100%"

    def test_format_series(self):
        text = format_series("curve", [(1, 0.5), (2, 0.25)])
        assert text.startswith("curve:")
        assert "1: 0.500" in text


class TestTable1:
    def test_feature_matrix_matches_paper(self):
        rows = {r.feature: r for r in table1_feature_matrix()}
        assert rows["GPU sharing"].esg and rows["GPU sharing"].infless
        assert not rows["GPU sharing"].orion
        assert rows["Inter-function relation"].orion and not rows["Inter-function relation"].infless
        assert rows["Data locality"].esg and not rows["Data locality"].aquatope
        assert len(rows) == 5

    def test_render_contains_all_systems(self):
        text = render_table1()
        for name in ("INFless", "FaST-GShare", "Orion", "Aquatope", "ESG"):
            assert name in text


class TestTable2:
    def test_testbed_defaults(self):
        data = table2_testbed()
        assert data["Nodes"] == "16"
        assert data["vCPUs per node"] == "16"
        assert data["vGPUs per node (MIG instances)"] == "7"
        assert data["Total vGPUs"] == "112"

    def test_render_table2(self):
        assert "Table 2" in render_table2()


class TestTable3:
    def test_rows_match_specs(self):
        rows = {r.function: r for r in table3_functions()}
        assert rows["super_resolution"].exec_time_ms == 86.0
        assert rows["background_removal"].model == "U2Net"
        assert len(rows) == 6

    def test_render_table3(self):
        text = render_table3()
        assert "SRGAN" in text and "MiDaS" in text


class TestFigure5:
    def test_distributions_cover_three_settings(self):
        distributions = run_figure5(num_jobs=100, seed=1)
        assert {d.setting for d in distributions} == {
            "strict-light",
            "moderate-normal",
            "relaxed-heavy",
        }
        for dist in distributions:
            assert len(dist.intervals_ms) == 100
            assert dist.low_ms <= dist.min_ms <= dist.max_ms <= dist.high_ms

    def test_heavy_intervals_shorter_than_light(self):
        distributions = {d.setting: d for d in run_figure5(num_jobs=200, seed=2)}
        assert distributions["relaxed-heavy"].mean_ms < distributions["moderate-normal"].mean_ms
        assert distributions["moderate-normal"].mean_ms < distributions["strict-light"].mean_ms

    def test_render(self):
        assert "Figure 5" in render_figure5(run_figure5(num_jobs=50, seed=3))
