"""Autoscale study: completeness, rendering, and the acceptance bar.

``test_adaptive_strictly_dominates_static`` is the PR's acceptance test:
on the study workloads at the default seed, at least one feedback
controller strictly dominates the static EWMA prewarmer (better on one of
cost / SLO attainment, at least equal on the other) on a diurnal or
on/off-burst scenario.
"""

from __future__ import annotations

import pytest

from repro.cluster.metrics import RunSummary
from repro.experiments.autoscale_study import (
    AUTOSCALE_STUDY_MODES,
    AUTOSCALE_STUDY_SCENARIOS,
    AutoscaleCell,
    autoscale_rows,
    autoscale_study_config,
    dominating_modes,
    render_autoscale_study,
    run_autoscale_study,
    strictly_dominates,
)
from repro.experiments.runner import ExperimentConfig

STUDY_SCENARIOS = ("diurnal-normal", "bursty-onoff-heavy")


@pytest.fixture(scope="module")
def results():
    return run_autoscale_study(
        STUDY_SCENARIOS, config=ExperimentConfig(num_requests=30, seed=42)
    )


def _summary(**overrides) -> RunSummary:
    defaults = dict(slo_hit_rate=0.5, total_cost_cents=10.0)
    defaults.update(overrides)
    fields = {f.name: 0 for f in RunSummary.__dataclass_fields__.values()}  # type: ignore[attr-defined]
    fields.update(defaults)
    return RunSummary(**fields)


class TestStrictDominance:
    def test_cheaper_at_equal_slo_dominates(self):
        assert strictly_dominates(_summary(total_cost_cents=9.0), _summary())

    def test_better_slo_at_equal_cost_dominates(self):
        assert strictly_dominates(_summary(slo_hit_rate=0.6), _summary())

    def test_equal_on_both_axes_does_not_dominate(self):
        assert not strictly_dominates(_summary(), _summary())

    def test_tradeoff_does_not_dominate(self):
        better_slo_worse_cost = _summary(slo_hit_rate=0.6, total_cost_cents=11.0)
        assert not strictly_dominates(better_slo_worse_cost, _summary())
        cheaper_worse_slo = _summary(slo_hit_rate=0.4, total_cost_cents=9.0)
        assert not strictly_dominates(cheaper_worse_slo, _summary())


class TestStudyGrid:
    def test_every_cell_present(self, results):
        modes = [mode for mode, _ in AUTOSCALE_STUDY_MODES]
        assert set(results) == {
            (scenario, mode) for scenario in STUDY_SCENARIOS for mode in modes
        }

    def test_config_pins_cold_capable_start(self):
        config = autoscale_study_config()
        assert config.controller.initial_warm == "home"
        # Every other knob carries over from the caller's config.
        tweaked = autoscale_study_config(ExperimentConfig(num_requests=7))
        assert tweaked.num_requests == 7
        assert tweaked.controller.initial_warm == "home"

    def test_rows_flatten_in_input_order(self, results):
        rows = autoscale_rows(results)
        assert [(r.scenario, r.mode) for r in rows] == list(results)
        for row in rows:
            assert isinstance(row, AutoscaleCell)
            assert 0.0 <= row.slo_hit_rate <= 1.0
            assert row.total_cost_cents >= 0.0
            assert row.num_completed > 0

    def test_identical_workload_within_a_row(self, results):
        """Modes within a scenario row are comparable: same request count."""
        for scenario in STUDY_SCENARIOS:
            counts = {
                results[(scenario, mode)].summary.num_requests
                for mode, _ in AUTOSCALE_STUDY_MODES
            }
            assert len(counts) == 1


class TestAcceptance:
    def test_adaptive_strictly_dominates_static(self, results):
        """The PR's acceptance bar: a feedback controller strictly dominates
        static prewarm on at least one diurnal or on/off-burst scenario."""
        dominance = dominating_modes(results)
        assert any(
            dominance.get(scenario)
            for scenario in ("diurnal-normal", "bursty-onoff-heavy")
        ), f"no adaptive mode dominates the static row anywhere: {dominance}"

    def test_default_grid_names_resolve(self):
        # The full default grid (including the churn row) must at least
        # name-resolve; the heavyweight run is exercised by the CLI.
        from repro.workloads.scenarios import get_scenario

        for name in AUTOSCALE_STUDY_SCENARIOS:
            get_scenario(name)


class TestRendering:
    def test_render_marks_dominating_modes(self, results):
        rows = autoscale_rows(results)
        dominance = dominating_modes(results)
        text = render_autoscale_study(rows, dominance=dominance)
        assert "Autoscale study" in text
        assert "scenario" in text and "prewarm" in text
        for scenario, modes in dominance.items():
            for mode in modes:
                assert f"{mode} *" in text
        assert "* strictly dominates the static row" in text

    def test_render_without_dominance_has_no_markers(self, results):
        text = render_autoscale_study(autoscale_rows(results))
        assert "*" not in text
