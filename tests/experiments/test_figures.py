"""Tests for the figure/table experiment modules (scaled-down runs)."""

from __future__ import annotations

import pytest

from repro.core.esg import ESGPolicy
from repro.experiments.ablation import ablation_variants, render_figure12, run_figure12
from repro.experiments.end_to_end import (
    figure6_rows,
    figure7_curves,
    figure8_rows,
    render_figure6,
    render_figure7,
    render_figure8,
    run_end_to_end,
)
from repro.experiments.miss_rate import render_table4, run_table4
from repro.experiments.orion_search import render_figure9, run_figure9
from repro.experiments.overhead import (
    render_bruteforce_comparison,
    render_figure10,
    run_bruteforce_comparison,
    run_figure10,
)
from repro.experiments.runner import ExperimentConfig
from repro.experiments.sensitivity import (
    render_figure11,
    render_group_size_search,
    run_figure11,
    run_group_size_search,
)

SMALL = ExperimentConfig(num_requests=20, seed=5)


@pytest.fixture(scope="module")
def small_matrix():
    """A tiny (2 policies x 2 settings) matrix shared by the figure tests."""
    return run_end_to_end(
        policies=("ESG", "FaST-GShare"),
        settings=("strict-light", "relaxed-heavy"),
        config=SMALL,
    )


class TestFigure6To8:
    def test_figure6_rows_normalised_to_esg(self, small_matrix):
        rows = figure6_rows(small_matrix)
        assert len(rows) == 4
        esg_rows = [r for r in rows if r.policy == "ESG"]
        assert all(r.cost_normalized_to_esg == pytest.approx(1.0) for r in esg_rows)
        assert all(0.0 <= r.slo_hit_rate <= 1.0 for r in rows)
        assert "Figure 6" in render_figure6(rows)

    def test_figure7_curves_cover_apps(self, small_matrix):
        curves = figure7_curves(small_matrix, setting="relaxed-heavy")
        assert curves
        assert all(c.setting == "relaxed-heavy" for c in curves)
        apps = {c.app for c in curves}
        assert apps  # at least one application observed
        for curve in curves:
            assert curve.slo_ms > 0
        assert "Figure 7" in render_figure7(curves)

    def test_figure8_rows_per_app(self, small_matrix):
        rows = figure8_rows(small_matrix)
        assert rows
        settings = {r.setting for r in rows}
        assert settings == {"strict-light", "relaxed-heavy"}
        assert "Figure 8" in render_figure8(rows)


class TestTable4:
    def test_miss_rate_rows(self):
        rows = run_table4(policies=("Aquatope",), settings=("relaxed-heavy",), config=SMALL)
        assert len(rows) == 1
        row = rows[0]
        assert row.plan_attempts > 0
        assert 0.0 <= row.miss_rate <= 1.0
        assert "Table 4" in render_table4(rows)


class TestFigure9:
    def test_orion_sweep_points(self):
        points = run_figure9(cutoffs_ms=(1.0, 50.0), config=SMALL)
        assert len(points) == 4  # 2 cutoffs x (with/without overhead)
        assert {p.count_search_overhead for p in points} == {True, False}
        assert "Figure 9" in render_figure9(points)

    def test_overhead_charged_only_when_counted(self):
        points = run_figure9(cutoffs_ms=(50.0,), config=SMALL)
        with_overhead = next(p for p in points if p.count_search_overhead)
        without = next(p for p in points if not p.count_search_overhead)
        assert with_overhead.mean_overhead_ms >= without.mean_overhead_ms


class TestFigure10:
    def test_overhead_distributions(self):
        distributions = run_figure10(settings=("moderate-normal",), config=SMALL)
        assert len(distributions) == 1
        dist = distributions[0]
        assert dist.stats.count > 0
        assert dist.mean_ms >= 0.0
        assert "Figure 10" in render_figure10(distributions)

    def test_bruteforce_comparison_agrees_and_is_faster(self):
        comparison = run_bruteforce_comparison()
        assert comparison.same_optimum
        assert comparison.esg_expansions < comparison.bruteforce_examined
        assert "search time" in render_bruteforce_comparison(comparison)


class TestFigure11:
    def test_k_sweep(self):
        points = run_figure11(k_values=(1, 5), config=SMALL)
        assert [p.k for p in points] == [1, 5]
        k5 = next(p for p in points if p.k == 5)
        assert k5.cost_normalized_to_k5 == pytest.approx(1.0)
        assert "Figure 11" in render_figure11(points)

    def test_group_size_search_times_grow(self):
        points = run_group_size_search(group_sizes=(1, 3))
        assert points[0].search_time_ms <= points[1].search_time_ms
        assert all(p.feasible for p in points)
        assert "group size" in render_group_size_search(points).lower()


class TestFigure12:
    def test_ablation_variants(self):
        variants = ablation_variants()
        assert set(variants) == {"ESG", "ESG w/o GPU sharing", "ESG w/o batching"}
        assert not variants["ESG w/o GPU sharing"].uses_gpu_sharing
        assert not variants["ESG w/o batching"].uses_batching

    def test_ablation_rows(self):
        variants = [
            ("ESG", ESGPolicy()),
            ("ESG w/o batching", ESGPolicy(batching=False, name="ESG w/o batching")),
        ]
        rows = run_figure12(config=SMALL, variants=variants)
        assert [r.variant for r in rows] == ["ESG", "ESG w/o batching"]
        esg_row = rows[0]
        assert esg_row.cost_normalized_to_esg == pytest.approx(1.0)
        assert "Figure 12" in render_figure12(rows)
