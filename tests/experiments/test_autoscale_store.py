"""Result-store keys cover the autoscale config (schema v2).

An adaptive run and its static twin must never share a store cell, and two
spellings of the same controller (registered name vs. the spec object) must
share one — otherwise incremental sweeps either serve stale static results
for adaptive requests or re-run cells they already hold.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cluster.autoscale import AutoscaleSpec, get_autoscale_spec
from repro.experiments.engine import RunSpec
from repro.experiments.runner import ExperimentConfig
from repro.experiments.store import STORE_SCHEMA_VERSION, spec_key, spec_key_doc
from repro.workloads.scenarios import get_scenario

SMALL = ExperimentConfig(num_requests=6, seed=11)


def _spec(**kwargs) -> RunSpec:
    kwargs.setdefault("setting", "strict-light")
    kwargs.setdefault("config", SMALL)
    return RunSpec(policy="ESG", **kwargs)


def _autoscaled(autoscale) -> RunSpec:
    return _spec(config=ExperimentConfig(num_requests=6, seed=11, autoscale=autoscale))


class TestAutoscaleSpecKey:
    def test_schema_version_bumped_for_autoscale(self):
        # The key document gained a field: runs keyed by the v1 schema must
        # not alias into v2 cells.
        assert STORE_SCHEMA_VERSION == 2
        assert "autoscale" in spec_key_doc(_spec())["config"]

    def test_adding_a_controller_changes_the_key(self):
        assert spec_key(_autoscaled("threshold-default")) != spec_key(_spec())

    def test_controller_kind_changes_the_key(self):
        assert spec_key(_autoscaled("threshold-default")) != spec_key(
            _autoscaled("pid-default")
        )

    def test_parameter_change_changes_the_key(self):
        base = get_autoscale_spec("threshold-default")
        retuned = dataclasses.replace(base, high_watermark=base.high_watermark + 1.0)
        assert spec_key(_autoscaled(base)) != spec_key(_autoscaled(retuned))

    def test_name_and_spec_object_share_a_key(self):
        assert spec_key(_autoscaled("pid-default")) == spec_key(
            _autoscaled(get_autoscale_spec("pid-default"))
        )

    def test_label_only_change_keeps_the_key(self):
        adaptive = _autoscaled("threshold-default")
        relabeled = dataclasses.replace(adaptive, label="renamed row", summary_only=True)
        assert spec_key(adaptive) == spec_key(relabeled)

    def test_scenario_carried_autoscale_participates(self):
        scenario = get_scenario("diurnal-normal")
        adaptive_scenario = dataclasses.replace(scenario, autoscale="threshold-default")
        static = _spec(setting=None, scenario=scenario)
        adaptive = _spec(setting=None, scenario=adaptive_scenario)
        assert spec_key(static) != spec_key(adaptive)

    def test_key_is_stable_across_hash_randomisation(self):
        """PYTHONHASHSEED (and process boundaries) must not move adaptive keys."""
        code = (
            "from repro.experiments.engine import RunSpec\n"
            "from repro.experiments.runner import ExperimentConfig\n"
            "from repro.experiments.store import spec_key\n"
            "spec = RunSpec(policy='ESG', setting='strict-light',\n"
            "               config=ExperimentConfig(num_requests=6, seed=11,\n"
            "                                       autoscale='threshold-default'))\n"
            "print(spec_key(spec))\n"
        )
        keys = []
        for hash_seed in ("0", "1", "12345"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
            proc = subprocess.run(
                [sys.executable, "-c", code],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            keys.append(proc.stdout.strip())
        assert len(set(keys)) == 1
        assert keys[0] == spec_key(_autoscaled("threshold-default"))

    def test_unregistered_spec_object_is_keyable(self):
        custom = AutoscaleSpec(name="local-only", kind="pid", setpoint=2.5)
        key = spec_key(_autoscaled(custom))
        assert key != spec_key(_autoscaled("pid-default"))
