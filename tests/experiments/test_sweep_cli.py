"""Tests for the sweep lattice (run_sweep, reports, and the CLI command)."""

from __future__ import annotations

import csv
import json

import pytest

import repro.experiments.engine as engine_mod
from repro.experiments.cli import _parse_seeds, build_parser, main
from repro.experiments.runner import ExperimentConfig
from repro.experiments.store import ResultStore
from repro.experiments.sweep import (
    build_sweep_specs,
    run_sweep,
    write_report_csv,
    write_report_json,
)

SMALL = ExperimentConfig(num_requests=6, seed=11)


class TestBuildSweepSpecs:
    def test_lattice_order_and_shape(self):
        items = build_sweep_specs(
            ["ESG", "INFless"],
            ["paper-moderate-normal"],
            ["paper-16", "rack-64"],
            [1, 2],
            config=SMALL,
        )
        assert len(items) == 2 * 1 * 2 * 2
        coords = [c for c, _ in items]
        assert coords[0] == ("ESG", "paper-moderate-normal", "paper-16", 1)
        assert coords[-1] == ("INFless", "paper-moderate-normal", "rack-64", 2)

    def test_cells_pin_the_topology_and_seed(self):
        ((_, spec),) = build_sweep_specs(
            ["ESG"], ["paper-moderate-normal"], ["rack-64"], [7], config=SMALL
        )
        assert spec.summary_only
        assert spec.config.seed == 7
        assert spec.config.cluster_pinned
        assert spec.config.cluster.num_invokers == 64

    def test_unknown_scenario_fails_before_any_run(self):
        with pytest.raises(KeyError, match="scenario"):
            build_sweep_specs(["ESG"], ["no-such-scenario"], ["paper-16"], [1])

    def test_unknown_topology_fails_before_any_run(self):
        with pytest.raises((KeyError, ValueError)):
            build_sweep_specs(["ESG"], ["paper-moderate-normal"], ["no-such"], [1])


class TestRunSweep:
    def test_cold_then_warm(self, tmp_path):
        kwargs = dict(
            policies=["ESG", "INFless"],
            scenarios=["paper-moderate-normal"],
            seeds=[1, 2],
            store=tmp_path / "store",
            config=SMALL,
        )
        cold = run_sweep(**kwargs)
        assert (cold.total, cold.cached, cold.executed) == (4, 0, 4)
        warm = run_sweep(**kwargs)
        assert (warm.total, warm.cached, warm.executed) == (4, 4, 0)
        # Content is identical; only the execution block differs.
        cold_doc, warm_doc = cold.to_doc(), warm.to_doc()
        cold_doc.pop("execution")
        warm_doc.pop("execution")
        assert cold_doc == warm_doc

    def test_warm_sweep_simulates_nothing(self, tmp_path, monkeypatch):
        kwargs = dict(
            policies=["ESG"],
            scenarios=["paper-moderate-normal"],
            seeds=[1, 2],
            store=tmp_path / "store",
            config=SMALL,
        )
        run_sweep(**kwargs)

        def boom(item):
            raise AssertionError(f"warm sweep executed {item[0]}")

        monkeypatch.setattr(engine_mod, "_execute_spec_stored", boom)
        warm = run_sweep(**kwargs)
        assert warm.executed == 0

    def test_overlapping_lattice_reuses_shared_cells(self, tmp_path):
        store = tmp_path / "store"
        run_sweep(
            policies=["ESG"],
            scenarios=["paper-moderate-normal"],
            seeds=[1, 2],
            store=store,
            config=SMALL,
        )
        grown = run_sweep(
            policies=["ESG", "INFless"],
            scenarios=["paper-moderate-normal"],
            seeds=[1, 2, 3],
            store=store,
            config=SMALL,
        )
        assert grown.total == 6
        assert grown.cached == 2  # the ESG seeds 1-2 cells from the first sweep
        assert grown.executed == 4

    def test_report_files(self, tmp_path):
        report = run_sweep(
            policies=["ESG"],
            scenarios=["paper-moderate-normal"],
            seeds=[1],
            store=tmp_path / "store",
            config=SMALL,
        )
        json_path = write_report_json(report, tmp_path / "rep.json")
        doc = json.loads(json_path.read_text())
        assert doc["execution"]["total"] == 1
        assert doc["lattice"]["policies"] == ["ESG"]
        (cell,) = doc["cells"]
        assert cell["policy"] == "ESG"
        assert cell["topology"] == "paper-16"
        assert len(cell["key"]) == 32
        assert cell["summary"]["num_requests"] == SMALL.num_requests
        csv_path = write_report_csv(report, tmp_path / "rep.csv")
        rows = list(csv.DictReader(csv_path.open()))
        assert len(rows) == 1
        assert rows[0]["policy"] == "ESG"
        assert rows[0]["key"] == cell["key"]

    def test_progress_meter_writes_counts(self, tmp_path, capsys):
        run_sweep(
            policies=["ESG"],
            scenarios=["paper-moderate-normal"],
            seeds=[1],
            store=tmp_path / "store",
            config=SMALL,
            progress=True,
        )
        err = capsys.readouterr().err
        assert "[1/1]" in err
        assert "cached=0" in err
        assert "executed=1" in err


class TestSeedParsing:
    def test_plain_lists_and_ranges(self):
        assert _parse_seeds("1,2,9") == [1, 2, 9]
        assert _parse_seeds("5..8") == [5, 6, 7, 8]
        assert _parse_seeds("1,5..7,11") == [1, 5, 6, 7, 11]

    def test_bad_tokens_are_usage_errors(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_seeds("nope")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_seeds("8..5")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_seeds(",")


class TestSweepCommand:
    def _run(self, tmp_path, *extra):
        argv = [
            "sweep",
            "--requests",
            "6",
            "--policies",
            "ESG,INFless",
            "--seeds",
            "1..2",
            "--store",
            str(tmp_path / "store"),
            "--report",
            str(tmp_path / "report.json"),
            *extra,
        ]
        assert main(argv) == 0
        return json.loads((tmp_path / "report.json").read_text())

    def test_cold_then_resume(self, tmp_path, capsys):
        doc = self._run(tmp_path)
        assert doc["execution"] == {
            "total": 4,
            "cached": 0,
            "executed": 4,
            "elapsed_s": doc["execution"]["elapsed_s"],
        }
        out = capsys.readouterr().out
        assert "4 cells (0 cached, 4 executed)" in out

        warm = self._run(tmp_path, "--resume")
        assert warm["execution"]["executed"] == 0
        assert warm["execution"]["cached"] == 4
        assert warm["cells"] == doc["cells"]
        assert warm["lattice"] == doc["lattice"]

    def test_csv_output(self, tmp_path):
        self._run(tmp_path, "--csv", str(tmp_path / "cells.csv"))
        rows = list(csv.DictReader((tmp_path / "cells.csv").open()))
        assert len(rows) == 4
        assert {row["policy"] for row in rows} == {"ESG", "INFless"}

    def test_resume_without_a_store_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="nothing to resume"):
            main(
                [
                    "sweep",
                    "--store",
                    str(tmp_path / "missing"),
                    "--resume",
                ]
            )

    def test_sweep_is_not_part_of_all(self):
        from repro.experiments.cli import _NOT_IN_ALL

        assert "sweep" in _NOT_IN_ALL

    def test_parser_accepts_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--seeds", "1..3", "--topologies", "paper-16,rack-64"]
        )
        assert args.seeds == [1, 2, 3]
        assert args.topologies == ["paper-16", "rack-64"]


class TestFigureCommandsWithStore:
    def test_fig6_warm_render_simulates_nothing(self, tmp_path, monkeypatch):
        store = str(tmp_path / "store")
        argv = ["fig6", "--requests", "6", "--store", store]
        assert main(argv) == 0
        assert len(ResultStore(store)) > 0

        def boom(item):
            raise AssertionError(f"warm fig6 executed {item[0]}")

        monkeypatch.setattr(engine_mod, "_execute_spec_stored", boom)
        assert main(argv) == 0

    def test_fig6_output_identical_cold_vs_warm(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = ["fig6", "--requests", "6", "--store", store]
        main(argv)
        cold = capsys.readouterr().out
        main(argv)
        warm = capsys.readouterr().out
        assert warm == cold
