"""Tests for the content-addressed result store (keys, cache, robustness)."""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.experiments.engine import ExperimentEngine, RunSpec, execute_spec
from repro.experiments.runner import DEFAULT_POLICIES, ExperimentConfig
from repro.experiments.store import (
    STORE_SCHEMA_VERSION,
    SUMMARY_KIND,
    ResultStore,
    canonical_policy_key,
    spec_key,
    spec_key_doc,
)
from repro.workloads.generator import WORKLOAD_SETTINGS
from repro.workloads.scenarios import get_scenario

SMALL = ExperimentConfig(num_requests=6, seed=11)


def _spec(policy: str = "ESG", **kwargs) -> RunSpec:
    kwargs.setdefault("setting", "strict-light")
    kwargs.setdefault("config", SMALL)
    return RunSpec(policy=policy, **kwargs)


class TestCanonicalPolicyKey:
    @pytest.mark.parametrize(
        ("spelling", "expected"),
        [
            ("ESG", "esg"),
            ("esg", "esg"),
            ("FaST-GShare", "fast-gshare"),
            ("fast_gshare", "fast-gshare"),
            ("Orion", "orion"),
            ("best-first", "orion"),
            ("bfs", "orion"),
            ("Aquatope", "aquatope"),
            ("bo", "aquatope"),
            ("INFless", "infless"),
        ],
    )
    def test_aliases_collapse(self, spelling, expected):
        assert canonical_policy_key(spelling) == expected

    def test_unknown_names_pass_through_normalised(self):
        # The store must never be stricter than make_policy: the engine
        # reports unknown policies, not the key function.
        assert canonical_policy_key("My_New Policy") == "my-new policy"


class TestSpecKey:
    def test_policy_spelling_is_irrelevant(self):
        assert spec_key(_spec("ESG")) == spec_key(_spec("esg"))
        assert spec_key(_spec("Orion")) == spec_key(_spec("bfs"))

    def test_override_insertion_order_is_irrelevant(self):
        a = _spec(policy_overrides={"k": 7, "group_size": 2})
        b = _spec(policy_overrides={"group_size": 2, "k": 7})
        assert spec_key(a) == spec_key(b)

    def test_label_and_summary_only_are_excluded(self):
        base = _spec()
        assert spec_key(base) == spec_key(_spec(label="renamed row"))
        assert spec_key(base) == spec_key(_spec(summary_only=True))

    def test_setting_name_and_object_share_a_key(self):
        assert spec_key(_spec(setting="strict-light")) == spec_key(
            _spec(setting=WORKLOAD_SETTINGS["strict-light"])
        )

    def test_churn_name_and_spec_share_a_key(self):
        by_name = _spec(config=ExperimentConfig(num_requests=6, churn="harvest-mild"))
        from repro.cluster.churn import get_churn_spec

        by_spec = _spec(
            config=ExperimentConfig(num_requests=6, churn=get_churn_spec("harvest-mild"))
        )
        assert spec_key(by_name) == spec_key(by_spec)

    def test_scenario_description_is_presentation_only(self):
        scenario = get_scenario("poisson-normal")
        renamed = dataclasses.replace(scenario, description="a brand new blurb")
        assert spec_key(_spec(setting=None, scenario=scenario)) == spec_key(
            _spec(setting=None, scenario=renamed)
        )

    @pytest.mark.parametrize(
        "variant",
        [
            lambda: _spec("INFless"),
            lambda: _spec(policy_overrides={"k": 9}),
            lambda: _spec(setting="moderate-normal"),
            lambda: _spec(setting=None, scenario="poisson-normal"),
            lambda: _spec(config=ExperimentConfig(num_requests=7, seed=11)),
            lambda: _spec(config=ExperimentConfig(num_requests=6, seed=12)),
            lambda: _spec(config=ExperimentConfig(num_requests=6, churn="harvest-mild")),
            lambda: _spec(config=ExperimentConfig(num_requests=6, loop_mode="compat")),
        ],
    )
    def test_code_relevant_changes_change_the_key(self, variant):
        assert spec_key(variant()) != spec_key(_spec())

    def test_doc_mentions_schema_version(self):
        assert spec_key_doc(_spec())["schema"] == STORE_SCHEMA_VERSION

    def test_key_is_stable_across_hash_randomisation(self):
        """PYTHONHASHSEED (and process boundaries) must not move keys."""
        code = (
            "from repro.experiments.engine import RunSpec\n"
            "from repro.experiments.runner import ExperimentConfig\n"
            "from repro.experiments.store import spec_key\n"
            "spec = RunSpec(policy='ESG', setting='strict-light',\n"
            "               config=ExperimentConfig(num_requests=6, seed=11),\n"
            "               policy_overrides={'k': 7, 'group_size': 2, 'name': 'x'})\n"
            "print(spec_key(spec))\n"
        )
        keys = []
        for hash_seed in ("0", "1", "12345"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
            proc = subprocess.run(
                [sys.executable, "-c", code],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            keys.append(proc.stdout.strip())
        assert len(set(keys)) == 1
        here = spec_key(
            _spec(policy_overrides={"name": "x", "group_size": 2, "k": 7})
        )
        assert keys[0] == here


class TestResultStoreBasics:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = _spec(summary_only=True)
        summary = execute_spec(spec).summary
        key = store.put_summary(spec, summary)
        assert key == spec_key(spec)
        assert spec in store
        assert key in store
        assert len(store) == 1
        assert list(store.keys()) == [key]
        assert store.get_summary(spec) == summary

    def test_entry_records_kind_and_provenance(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = _spec(summary_only=True)
        key = store.put_summary(spec, execute_spec(spec).summary)
        payload = json.loads(store.path_for_key(key).read_text())
        assert payload["kind"] == SUMMARY_KIND
        assert payload["schema_version"] == STORE_SCHEMA_VERSION
        assert payload["key"] == key
        assert payload["spec"] == spec_key_doc(spec)

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get_summary(_spec()) is None
        assert store.load_result(_spec(summary_only=True)) is None

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda text: "",  # truncated to nothing
            lambda text: text[: len(text) // 2],  # torn mid-write
            lambda text: "not json at all {",
            lambda text: json.dumps(["wrong", "shape"]),
            lambda text: text.replace('"kind": "summary"', '"kind": "exotic"'),
            lambda text: json.dumps({"schema_version": STORE_SCHEMA_VERSION}),
        ],
    )
    def test_corrupted_entries_are_misses_not_errors(self, tmp_path, mangle):
        store = ResultStore(tmp_path / "store")
        spec = _spec(summary_only=True)
        summary = execute_spec(spec).summary
        key = store.put_summary(spec, summary)
        path = store.path_for_key(key)
        path.write_text(mangle(path.read_text()))
        assert store.get_summary(spec) is None
        assert spec not in store
        # The next execution repairs the cell.
        store.put_summary(spec, summary)
        assert store.get_summary(spec) == summary

    def test_binary_garbage_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = _spec(summary_only=True)
        key = store.put_summary(spec, execute_spec(spec).summary)
        store.path_for_key(key).write_bytes(b"\xff\xfe\x00garbage\x00")
        assert store.get_summary(spec) is None

    def test_schema_version_bump_invalidates(self, tmp_path):
        root = tmp_path / "store"
        spec = _spec(summary_only=True)
        summary = execute_spec(spec).summary
        ResultStore(root).put_summary(spec, summary)
        newer = ResultStore(root, schema_version=STORE_SCHEMA_VERSION + 1)
        # The entry decodes as a miss for the newer schema...
        assert newer.get_summary(spec) is None
        assert newer.load_result(spec) is None
        # ...while the original schema still reads it.
        assert ResultStore(root).get_summary(spec) == summary

    def test_full_result_specs_are_never_served_from_cache(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        full = _spec(summary_only=False)
        store.put_summary(full, execute_spec(full).summary)
        assert store.get_summary(full) is not None  # the summary IS cached
        assert store.load_result(full) is None  # but not servable as a result


class TestEngineWithStore:
    def test_hit_equals_miss_for_every_policy_and_scenario(self, tmp_path):
        """Cached summaries are byte-identical to live ones — all policies,
        paper and churn scenarios alike."""
        store = ResultStore(tmp_path / "store")
        specs = [
            RunSpec(
                policy=policy,
                scenario=scenario,
                config=SMALL,
                summary_only=True,
            )
            for policy in DEFAULT_POLICIES
            for scenario in ("paper-moderate-normal", "churn-mixed-normal")
        ]
        live = [execute_spec(spec) for spec in specs]
        cold = ExperimentEngine(1, store=store).run(specs)
        warm = ExperimentEngine(1, store=store).run(specs)
        for spec, a, b, c in zip(specs, live, cold, warm):
            blob = lambda result: json.dumps(  # noqa: E731
                dataclasses.asdict(result.summary), sort_keys=True, allow_nan=True
            )
            assert blob(a) == blob(b) == blob(c), spec
            assert c.metrics.placeholder
            assert c.requests == []
            assert c.scenario_name == b.scenario_name

    def test_warm_run_executes_nothing(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        specs = [
            _spec(policy, summary_only=True) for policy in ("ESG", "INFless", "Orion")
        ]
        ExperimentEngine(1, store=store).run(specs)

        import repro.experiments.engine as engine_mod

        def boom(item):
            raise AssertionError(f"warm run executed {item[0]}")

        monkeypatch.setattr(engine_mod, "_execute_spec_stored", boom)
        flags = []
        results = ExperimentEngine(1, store=store).run(
            specs, on_cell=lambda i, s, r, cached: flags.append(cached)
        )
        assert len(results) == len(specs)
        assert flags == [True, True, True]

    def test_full_result_spec_runs_live_but_warms_the_cache(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        full = _spec(summary_only=False)
        flags = []
        (result,) = ExperimentEngine(1, store=store).run(
            [full], on_cell=lambda i, s, r, cached: flags.append(cached)
        )
        assert flags == [False]
        assert not result.metrics.placeholder
        assert result.requests  # the live run kept its request objects
        # A second full-result run still cannot be served from a summary...
        flags.clear()
        ExperimentEngine(1, store=store).run(
            [full], on_cell=lambda i, s, r, cached: flags.append(cached)
        )
        assert flags == [False]
        # ...but a summary reader of the same cell is a pure hit.
        flags.clear()
        (served,) = ExperimentEngine(1, store=store).run(
            [_spec(summary_only=True)],
            on_cell=lambda i, s, r, cached: flags.append(cached),
        )
        assert flags == [True]
        assert served.summary == result.summary

    def test_concurrent_workers_leave_a_consistent_store(self, tmp_path):
        store_root = tmp_path / "store"
        specs = [
            RunSpec(
                policy=policy,
                setting="strict-light",
                config=ExperimentConfig(num_requests=6, seed=seed),
                summary_only=True,
            )
            for policy in ("ESG", "INFless")
            for seed in (1, 2, 3, 4)
        ]
        cold = ExperimentEngine(4, store=store_root).run(specs)
        store = ResultStore(store_root)
        assert len(store) == len(specs)
        for key in store.keys():
            assert store.get_entry(key) is not None  # every entry decodes
        flags = []
        warm = ExperimentEngine(4, store=store_root).run(
            specs, on_cell=lambda i, s, r, cached: flags.append(cached)
        )
        assert all(flags)
        for a, b in zip(cold, warm):
            assert a.summary == b.summary

    def test_store_accepts_paths_and_strings(self, tmp_path):
        spec = _spec(summary_only=True)
        for store in (tmp_path / "a", str(tmp_path / "b")):
            (result,) = ExperimentEngine(1, store=store).run([spec])
            assert ResultStore(store).get_summary(spec) == result.summary
