"""Tests for the parallel experiment engine (RunSpec / ExperimentEngine)."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.esg import ESGPolicy
from repro.experiments.engine import (
    ExperimentEngine,
    RunSpec,
    execute_spec,
    resolve_n_jobs,
)
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    run_experiment,
    run_matrix,
)
from repro.workloads.generator import WORKLOAD_SETTINGS

SMALL = ExperimentConfig(num_requests=6, seed=11)


class TestRunSpec:
    def test_round_trips_through_pickle(self):
        spec = RunSpec(
            policy="ESG",
            setting="strict-light",
            config=SMALL,
            policy_overrides={"k": 7, "group_size": 2},
            label="esg-k7",
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.policy_overrides == {"k": 7, "group_size": 2}

    def test_build_policy_applies_overrides(self):
        spec = RunSpec(policy="ESG", setting="strict-light", policy_overrides={"k": 9})
        policy = spec.build_policy()
        assert isinstance(policy, ESGPolicy)
        assert policy.k == 9

    def test_rejects_live_policy_objects(self):
        with pytest.raises(TypeError, match="policy name"):
            RunSpec(policy=ESGPolicy(), setting="strict-light")

    def test_rejects_unknown_setting_names(self):
        with pytest.raises(KeyError, match="unknown workload setting"):
            RunSpec(policy="ESG", setting="no-such-setting")

    def test_accepts_setting_objects(self):
        setting = WORKLOAD_SETTINGS["relaxed-heavy"]
        spec = RunSpec(policy="ESG", setting=setting, config=SMALL)
        assert spec.setting_name == "relaxed-heavy"
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestExecuteSpec:
    def test_matches_run_experiment(self):
        spec = RunSpec(policy="INFless", setting="moderate-normal", config=SMALL)
        direct = run_experiment("INFless", "moderate-normal", config=SMALL)
        via_spec = execute_spec(spec)
        assert via_spec.summary == direct.summary


class TestResolveNJobs:
    def test_positive_passes_through(self):
        assert resolve_n_jobs(3) == 3

    @pytest.mark.parametrize("value", [None, 0, -1])
    def test_none_and_nonpositive_mean_all_cores(self, value):
        assert resolve_n_jobs(value) == (os.cpu_count() or 1)


class TestExperimentEngine:
    def test_empty_spec_list(self):
        assert ExperimentEngine(n_jobs=2).run([]) == []

    def test_results_come_back_in_spec_order(self):
        specs = [
            RunSpec(policy=policy, setting="strict-light", config=SMALL)
            for policy in ("INFless", "ESG", "FaST-GShare")
        ]
        results = ExperimentEngine(n_jobs=2).run(specs)
        assert [r.policy_name for r in results] == ["INFless", "ESG", "FaST-GShare"]

    def test_run_keyed_uses_reported_policy_name(self):
        specs = [
            RunSpec(
                policy="ESG",
                setting="strict-light",
                config=SMALL,
                policy_overrides={"batching": False, "name": "ESG w/o batching"},
            )
        ]
        keyed = ExperimentEngine(n_jobs=1).run_keyed(specs)
        assert set(keyed) == {("strict-light", "ESG w/o batching")}

    def test_run_keyed_rejects_colliding_cells(self):
        """Two ablation variants without a rename must not silently
        overwrite each other; the error names the colliding cell."""
        specs = [
            RunSpec(policy="ESG", setting="strict-light", config=SMALL),
            RunSpec(
                policy="ESG",
                setting="strict-light",
                config=SMALL,
                policy_overrides={"batching": False},  # forgot to rename
            ),
        ]
        with pytest.raises(ValueError, match=r"\('strict-light', 'ESG'\)"):
            ExperimentEngine(n_jobs=1).run_keyed(specs)

    def test_run_keyed_accepts_renamed_variants(self):
        specs = [
            RunSpec(policy="ESG", setting="strict-light", config=SMALL),
            RunSpec(
                policy="ESG",
                setting="strict-light",
                config=SMALL,
                policy_overrides={"batching": False, "name": "ESG w/o batching"},
            ),
        ]
        keyed = ExperimentEngine(n_jobs=1).run_keyed(specs)
        assert set(keyed) == {
            ("strict-light", "ESG"),
            ("strict-light", "ESG w/o batching"),
        }


class TestSummaryOnlyPlaceholder:
    def test_placeholder_metrics_agree_with_the_summary(self):
        spec = RunSpec(
            policy="INFless", setting="moderate-normal", config=SMALL, summary_only=True
        )
        result = execute_spec(spec)
        metrics = result.metrics
        assert metrics.placeholder
        assert metrics.truncated == result.summary.truncated
        assert metrics.cold_starts == result.summary.cold_starts
        assert metrics.warm_starts == result.summary.warm_starts
        assert metrics.plan_attempts == result.summary.plan_attempts
        assert metrics.policy_name == result.policy_name
        assert result.requests == []

    def test_placeholder_reflects_truncated_runs(self):
        config = SMALL.with_overrides(num_requests=30, max_time_ms=200.0)
        spec = RunSpec(
            policy="INFless", setting="moderate-normal", config=config, summary_only=True
        )
        result = execute_spec(spec)
        assert result.summary.truncated
        assert result.metrics.truncated  # used to contradict the summary


class TestParallelParity:
    def test_full_matrix_parallel_summaries_identical_to_sequential(self):
        """The acceptance check: n_jobs=4 reproduces n_jobs=1 byte-for-byte."""
        sequential = run_matrix(
            DEFAULT_POLICIES, tuple(WORKLOAD_SETTINGS), config=SMALL, n_jobs=1
        )
        parallel = run_matrix(
            DEFAULT_POLICIES, tuple(WORKLOAD_SETTINGS), config=SMALL, n_jobs=4
        )
        assert set(sequential) == set(parallel)
        assert len(sequential) == len(DEFAULT_POLICIES) * len(WORKLOAD_SETTINGS)
        for key in sequential:
            assert sequential[key].summary == parallel[key].summary, key

    def test_spawned_workers_reproduce_in_process_results(self):
        """Spawn workers share nothing with the parent (no fork inheritance
        masking hash-seed or global-state dependence), so this guards the
        strongest form of cross-process determinism."""
        specs = [
            RunSpec(policy=policy, setting="strict-light", config=SMALL)
            for policy in ("ESG", "Orion")
        ]
        in_process = ExperimentEngine(n_jobs=1).run(specs)
        spawned = ExperimentEngine(n_jobs=2, mp_context="spawn").run(specs)
        for seq, par in zip(in_process, spawned):
            assert seq.summary == par.summary

    def test_policy_objects_rejected_when_parallel(self):
        with pytest.raises(ValueError, match="policy names"):
            run_matrix([ESGPolicy()], ["strict-light"], config=SMALL, n_jobs=2)

    def test_policy_objects_still_work_sequentially(self):
        results = run_matrix([ESGPolicy(k=2)], ["strict-light"], config=SMALL, n_jobs=1)
        assert set(results) == {("strict-light", "ESG")}
