"""Acceptance parity: the fast event loop vs. the compat reference loop.

The tentpole guarantee of the hot-path overhaul: switching
``SimulationConfig.loop_mode`` between ``"fast"`` (split-heap queue, cached
dispatch, chunked arrival pulls, memoized plan/profile lookups, inlined
warm-path dispatch) and ``"compat"`` (the original loop, kept verbatim as
the parity anchor) changes *throughput only* — every RunSummary is
byte-identical, for every policy, on paper and non-paper scenarios, across
worker processes and spawn contexts, and in combination with every other
mode axis (``index_mode="scan"``, streaming workloads, streaming metrics,
truncated horizons).  This mirrors the ``index_mode`` and
``workload_mode`` precedents of the previous scale refactors.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.events import RequestArrivalEvent, SchedulerTickEvent
from repro.cluster.metrics import MetricsConfig
from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    build_profile_store,
    run_experiment,
)

PAPER_SCENARIOS = (
    "paper-strict-light",
    "paper-moderate-normal",
    "paper-relaxed-heavy",
)

NON_PAPER_SCENARIOS = ("poisson-normal", "trace-replay-azure", "mixed-dags-normal")

FAST = ExperimentConfig(num_requests=16, loop_mode="fast")
COMPAT = ExperimentConfig(num_requests=16, loop_mode="compat")
#: Everything streamed *and* the fast loop: the bounded-memory,
#: maximum-throughput million-request configuration.
FAST_FULLY_STREAMING = ExperimentConfig(
    num_requests=16,
    loop_mode="fast",
    workload_mode="streaming",
    metrics=MetricsConfig(mode="streaming"),
)


@pytest.fixture(scope="module")
def store():
    return build_profile_store()


def assert_byte_identical(a, b) -> None:
    """Field-by-field equality down to nested dataclasses — not just
    ``__eq__``, so a future non-comparing field cannot mask a divergence."""
    assert asdict(a.summary) == asdict(b.summary)
    assert a.summary == b.summary


class TestFastVsCompatSummaries:
    """The full acceptance matrix: 5 policies x 3 paper scenarios."""

    @pytest.mark.parametrize("scenario", PAPER_SCENARIOS)
    @pytest.mark.parametrize("policy", DEFAULT_POLICIES)
    def test_policy_scenario_byte_identical(self, store, policy, scenario):
        fast = run_experiment(policy, config=FAST, profile_store=store, scenario=scenario)
        compat = run_experiment(
            policy, config=COMPAT, profile_store=store, scenario=scenario
        )
        assert_byte_identical(fast, compat)

    @pytest.mark.parametrize("scenario", NON_PAPER_SCENARIOS)
    def test_non_paper_scenarios_stay_identical(self, store, scenario):
        """Arrival processes with their own RNG paths (Poisson, trace
        replay, mixed DAGs) are unaffected by chunked arrival pulls."""
        fast = run_experiment("ESG", config=FAST, profile_store=store, scenario=scenario)
        compat = run_experiment(
            "ESG", config=COMPAT, profile_store=store, scenario=scenario
        )
        assert_byte_identical(fast, compat)

    @pytest.mark.parametrize("scenario", PAPER_SCENARIOS)
    def test_fast_fully_streaming_matches_compat_materialized(self, store, scenario):
        """The two extreme corners of the mode cube agree: fast loop +
        streaming workload + streaming metrics vs. compat + materialized
        everything."""
        streamed = run_experiment(
            "ESG", config=FAST_FULLY_STREAMING, profile_store=store, scenario=scenario
        )
        materialized = run_experiment(
            "ESG", config=COMPAT, profile_store=store, scenario=scenario
        )
        assert_byte_identical(streamed, materialized)
        assert streamed.requests == []
        assert streamed.metrics.is_streaming

    def test_fast_composes_with_scan_index_mode(self, store):
        """The fast loop must not assume the indexed cluster core: with
        ``index_mode="scan"`` no expiry timers are ever scheduled and the
        housekeeping heap stays empty, but summaries still match."""
        scan_fast = ExperimentConfig(
            num_requests=16, loop_mode="fast", cluster=ClusterConfig(index_mode="scan")
        )
        scan_compat = scan_fast.with_overrides(loop_mode="compat")
        for policy in ("ESG", "INFless"):
            fast = run_experiment(
                policy, config=scan_fast, profile_store=store, scenario="paper-moderate-normal"
            )
            compat = run_experiment(
                policy,
                config=scan_compat,
                profile_store=store,
                scenario="paper-moderate-normal",
            )
            assert_byte_identical(fast, compat)

    def test_fast_composes_with_both_metrics_modes(self, store):
        """Retained and streaming collectors see the same completion folds
        whether they come from the compat dispatch or the inlined fast one."""
        retained = run_experiment(
            "ESG", config=FAST, profile_store=store, scenario="paper-relaxed-heavy"
        )
        streaming_metrics = run_experiment(
            "ESG",
            config=FAST.with_overrides(metrics=MetricsConfig(mode="streaming")),
            profile_store=store,
            scenario="paper-relaxed-heavy",
        )
        compat = run_experiment(
            "ESG", config=COMPAT, profile_store=store, scenario="paper-relaxed-heavy"
        )
        assert_byte_identical(retained, compat)
        assert_byte_identical(streaming_metrics, compat)

    def test_truncated_horizon_runs_stay_identical(self, store):
        """The horizon check reads the earliest *productive* event time;
        the split heaps must answer it exactly like the mirror heap, and
        chunk-buffered arrivals past the horizon must stay unprocessed."""
        fast_cfg = FAST.with_overrides(num_requests=40, max_time_ms=300.0)
        compat_cfg = fast_cfg.with_overrides(loop_mode="compat")
        fast = run_experiment(
            "ESG", "moderate-normal", config=fast_cfg, profile_store=store
        )
        compat = run_experiment(
            "ESG", "moderate-normal", config=compat_cfg, profile_store=store
        )
        assert fast.summary.truncated
        assert_byte_identical(fast, compat)


class TestEngineParityAcrossModes:
    """Loop mode composes with the engine's n_jobs / spawn guarantees."""

    def _specs(self, config: ExperimentConfig) -> list[RunSpec]:
        return [
            RunSpec(policy="ESG", scenario=scenario, config=config)
            for scenario in PAPER_SCENARIOS
        ]

    def test_fast_specs_in_workers_match_compat_in_process(self):
        compat = ExperimentEngine(n_jobs=1).run(self._specs(COMPAT))
        fast_parallel = ExperimentEngine(n_jobs=4).run(self._specs(FAST))
        for a, b in zip(compat, fast_parallel):
            assert a.summary == b.summary

    def test_spawn_context_reproduces_fast_summaries(self):
        in_process = ExperimentEngine(n_jobs=1).run(self._specs(FAST))
        spawned = ExperimentEngine(n_jobs=2, mp_context="spawn").run(self._specs(FAST))
        for a, b in zip(in_process, spawned):
            assert a.summary == b.summary


class TestCachedDispatchPrecedence:
    """The dispatch cache must preserve the documented handler precedence.

    The fast loop substitutes module-level trampolines for the core event
    types *only* when resolution lands on the default base-``Event`` entry.
    Instance handlers (``add_handler``) and class registrations
    (``register_handler``) are resolved first, so they must still win —
    including when added mid-run, after the cache is already hot.
    """

    def _make_simulation(self, store, loop_mode):
        from repro.cluster.simulator import Simulation, SimulationConfig
        from repro.experiments.runner import build_requests, make_policy

        requests = build_requests("moderate-normal", 8, 3, store)
        return Simulation(
            policy=make_policy("ESG"),
            requests=requests,
            profile_store=store,
            config=SimulationConfig(seed=3, loop_mode=loop_mode),
            setting_name="moderate-normal",
        )

    def test_instance_handler_beats_arrival_trampoline(self, store):
        baseline = self._make_simulation(store, "fast").run()

        instrumented = self._make_simulation(store, "fast")
        seen: list[float] = []

        def counting_handler(sim, event):
            seen.append(event.time_ms)
            event.apply(sim)

        instrumented.add_handler(RequestArrivalEvent, counting_handler)
        summary = instrumented.run()

        # The handler intercepted every arrival (the trampoline did not
        # bypass it) and, since it forwarded to apply(), the run is
        # unchanged.
        assert len(seen) == summary.num_requests
        assert asdict(summary) == asdict(baseline)

    def test_class_handler_beats_tick_trampoline(self, store):
        from repro.cluster.simulator import Simulation

        baseline = self._make_simulation(store, "fast").run()
        ticks: list[float] = []

        def counting_tick(sim, event):
            ticks.append(event.time_ms)
            event.apply(sim)

        Simulation.register_handler(SchedulerTickEvent, counting_tick)
        try:
            summary = self._make_simulation(store, "fast").run()
        finally:
            del Simulation._handlers[SchedulerTickEvent]
            Simulation._handlers_version += 1

        assert ticks  # at least one tick fired through the handler
        assert asdict(summary) == asdict(baseline)

    def test_mid_run_registration_invalidates_hot_cache(self, store):
        """Registrations made after dispatch has already cached the
        trampoline must take effect immediately (the version check)."""
        from repro.cluster.simulator import Simulation

        baseline = self._make_simulation(store, "fast").run()
        simulation = self._make_simulation(store, "fast")
        late: list[float] = []
        armed = False

        @simulation.on_event
        def register_late(sim, event):
            nonlocal armed
            if not armed and sim.processed_events >= 5:
                armed = True
                Simulation.register_handler(
                    SchedulerTickEvent,
                    lambda s, e: (late.append(e.time_ms), e.apply(s)),
                )

        try:
            summary = simulation.run()
        finally:
            Simulation._handlers.pop(SchedulerTickEvent, None)
            Simulation._handlers_version += 1

        assert armed
        assert late  # ticks after the mid-run registration went through it
        assert asdict(summary) == asdict(baseline)
