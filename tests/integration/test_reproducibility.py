"""Integration tests for reproducibility and ablation behaviour."""

from __future__ import annotations

from repro.cluster.controller import ControllerConfig
from repro.core.esg import ESGPolicy
from repro.experiments.runner import ExperimentConfig, run_experiment


def run_esg(seed: int, *, count_overhead: bool = False, **policy_kwargs):
    config = ExperimentConfig(
        num_requests=20,
        seed=seed,
        controller=ControllerConfig(
            initial_warm="all", count_overhead_in_latency=count_overhead
        ),
    )
    policy = ESGPolicy(**policy_kwargs)
    return run_experiment(policy, "moderate-normal", config=config)


class TestReproducibility:
    def test_same_seed_gives_identical_results(self):
        a = run_esg(3).summary
        b = run_esg(3).summary
        assert a.total_cost_cents == b.total_cost_cents
        assert a.mean_latency_ms == b.mean_latency_ms
        assert a.slo_hit_rate == b.slo_hit_rate

    def test_different_seeds_give_different_workloads(self):
        a = run_esg(3).summary
        b = run_esg(4).summary
        assert (a.total_cost_cents, a.mean_latency_ms) != (b.total_cost_cents, b.mean_latency_ms)


class TestAblationBehaviour:
    def test_disabling_batching_never_creates_batches(self):
        result = run_esg(7, batching=False)
        assert all(t.batch_size == 1 for t in result.metrics.tasks)

    def test_disabling_gpu_sharing_uses_whole_gpus(self):
        result = run_esg(7, gpu_sharing=False)
        full_gpu = result.metrics.tasks[0].config  # sanity anchor
        assert all(t.config.vgpus == 7 for t in result.metrics.tasks)
        assert full_gpu.vgpus == 7

    def test_gpu_sharing_reduces_vgpu_time(self):
        shared = run_esg(7)
        exclusive = run_esg(7, gpu_sharing=False)
        assert shared.summary.total_vgpu_ms < exclusive.summary.total_vgpu_ms

    def test_static_esg_misses_more_or_equal_slo(self):
        adaptive = run_esg(11)
        static = run_esg(11, adaptive=False)
        assert static.summary.slo_hit_rate <= adaptive.summary.slo_hit_rate + 1e-9
