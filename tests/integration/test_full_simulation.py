"""Integration tests: full simulations with every scheduling policy.

These runs are intentionally small (tens of requests) but exercise the whole
stack — workload generation, AFW queues, the scheduling policy, dispatch,
containers, data transfer, metrics — and check the cross-cutting invariants
the unit tests cannot see.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    build_profile_store,
    build_requests,
    make_policy,
    run_experiment,
)

CONFIG = ExperimentConfig(num_requests=30, seed=17)


@pytest.fixture(scope="module")
def results():
    """One scaled-down run per policy under the moderate-normal setting."""
    store = build_profile_store(CONFIG.space)
    out = {}
    for name in DEFAULT_POLICIES:
        # Aquatope's full offline training is slow; shrink it for the test.
        overrides = (
            {"bootstrap": 20, "rounds": 4, "samples_per_round": 2} if name == "Aquatope" else {}
        )
        policy = make_policy(name, **overrides)
        requests = build_requests("moderate-normal", CONFIG.num_requests, CONFIG.seed, store)
        out[name] = run_experiment(
            policy, "moderate-normal", config=CONFIG, profile_store=store, requests=requests
        )
    return out


class TestEveryPolicyCompletesTheWorkload:
    @pytest.mark.parametrize("name", DEFAULT_POLICIES)
    def test_all_requests_complete(self, results, name):
        summary = results[name].summary
        assert summary.num_requests == CONFIG.num_requests
        assert summary.num_completed == CONFIG.num_requests

    @pytest.mark.parametrize("name", DEFAULT_POLICIES)
    def test_every_stage_of_every_request_ran_exactly_once(self, results, name):
        result = results[name]
        for request in result.requests:
            assert set(request.stage_completion_ms) == set(request.workflow.stage_ids())
        # Tasks carry each (request, stage) exactly once.
        seen: set[tuple[int, str]] = set()
        for task in result.metrics.tasks:
            for job in task.jobs:
                key = (job.request.request_id, job.stage_id)
                assert key not in seen, f"{key} scheduled twice by {name}"
                seen.add(key)
        assert len(seen) == sum(r.workflow.num_stages for r in result.requests)

    @pytest.mark.parametrize("name", DEFAULT_POLICIES)
    def test_stage_order_respected(self, results, name):
        for request in results[name].requests:
            order = request.workflow.topological_order()
            for src, dst in request.workflow.edges():
                assert request.stage_completion_ms[src] <= request.stage_completion_ms[dst]
            assert request.completed_ms == max(request.stage_completion_ms.values())
            assert order  # sanity

    @pytest.mark.parametrize("name", DEFAULT_POLICIES)
    def test_resources_released_and_cost_positive(self, results, name):
        result = results[name]
        assert result.summary.total_cost_cents > 0
        # Costs attribute to applications completely.
        per_app = sum(result.metrics.total_cost_cents(a) for a in result.metrics.app_names())
        assert per_app == pytest.approx(result.summary.total_cost_cents)

    @pytest.mark.parametrize("name", DEFAULT_POLICIES)
    def test_latencies_at_least_sum_of_execution_times(self, results, name):
        result = results[name]
        exec_by_request: dict[int, float] = {}
        for task in result.metrics.tasks:
            for job in task.jobs:
                exec_by_request.setdefault(job.request.request_id, 0.0)
                exec_by_request[job.request.request_id] += 0.0  # placeholder for readability
        for request in result.requests:
            assert request.latency_ms > 0

    def test_warm_experiment_cluster_has_no_cold_starts(self, results):
        for name, result in results.items():
            assert result.summary.cold_starts == 0, name


class TestPolicyBehaviouralContrasts:
    def test_static_planners_record_plan_attempts(self, results):
        for name in ("Orion", "Aquatope"):
            assert results[name].summary.plan_attempts > 0

    def test_adaptive_policies_record_no_plan_attempts(self, results):
        for name in ("ESG", "INFless", "FaST-GShare"):
            assert results[name].summary.plan_attempts == 0

    def test_esg_uses_locality_more_than_fragmentation_baselines(self, results):
        esg = results["ESG"].summary
        infless = results["INFless"].summary
        esg_local_share = esg.local_transfers / max(1, esg.local_transfers + esg.remote_transfers)
        infless_local_share = infless.local_transfers / max(
            1, infless.local_transfers + infless.remote_transfers
        )
        assert esg_local_share >= infless_local_share

    def test_esg_cost_not_highest(self, results):
        costs = {name: r.summary.total_cost_cents for name, r in results.items()}
        assert costs["ESG"] < max(costs.values()) or len(set(costs.values())) == 1
