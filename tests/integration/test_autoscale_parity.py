"""Acceptance parity: autoscaled runs are byte-identical across every mode axis.

The feedback loop observes live queues and injects prewarm events mid-run —
new machinery the loop/index/metrics/workload refactors never exercised.
These tests extend the parity matrices to adaptive runs: for identical
``(scenario, autoscale spec, seed)`` the RunSummary must be byte-identical
across

* ``loop_mode`` fast vs. compat (the decision cadence rides the per-event
  hook, which fires at identical points in both loops),
* ``index_mode`` indexed vs. scan (resident counts and placement walk the
  same state either way),
* metrics retained vs. streaming, workload materialized vs. streaming,
* engine ``n_jobs`` 1 vs. 4 and the spawn multiprocessing context.

``TestAutoscaleActuallyBites`` guards against vacuous parity: on the study
scenarios the controllers demonstrably change resident capacity and the
run outcome, so the axes above are comparing runs in which the feedback
loop genuinely fired.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest

from repro.cluster.autoscale import Autoscaler, get_autoscale_spec
from repro.cluster.cluster import ClusterConfig
from repro.cluster.metrics import MetricsConfig
from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.runner import (
    ExperimentConfig,
    build_profile_store,
    run_experiment,
)

AUTOSCALE_SPECS = ("threshold-default", "pid-default")
SCENARIOS = ("diurnal-normal", "bursty-onoff-heavy")

#: ``initial_warm="home"`` everywhere, for the same reason as the study:
#: from the all-warm paper default no run ever cold-starts and prewarm
#: policy would be unobservable.
def _base(loop_mode: str) -> ExperimentConfig:
    config = ExperimentConfig(num_requests=16, loop_mode=loop_mode)
    return config.with_overrides(
        controller=replace(config.controller, initial_warm="home")
    )


FAST = _base("fast")
COMPAT = _base("compat")


@pytest.fixture(scope="module")
def store():
    return build_profile_store()


def assert_byte_identical(a, b) -> None:
    assert asdict(a.summary) == asdict(b.summary)
    assert a.summary == b.summary


class TestAutoscaleLoopModeParity:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("spec_name", AUTOSCALE_SPECS)
    def test_fast_vs_compat_byte_identical(self, store, spec_name, scenario):
        fast = run_experiment(
            "ESG",
            config=FAST.with_overrides(autoscale=spec_name),
            profile_store=store,
            scenario=scenario,
        )
        compat = run_experiment(
            "ESG",
            config=COMPAT.with_overrides(autoscale=spec_name),
            profile_store=store,
            scenario=scenario,
        )
        assert_byte_identical(fast, compat)


class TestAutoscaleIndexModeParity:
    @pytest.mark.parametrize("spec_name", AUTOSCALE_SPECS)
    def test_indexed_vs_scan_byte_identical(self, store, spec_name):
        indexed = run_experiment(
            "ESG",
            config=FAST.with_overrides(autoscale=spec_name),
            profile_store=store,
            scenario="diurnal-normal",
        )
        scan = run_experiment(
            "ESG",
            config=FAST.with_overrides(
                autoscale=spec_name, cluster=ClusterConfig(index_mode="scan")
            ),
            profile_store=store,
            scenario="diurnal-normal",
        )
        assert_byte_identical(indexed, scan)

    def test_scan_compat_corner_matches_indexed_fast(self, store):
        """The two extreme corners of the (loop, index) square agree for an
        adaptive run: scan+compat (all-reference) vs. indexed+fast."""
        reference = run_experiment(
            "ESG",
            config=COMPAT.with_overrides(
                autoscale="threshold-default",
                cluster=ClusterConfig(index_mode="scan"),
            ),
            profile_store=store,
            scenario="bursty-onoff-heavy",
        )
        optimized = run_experiment(
            "ESG",
            config=FAST.with_overrides(autoscale="threshold-default"),
            profile_store=store,
            scenario="bursty-onoff-heavy",
        )
        assert_byte_identical(optimized, reference)


class TestAutoscaleMetricsAndWorkloadParity:
    @pytest.mark.parametrize("spec_name", AUTOSCALE_SPECS)
    def test_streaming_metrics_byte_identical(self, store, spec_name):
        retained = run_experiment(
            "ESG",
            config=FAST.with_overrides(autoscale=spec_name),
            profile_store=store,
            scenario="diurnal-normal",
        )
        streaming = run_experiment(
            "ESG",
            config=FAST.with_overrides(
                autoscale=spec_name, metrics=MetricsConfig(mode="streaming")
            ),
            profile_store=store,
            scenario="diurnal-normal",
        )
        assert_byte_identical(retained, streaming)
        assert streaming.metrics.is_streaming

    def test_fully_streaming_matches_compat_materialized(self, store):
        streamed = run_experiment(
            "ESG",
            config=FAST.with_overrides(
                autoscale="threshold-default",
                workload_mode="streaming",
                metrics=MetricsConfig(mode="streaming"),
            ),
            profile_store=store,
            scenario="diurnal-normal",
        )
        materialized = run_experiment(
            "ESG",
            config=COMPAT.with_overrides(autoscale="threshold-default"),
            profile_store=store,
            scenario="diurnal-normal",
        )
        assert_byte_identical(streamed, materialized)
        assert streamed.requests == []


class TestAutoscaleEngineParity:
    def _specs(self) -> list[RunSpec]:
        return [
            RunSpec(
                policy="ESG",
                scenario=scenario,
                config=FAST.with_overrides(autoscale=spec_name),
                label=f"{scenario}/{spec_name}",
            )
            for scenario in SCENARIOS
            for spec_name in AUTOSCALE_SPECS
        ]

    def test_worker_fanout_matches_in_process(self):
        in_process = ExperimentEngine(n_jobs=1).run(self._specs())
        fanned_out = ExperimentEngine(n_jobs=4).run(self._specs())
        for a, b in zip(in_process, fanned_out):
            assert asdict(a.summary) == asdict(b.summary)

    def test_spawn_context_reproduces_autoscaled_summaries(self):
        in_process = ExperimentEngine(n_jobs=1).run(self._specs())
        spawned = ExperimentEngine(n_jobs=2, mp_context="spawn").run(self._specs())
        for a, b in zip(in_process, spawned):
            assert asdict(a.summary) == asdict(b.summary)


class TestAutoscaleActuallyBites:
    """Non-vacuity guards: the parity axes above compare runs in which the
    feedback loop demonstrably fired and changed the outcome."""

    def test_threshold_changes_resident_capacity_on_diurnal(self, store):
        from repro.cluster.controller import ControllerConfig
        from repro.cluster.simulator import Simulation, SimulationConfig
        from repro.experiments.runner import make_policy
        from repro.workloads.scenarios import get_scenario

        scenario = get_scenario("diurnal-normal")
        # A 3-invoker cluster under 24 diurnal requests: the ramp builds a
        # real backlog, so the high watermark demonstrably trips (on the
        # amply-provisioned paper-16 testbed the controller correctly holds
        # inside the band for the whole run — that is a decision, but not
        # the one this guard needs to witness).
        requests = scenario.build_requests(24, 42, store)
        simulation = Simulation(
            policy=make_policy("ESG"),
            requests=requests,
            profile_store=store,
            config=SimulationConfig(
                seed=42,
                cluster=ClusterConfig(num_invokers=3),
                controller=ControllerConfig(initial_warm="home"),
            ),
            setting_name=scenario.setting,
        )
        autoscaler = Autoscaler(spec=get_autoscale_spec("threshold-default")).attach(
            simulation
        )
        simulation.run()
        assert autoscaler.decisions > 0
        assert autoscaler.actuations, "the diurnal run never actuated"
        assert autoscaler.applied_up() > 0
        # The static prewarmer was dethroned for the whole run.
        assert simulation.controller.prewarmer.enabled is False

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_adaptive_summary_differs_from_static(self, store, scenario):
        static = run_experiment(
            "ESG", config=FAST, profile_store=store, scenario=scenario
        )
        adaptive = run_experiment(
            "ESG",
            config=FAST.with_overrides(autoscale="threshold-default"),
            profile_store=store,
            scenario=scenario,
        )
        assert asdict(adaptive.summary) != asdict(static.summary)
