"""Acceptance parity: churn runs are byte-identical across every mode axis.

Capacity churn mutates the cluster mid-run — the part of the state space
the loop/index/metrics/workload refactors never exercised.  These tests
extend the existing parity matrices to churn scenarios: for identical
``(scenario, seed)`` the RunSummary must be byte-identical across

* ``loop_mode`` fast vs. compat (churn events ride the housekeeping heap
  in fast mode and the mirror heap in compat mode),
* ``index_mode`` indexed vs. scan (joins/leaves/resizes maintain the
  capacity buckets vs. are served by fresh scans),
* metrics retained vs. streaming (the ``evicted`` outcome folds at record
  time in streaming mode and by scan in retained mode),
* workload materialized vs. streaming,
* engine ``n_jobs`` 1 vs. 4 and the spawn multiprocessing context.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.metrics import MetricsConfig
from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    build_profile_store,
    run_experiment,
)

CHURN_SCENARIOS = ("harvest-severe-normal", "churn-eviction-fail")

FAST = ExperimentConfig(num_requests=16, loop_mode="fast")
COMPAT = ExperimentConfig(num_requests=16, loop_mode="compat")
FAST_FULLY_STREAMING = ExperimentConfig(
    num_requests=16,
    loop_mode="fast",
    workload_mode="streaming",
    metrics=MetricsConfig(mode="streaming"),
)


@pytest.fixture(scope="module")
def store():
    return build_profile_store()


def assert_byte_identical(a, b) -> None:
    assert asdict(a.summary) == asdict(b.summary)
    assert a.summary == b.summary


class TestChurnLoopModeParity:
    @pytest.mark.parametrize("scenario", CHURN_SCENARIOS)
    @pytest.mark.parametrize("policy", DEFAULT_POLICIES)
    def test_fast_vs_compat_byte_identical(self, store, policy, scenario):
        fast = run_experiment(policy, config=FAST, profile_store=store, scenario=scenario)
        compat = run_experiment(
            policy, config=COMPAT, profile_store=store, scenario=scenario
        )
        assert_byte_identical(fast, compat)

    def test_churn_actually_bites(self, store):
        """Guard against vacuous parity: on this workload the fail-mode
        scenario terminally evicts at least one request, and the harvest
        scenario drops and requeues at least one in-flight task."""
        failed = run_experiment(
            "ESG", config=FAST, profile_store=store, scenario="churn-eviction-fail"
        )
        assert failed.summary.num_evicted > 0
        assert failed.summary.evicted_tasks > 0
        assert (
            failed.summary.num_completed + failed.summary.num_evicted
            == failed.summary.num_requests
        )
        harvested = run_experiment(
            "ESG", config=FAST, profile_store=store, scenario="harvest-severe-normal"
        )
        assert harvested.summary.evicted_tasks > 0
        assert harvested.summary.requeued_jobs > 0
        assert harvested.summary.num_evicted == 0  # requeue mode never fails requests
        assert harvested.summary.num_completed == harvested.summary.num_requests


class TestChurnIndexModeParity:
    @pytest.mark.parametrize("scenario", CHURN_SCENARIOS)
    def test_indexed_vs_scan_byte_identical(self, store, scenario):
        indexed = run_experiment(
            "ESG", config=FAST, profile_store=store, scenario=scenario
        )
        scan = run_experiment(
            "ESG",
            config=FAST.with_overrides(cluster=ClusterConfig(index_mode="scan")),
            profile_store=store,
            scenario=scenario,
        )
        assert_byte_identical(indexed, scan)

    def test_scan_compat_corner_matches_indexed_fast(self, store):
        """The two extreme corners of the (loop, index) square agree under
        churn: scan+compat (the all-reference path) vs. indexed+fast."""
        reference = run_experiment(
            "Orion",
            config=COMPAT.with_overrides(cluster=ClusterConfig(index_mode="scan")),
            profile_store=store,
            scenario="harvest-severe-normal",
        )
        optimized = run_experiment(
            "Orion", config=FAST, profile_store=store, scenario="harvest-severe-normal"
        )
        assert_byte_identical(optimized, reference)


class TestChurnMetricsAndWorkloadParity:
    @pytest.mark.parametrize("scenario", CHURN_SCENARIOS)
    def test_streaming_metrics_fold_evictions_identically(self, store, scenario):
        retained = run_experiment(
            "ESG", config=FAST, profile_store=store, scenario=scenario
        )
        streaming = run_experiment(
            "ESG",
            config=FAST.with_overrides(metrics=MetricsConfig(mode="streaming")),
            profile_store=store,
            scenario=scenario,
        )
        assert_byte_identical(retained, streaming)
        assert streaming.metrics.is_streaming

    def test_fully_streaming_matches_compat_materialized(self, store):
        streamed = run_experiment(
            "ESG",
            config=FAST_FULLY_STREAMING,
            profile_store=store,
            scenario="churn-eviction-fail",
        )
        materialized = run_experiment(
            "ESG", config=COMPAT, profile_store=store, scenario="churn-eviction-fail"
        )
        assert_byte_identical(streamed, materialized)
        assert streamed.requests == []


class TestChurnEngineParity:
    def _specs(self, config: ExperimentConfig) -> list[RunSpec]:
        return [
            RunSpec(policy="ESG", scenario=scenario, config=config)
            for scenario in CHURN_SCENARIOS
        ]

    def test_worker_fanout_matches_in_process(self):
        in_process = ExperimentEngine(n_jobs=1).run(self._specs(FAST))
        fanned_out = ExperimentEngine(n_jobs=4).run(self._specs(FAST))
        for a, b in zip(in_process, fanned_out):
            assert asdict(a.summary) == asdict(b.summary)

    def test_spawn_context_reproduces_churn_summaries(self):
        in_process = ExperimentEngine(n_jobs=1).run(self._specs(FAST))
        spawned = ExperimentEngine(n_jobs=2, mp_context="spawn").run(self._specs(FAST))
        for a, b in zip(in_process, spawned):
            assert asdict(a.summary) == asdict(b.summary)


class TestChurnConfigPrecedence:
    def test_config_churn_overrides_scenario_churn(self, store):
        """An explicit ExperimentConfig.churn wins over the scenario's:
        overriding the fail-mode scenario with a requeue-mode spec makes
        terminal evictions impossible (the scenario's own schedule evicts
        at least one request — pinned by test_churn_actually_bites)."""
        override = run_experiment(
            "ESG",
            config=FAST.with_overrides(churn="harvest-mild"),
            profile_store=store,
            scenario="churn-eviction-fail",
        )
        assert override.summary.num_evicted == 0

    def test_static_scenarios_unchanged_by_churn_plumbing(self, store):
        """A churn-free run must not even enable churn bookkeeping: the
        summary carries all-zero churn counters."""
        result = run_experiment(
            "ESG", config=FAST, profile_store=store, scenario="paper-moderate-normal"
        )
        assert result.summary.num_evicted == 0
        assert result.summary.evicted_tasks == 0
        assert result.summary.requeued_jobs == 0
