"""Acceptance parity: streaming workloads vs. materialized request lists.

The tentpole guarantee of the streaming-workload refactor: switching
``ExperimentConfig.workload_mode`` between ``"materialized"`` (the full
request list built up front, every arrival event pre-registered) and
``"streaming"`` (the simulator pulls arrivals on demand from a lazy
:class:`~repro.workloads.stream.RequestStream`) changes *memory behaviour
only* — every RunSummary is byte-identical, for every policy, on the paper
scenarios, across worker processes and spawn contexts, including
truncated-horizon runs and the combination with streaming metrics.  This
mirrors the ``index_mode="scan"`` and ``MetricsConfig.mode`` precedents of
the two previous scale refactors.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.metrics import MetricsConfig
from repro.cluster.simulator import Simulation, SimulationConfig
from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    build_profile_store,
    make_policy,
    run_experiment,
)
from repro.workloads.scenarios import get_scenario

PAPER_SCENARIOS = (
    "paper-strict-light",
    "paper-moderate-normal",
    "paper-relaxed-heavy",
)

MATERIALIZED = ExperimentConfig(num_requests=16)
STREAMING = ExperimentConfig(num_requests=16, workload_mode="streaming")
#: Both axes streamed: the bounded-memory million-request configuration.
FULLY_STREAMING = ExperimentConfig(
    num_requests=16, workload_mode="streaming", metrics=MetricsConfig(mode="streaming")
)


@pytest.fixture(scope="module")
def store():
    return build_profile_store()


class TestStreamingVsMaterializedSummaries:
    """The full acceptance matrix: 5 policies x 3 paper scenarios."""

    @pytest.mark.parametrize("scenario", PAPER_SCENARIOS)
    @pytest.mark.parametrize("policy", DEFAULT_POLICIES)
    def test_policy_scenario_byte_identical(self, store, policy, scenario):
        materialized = run_experiment(
            policy, config=MATERIALIZED, profile_store=store, scenario=scenario
        )
        streaming = run_experiment(
            policy, config=STREAMING, profile_store=store, scenario=scenario
        )
        assert materialized.summary == streaming.summary

    @pytest.mark.parametrize("scenario", PAPER_SCENARIOS)
    def test_fully_streaming_matches_fully_materialized(self, store, scenario):
        materialized = run_experiment(
            "ESG", config=MATERIALIZED, profile_store=store, scenario=scenario
        )
        streamed = run_experiment(
            "ESG", config=FULLY_STREAMING, profile_store=store, scenario=scenario
        )
        assert materialized.summary == streamed.summary

    def test_streaming_run_retains_no_requests(self, store):
        result = run_experiment(
            "ESG", config=FULLY_STREAMING, profile_store=store, scenario="paper-strict-light"
        )
        assert result.requests == []
        assert result.metrics.is_streaming

    def test_truncated_horizon_runs_stay_identical(self, store):
        """Arrivals beyond the horizon are never pulled in streaming mode,
        exactly as pre-registered ones are never processed."""
        materialized_cfg = MATERIALIZED.with_overrides(num_requests=40, max_time_ms=300.0)
        streaming_cfg = materialized_cfg.with_overrides(workload_mode="streaming")
        materialized = run_experiment(
            "ESG", "moderate-normal", config=materialized_cfg, profile_store=store
        )
        streaming = run_experiment(
            "ESG", "moderate-normal", config=streaming_cfg, profile_store=store
        )
        assert materialized.summary.truncated
        assert materialized.summary == streaming.summary

    def test_figure7_curves_identical_across_modes(self, store):
        """Figure 7 derives per-app SLOs from the collector, so streaming
        runs (no retained request list) report the same curves — not
        silently-zero SLOs."""
        from repro.experiments.end_to_end import figure7_curves

        key = ("relaxed-heavy", "ESG")
        materialized = {
            key: run_experiment(
                "ESG", "relaxed-heavy", config=MATERIALIZED, profile_store=store
            )
        }
        streaming = {
            key: run_experiment(
                "ESG", "relaxed-heavy", config=FULLY_STREAMING, profile_store=store
            )
        }
        materialized_curves = figure7_curves(materialized)
        streaming_curves = figure7_curves(streaming)
        assert materialized_curves == streaming_curves
        assert all(curve.slo_ms > 0 for curve in streaming_curves)

    def test_non_paper_scenarios_stay_identical(self, store):
        """Arrival processes with their own RNG paths stream identically."""
        for scenario in ("poisson-normal", "trace-replay-azure", "mixed-dags-normal"):
            materialized = run_experiment(
                "ESG", config=MATERIALIZED, profile_store=store, scenario=scenario
            )
            streaming = run_experiment(
                "ESG", config=STREAMING, profile_store=store, scenario=scenario
            )
            assert materialized.summary == streaming.summary, scenario


class TestStreamingSimulationMechanics:
    def test_event_queue_stays_small(self, store):
        """Exactly one pending arrival: the queue scales with in-flight
        work (plus lazily-cancelled keep-alive timers), not the workload
        length — a materialized run starts with every arrival pending."""
        scenario = get_scenario("paper-moderate-normal")
        num_requests = 120
        # Scan-mode expiry (no event-driven keep-alive timers) isolates the
        # workload's own contribution to the queue: indexed mode's lazily
        # cancelled timer events would dominate both modes equally.  Compat
        # loop mode keeps the one-pending-arrival pull this invariant is
        # about — the fast loop deliberately buffers arrivals in chunks of
        # ARRIVAL_CHUNK (bounded, but larger than this workload).
        config = SimulationConfig(
            seed=42, loop_mode="compat", cluster=ClusterConfig(index_mode="scan")
        )

        def peak_queue(workload):
            simulation = Simulation(
                policy=make_policy("ESG"),
                requests=workload,
                profile_store=store,
                config=config,
                setting_name=scenario.setting,
            )
            peak = 0

            @simulation.on_event
            def watch(sim, event):
                nonlocal peak
                peak = max(peak, len(sim.events))

            summary = simulation.run()
            assert summary.num_requests == num_requests
            return peak, simulation

        streaming_peak, streaming_sim = peak_queue(
            scenario.build_generator(store, seed=42).stream(num_requests)
        )
        materialized_peak, materialized_sim = peak_queue(
            scenario.build_generator(store, seed=42).generate(num_requests)
        )
        assert streaming_sim.streaming_workload
        assert not materialized_sim.streaming_workload
        # The materialized queue carries the whole not-yet-arrived workload
        # on top of the same in-flight events; streaming carries one
        # pending arrival in its place.
        assert streaming_peak < materialized_peak - num_requests / 2

    def test_arrival_count_parity_events(self, store):
        """Streaming schedules each arrival exactly once."""
        scenario = get_scenario("paper-moderate-normal")
        generator = scenario.build_generator(store, seed=7)
        simulation = Simulation(
            policy=make_policy("INFless"),
            requests=generator.stream(30),
            profile_store=store,
            config=SimulationConfig(seed=7),
            setting_name=scenario.setting,
        )
        summary = simulation.run()
        assert summary.num_requests == 30
        assert summary.num_completed == 30

    def test_empty_stream_rejected(self, store):
        from repro.workloads.stream import RequestStream

        class EmptyStream(RequestStream):
            def __iter__(self):
                return iter(())

            def workflows(self):
                return {}

        with pytest.raises(ValueError, match="at least one request"):
            Simulation(
                policy=make_policy("ESG"),
                requests=EmptyStream(),
                profile_store=store,
                config=SimulationConfig(seed=1),
            )


class TestEngineParityAcrossModes:
    """Workload mode composes with the engine's n_jobs / spawn guarantees."""

    def _specs(self, config: ExperimentConfig) -> list[RunSpec]:
        return [
            RunSpec(policy="ESG", scenario=scenario, config=config)
            for scenario in PAPER_SCENARIOS
        ]

    def test_streaming_specs_in_workers_match_materialized_in_process(self):
        materialized = ExperimentEngine(n_jobs=1).run(self._specs(MATERIALIZED))
        streaming_parallel = ExperimentEngine(n_jobs=4).run(self._specs(FULLY_STREAMING))
        for a, b in zip(materialized, streaming_parallel):
            assert a.summary == b.summary

    def test_spawn_context_reproduces_streaming_summaries(self):
        in_process = ExperimentEngine(n_jobs=1).run(self._specs(FULLY_STREAMING))
        spawned = ExperimentEngine(n_jobs=2, mp_context="spawn").run(
            self._specs(FULLY_STREAMING)
        )
        for a, b in zip(in_process, spawned):
            assert a.summary == b.summary

    def test_summary_only_auto_streams_the_workload(self):
        """summary_only upgrades workers to streaming workloads *and*
        streaming metrics; summaries still equal the full materialized runs."""
        full = ExperimentEngine(n_jobs=1).run(self._specs(MATERIALIZED))
        summary_only = ExperimentEngine(n_jobs=2).run(
            [
                RunSpec(
                    policy="ESG", scenario=scenario, config=MATERIALIZED, summary_only=True
                )
                for scenario in PAPER_SCENARIOS
            ]
        )
        for a, b in zip(full, summary_only):
            assert a.summary == b.summary
            assert b.requests == []
