"""Acceptance parity: indexed cluster core vs. the scan-based reference path.

The tentpole guarantee of the scale-out refactor: switching
``ClusterConfig.index_mode`` between ``"indexed"`` (incremental indexes,
event-driven expiry, dirty-queue scheduling, memoized ESG plans) and
``"scan"`` (the pre-refactor linear scans) changes *performance only* —
every RunSummary is byte-identical, on the paper-default scenarios, for
every policy, across worker processes and spawn contexts.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    build_profile_store,
    run_experiment,
)

PAPER_SCENARIOS = (
    "paper-strict-light",
    "paper-moderate-normal",
    "paper-relaxed-heavy",
)

INDEXED = ExperimentConfig(num_requests=16)
SCAN = ExperimentConfig(num_requests=16, cluster=ClusterConfig(index_mode="scan"))


@pytest.fixture(scope="module")
def store():
    return build_profile_store()


class TestIndexedVsScanSummaries:
    @pytest.mark.parametrize("scenario", PAPER_SCENARIOS)
    def test_esg_paper_scenarios_byte_identical(self, store, scenario):
        indexed = run_experiment("ESG", config=INDEXED, profile_store=store, scenario=scenario)
        scan = run_experiment("ESG", config=SCAN, profile_store=store, scenario=scenario)
        assert indexed.summary == scan.summary

    @pytest.mark.parametrize("policy", [p for p in DEFAULT_POLICIES if p != "ESG"])
    def test_baselines_byte_identical(self, store, policy):
        indexed = run_experiment(
            policy, config=INDEXED, profile_store=store, scenario="paper-moderate-normal"
        )
        scan = run_experiment(
            policy, config=SCAN, profile_store=store, scenario="paper-moderate-normal"
        )
        assert indexed.summary == scan.summary

    def test_esg_plan_cache_off_matches_cache_on(self, store):
        cached = run_experiment(
            "ESG", "moderate-normal", config=INDEXED, profile_store=store
        ).summary
        uncached_policy = __import__("repro.core.esg", fromlist=["ESGPolicy"]).ESGPolicy(
            plan_cache=False
        )
        uncached = run_experiment(
            uncached_policy, "moderate-normal", config=INDEXED, profile_store=store
        ).summary
        assert cached == uncached


class TestEngineParityAcrossModes:
    """Index mode composes with the engine's n_jobs / spawn guarantees."""

    def _specs(self, config: ExperimentConfig) -> list[RunSpec]:
        return [
            RunSpec(
                policy="ESG", scenario=scenario, config=config, summary_only=True
            )
            for scenario in PAPER_SCENARIOS
        ]

    def test_scan_mode_specs_in_workers_match_indexed_in_process(self):
        indexed = ExperimentEngine(n_jobs=1).run(self._specs(INDEXED))
        scan_parallel = ExperimentEngine(n_jobs=4).run(self._specs(SCAN))
        for a, b in zip(indexed, scan_parallel):
            assert a.summary == b.summary

    def test_spawn_context_reproduces_indexed_summaries(self):
        in_process = ExperimentEngine(n_jobs=1).run(self._specs(INDEXED))
        spawned = ExperimentEngine(n_jobs=2, mp_context="spawn").run(self._specs(INDEXED))
        for a, b in zip(in_process, spawned):
            assert a.summary == b.summary
