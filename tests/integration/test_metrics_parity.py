"""Acceptance parity: streaming metrics accumulators vs. retained object scans.

The tentpole guarantee of the metrics refactor: switching
``MetricsConfig.mode`` between ``"retained"`` (every Request/Task object
kept and re-scanned) and ``"streaming"`` (per-app accumulators folded at
record time, no objects retained) changes *memory behaviour only* — every
RunSummary is byte-identical, for every policy, on the paper scenarios,
across worker processes and spawn contexts, including truncated-horizon
runs where the resource-time clamp applies.  This mirrors the
``index_mode="scan"`` precedent from the cluster-core refactor.
"""

from __future__ import annotations

import pytest

from repro.cluster.metrics import MetricsConfig
from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    build_profile_store,
    run_experiment,
)

PAPER_SCENARIOS = (
    "paper-strict-light",
    "paper-moderate-normal",
    "paper-relaxed-heavy",
)

RETAINED = ExperimentConfig(num_requests=16)
STREAMING = ExperimentConfig(num_requests=16, metrics=MetricsConfig(mode="streaming"))


@pytest.fixture(scope="module")
def store():
    return build_profile_store()


class TestStreamingVsRetainedSummaries:
    """The full acceptance matrix: 5 policies x 3 paper scenarios."""

    @pytest.mark.parametrize("scenario", PAPER_SCENARIOS)
    @pytest.mark.parametrize("policy", DEFAULT_POLICIES)
    def test_policy_scenario_byte_identical(self, store, policy, scenario):
        retained = run_experiment(
            policy, config=RETAINED, profile_store=store, scenario=scenario
        )
        streaming = run_experiment(
            policy, config=STREAMING, profile_store=store, scenario=scenario
        )
        assert retained.summary == streaming.summary

    def test_streaming_collector_retains_no_objects(self, store):
        result = run_experiment(
            "ESG", config=STREAMING, profile_store=store, scenario="paper-strict-light"
        )
        assert result.metrics.is_streaming
        assert result.metrics.requests == []
        assert result.metrics.tasks == []
        # ... while the derived accessors still serve the figure modules.
        assert result.metrics.app_names()
        assert result.metrics.latencies_ms()

    def test_truncated_horizon_runs_stay_identical(self, store):
        """The resource-time clamp is applied identically by both modes."""
        retained_cfg = RETAINED.with_overrides(num_requests=40, max_time_ms=300.0)
        streaming_cfg = retained_cfg.with_overrides(
            metrics=MetricsConfig(mode="streaming")
        )
        retained = run_experiment(
            "ESG", "moderate-normal", config=retained_cfg, profile_store=store
        )
        streaming = run_experiment(
            "ESG", "moderate-normal", config=streaming_cfg, profile_store=store
        )
        assert retained.summary.truncated
        assert retained.summary == streaming.summary


class TestEngineParityAcrossModes:
    """Metrics mode composes with the engine's n_jobs / spawn guarantees."""

    def _specs(self, config: ExperimentConfig) -> list[RunSpec]:
        return [
            RunSpec(policy="ESG", scenario=scenario, config=config)
            for scenario in PAPER_SCENARIOS
        ]

    def test_streaming_specs_in_workers_match_retained_in_process(self):
        retained = ExperimentEngine(n_jobs=1).run(self._specs(RETAINED))
        streaming_parallel = ExperimentEngine(n_jobs=4).run(self._specs(STREAMING))
        for a, b in zip(retained, streaming_parallel):
            assert a.summary == b.summary

    def test_spawn_context_reproduces_streaming_summaries(self):
        in_process = ExperimentEngine(n_jobs=1).run(self._specs(STREAMING))
        spawned = ExperimentEngine(n_jobs=2, mp_context="spawn").run(
            self._specs(STREAMING)
        )
        for a, b in zip(in_process, spawned):
            assert a.summary == b.summary

    def test_summary_only_auto_streaming_matches_full_retained_runs(self):
        """summary_only silently upgrades workers to streaming collectors;
        the reported summaries must still equal the retained full runs."""
        full = ExperimentEngine(n_jobs=1).run(self._specs(RETAINED))
        summary_only = ExperimentEngine(n_jobs=2).run(
            [
                RunSpec(policy="ESG", scenario=scenario, config=RETAINED, summary_only=True)
                for scenario in PAPER_SCENARIOS
            ]
        )
        for a, b in zip(full, summary_only):
            assert a.summary == b.summary
