"""Churn fuzz harness: cluster-wide invariants under randomized churn.

Every test runs a policy against a seed-derived random churn schedule and
checks, *after every churn event* (via the simulator's ``on_event`` hook)
and once more after the run drains:

* **capacity conservation** — the cluster's aggregate totals equal the sum
  over invokers, free capacity matches a from-scratch scan and never
  exceeds the total, and per-node usage stays within bounds;
* **no residue on departed nodes** — a tombstoned invoker holds no live
  container, no resident candidates, and no reserved resources;
* **index consistency** (indexed mode) — the warm index and the
  free-capacity buckets equal a from-scratch rebuild from invoker state;
* **terminal exactly-once** (post-run) — every request completed or was
  evicted exactly once, never both.

Failures shrink: the harness re-runs growing prefixes of the failing
schedule and reports the shortest prefix that still violates an invariant,
so a red test hands you a minimal reproduction (seed + action list), not a
20-action haystack.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster.churn import ChurnSchedule, ChurnSpec
from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.events import (
    InvokerJoinEvent,
    InvokerLeaveEvent,
    InvokerResizeEvent,
)
from repro.cluster.simulator import Simulation, SimulationConfig
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    build_profile_store,
    build_requests,
    make_policy,
)
from repro.profiles.profiler import ProfileStore

SEEDS_PER_POLICY = 25
NUM_REQUESTS = 8

_CHURN_EVENTS = (InvokerJoinEvent, InvokerLeaveEvent, InvokerResizeEvent)


@pytest.fixture(scope="module")
def store() -> ProfileStore:
    return build_profile_store()


def fuzz_cluster_config(index_mode: str = "indexed") -> ClusterConfig:
    return ClusterConfig(num_invokers=4, index_mode=index_mode)


def fuzz_schedule(seed: int, cluster_config: ClusterConfig) -> ChurnSchedule:
    """A leave-heavy random schedule; eviction policy alternates by seed."""
    spec = ChurnSpec(
        name=f"fuzz-{seed}",
        start_ms=10.0,
        interval_ms=25.0,
        num_events=8,
        p_leave=0.4,
        p_join=0.3,
        p_resize=0.3,
        min_active=2,
        on_evict="fail" if seed % 2 else "requeue",
    )
    return spec.build(seed, cluster_config)


# ----------------------------------------------------------------------
# Invariant checks
# ----------------------------------------------------------------------
def capacity_violations(cluster: ClusterState) -> list[str]:
    problems: list[str] = []
    sum_vcpus = sum(inv.total_vcpus for inv in cluster)
    sum_vgpus = sum(inv.gpu.total_vgpus for inv in cluster)
    if cluster.total_vcpus() != sum_vcpus:
        problems.append(
            f"total_vcpus counter {cluster.total_vcpus()} != scan sum {sum_vcpus}"
        )
    if cluster.total_vgpus() != sum_vgpus:
        problems.append(
            f"total_vgpus counter {cluster.total_vgpus()} != scan sum {sum_vgpus}"
        )
    free_vcpus = sum(inv.available_vcpus for inv in cluster)
    free_vgpus = sum(inv.available_vgpus for inv in cluster)
    if cluster.total_available_vcpus() != free_vcpus:
        problems.append(
            f"free vcpus {cluster.total_available_vcpus()} != scan sum {free_vcpus}"
        )
    if cluster.total_available_vgpus() != free_vgpus:
        problems.append(
            f"free vgpus {cluster.total_available_vgpus()} != scan sum {free_vgpus}"
        )
    if free_vcpus > sum_vcpus or free_vgpus > sum_vgpus:
        problems.append(f"free capacity ({free_vcpus}, {free_vgpus}) exceeds total")
    for inv in cluster:
        if not 0 <= inv.used_vcpus <= inv.total_vcpus:
            problems.append(
                f"invoker {inv.invoker_id}: used_vcpus {inv.used_vcpus} "
                f"outside [0, {inv.total_vcpus}]"
            )
        if not 0 <= inv.used_vgpus <= inv.gpu.total_vgpus:
            problems.append(
                f"invoker {inv.invoker_id}: used_vgpus {inv.used_vgpus} "
                f"outside [0, {inv.gpu.total_vgpus}]"
            )
    return problems


def tombstone_violations(cluster: ClusterState) -> list[str]:
    problems: list[str] = []
    for inv in cluster:
        if inv.active:
            continue
        live = [c for containers in inv._live.values() for c in containers]
        if live:
            problems.append(f"departed invoker {inv.invoker_id} holds live containers")
        if any(count != 0 for count in inv._resident_candidates.values()):
            problems.append(
                f"departed invoker {inv.invoker_id} has resident candidates"
            )
        if inv.used_vcpus or inv.used_vgpus:
            problems.append(f"departed invoker {inv.invoker_id} holds reservations")
        if inv.total_vcpus or inv.gpu.total_vgpus:
            problems.append(f"departed invoker {inv.invoker_id} kept capacity")
    return problems


def index_violations(cluster: ClusterState) -> list[str]:
    """Indexed mode: warm index and capacity buckets vs a fresh rebuild."""
    if not cluster.indexed:
        return []
    problems: list[str] = []
    for name, members in cluster._warm_index.items():
        expected = {
            inv.invoker_id for inv in cluster if inv.resident_candidate_count(name) > 0
        }
        if members != expected:
            problems.append(
                f"warm index for {name!r}: {sorted(members)} != rebuild {sorted(expected)}"
            )
    indexed_names = set(cluster._warm_index)
    for inv in cluster:
        for name, count in inv._resident_candidates.items():
            if count > 0 and name not in indexed_names:
                problems.append(f"warm index is missing function {name!r}")
    cluster._flush_capacity_moves()
    for inv in cluster:
        expected_bucket = (inv.available_vcpus, inv.available_vgpus)
        if cluster._bucket_of[inv.invoker_id] != expected_bucket:
            problems.append(
                f"invoker {inv.invoker_id}: bucket "
                f"{cluster._bucket_of[inv.invoker_id]} != state {expected_bucket}"
            )
        members = cluster._capacity._members.get(expected_bucket, set())
        if inv.invoker_id not in members:
            problems.append(
                f"invoker {inv.invoker_id} missing from bucket {expected_bucket}"
            )
    member_total = sum(len(m) for _b, m in cluster._capacity.iter_nonempty())
    if member_total != len(cluster.invokers):
        problems.append(
            f"bucket membership covers {member_total} nodes, cluster has "
            f"{len(cluster.invokers)}"
        )
    return problems


def mid_run_violations(cluster: ClusterState) -> list[str]:
    return capacity_violations(cluster) + tombstone_violations(cluster) + index_violations(cluster)


def terminal_violations(simulation: Simulation, requests) -> list[str]:
    problems: list[str] = []
    summary = simulation.metrics.summary()
    for request in requests:
        if request.completed_ms is not None and request.evicted_ms is not None:
            problems.append(f"request {request.request_id} both completed and evicted")
    if not summary.truncated:
        unresolved = [
            r.request_id
            for r in requests
            if r.completed_ms is None and r.evicted_ms is None
        ]
        if unresolved:
            problems.append(f"requests never resolved: {unresolved}")
        if summary.num_completed + summary.num_evicted != summary.num_requests:
            problems.append(
                f"summary counts do not partition: {summary.num_completed} completed "
                f"+ {summary.num_evicted} evicted != {summary.num_requests}"
            )
    return problems


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_once(
    policy_name: str,
    seed: int,
    schedule: ChurnSchedule,
    store: ProfileStore,
    index_mode: str = "indexed",
) -> list[str]:
    """Run one churn simulation; return every invariant violation observed."""
    cluster_config = fuzz_cluster_config(index_mode)
    requests = build_requests("moderate-normal", NUM_REQUESTS, seed, store)
    simulation = Simulation(
        policy=make_policy(policy_name),
        requests=requests,
        profile_store=store,
        config=SimulationConfig(
            seed=seed,
            cluster=cluster_config,
            churn=schedule,
        ),
        setting_name="moderate-normal",
    )
    violations: list[str] = []

    @simulation.on_event
    def _check(sim: Simulation, event) -> None:
        if isinstance(event, _CHURN_EVENTS):
            for problem in mid_run_violations(sim.cluster):
                violations.append(f"after {event!r}: {problem}")

    simulation.run()
    violations.extend(
        f"post-run: {p}" for p in mid_run_violations(simulation.cluster)
    )
    violations.extend(
        f"post-run: {p}" for p in terminal_violations(simulation, requests)
    )
    return violations


def shrink(
    policy_name: str, seed: int, schedule: ChurnSchedule, store: ProfileStore
) -> tuple[ChurnSchedule, list[str]]:
    """Shortest failing prefix of ``schedule`` (linear growth, determinate)."""
    for k in range(1, len(schedule.actions) + 1):
        prefix = replace(schedule, actions=schedule.actions[:k])
        violations = run_once(policy_name, seed, prefix, store)
        if violations:
            return prefix, violations
    # The full schedule failed but no prefix does: report it whole.
    return schedule, run_once(policy_name, seed, schedule, store)


@pytest.mark.parametrize("policy_name", DEFAULT_POLICIES)
def test_churn_invariants_hold_across_seeds(policy_name: str, store: ProfileStore):
    for seed in range(SEEDS_PER_POLICY):
        schedule = fuzz_schedule(seed, fuzz_cluster_config())
        violations = run_once(policy_name, seed, schedule, store)
        if violations:
            minimal, min_violations = shrink(policy_name, seed, schedule, store)
            pytest.fail(
                f"churn invariants violated (policy={policy_name}, seed={seed}, "
                f"on_evict={schedule.on_evict!r});\n"
                f"minimal failing prefix ({len(minimal.actions)} of "
                f"{len(schedule.actions)} actions):\n"
                + "\n".join(f"  {action}" for action in minimal.actions)
                + "\nviolations:\n"
                + "\n".join(f"  {v}" for v in min_violations)
            )


@pytest.mark.parametrize("policy_name", ["ESG", "Orion"])
def test_churn_invariants_hold_in_scan_mode(policy_name: str, store: ProfileStore):
    """Scan mode has no indexes to corrupt, but capacity conservation,
    tombstone hygiene and terminal-exactly-once must hold there too."""
    for seed in range(8):
        schedule = fuzz_schedule(seed, fuzz_cluster_config("scan"))
        violations = run_once(policy_name, seed, schedule, store, index_mode="scan")
        assert not violations, violations


def test_harness_catches_planted_corruption(store: ProfileStore):
    """The fuzz harness itself must be able to fail: plant an index
    corruption mid-run and check the observer reports it."""
    schedule = fuzz_schedule(1, fuzz_cluster_config())
    cluster_config = fuzz_cluster_config()
    requests = build_requests("moderate-normal", NUM_REQUESTS, 1, store)
    simulation = Simulation(
        policy=make_policy("ESG"),
        requests=requests,
        profile_store=store,
        config=SimulationConfig(seed=1, cluster=cluster_config, churn=schedule),
        setting_name="moderate-normal",
    )
    seen: list[str] = []

    @simulation.on_event
    def _corrupt_then_check(sim: Simulation, event) -> None:
        if isinstance(event, _CHURN_EVENTS) and not seen:
            sim.cluster._total_vcpus += 1  # planted bug
            seen.extend(mid_run_violations(sim.cluster))
            sim.cluster._total_vcpus -= 1

    simulation.run()
    assert any("total_vcpus" in problem for problem in seen)
