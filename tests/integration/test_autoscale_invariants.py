"""Autoscale fuzz harness: control-loop invariants under randomized traffic.

Every test runs the ESG policy with an attached :class:`Autoscaler` on a
seed-derived random arrival trace (the workload setting, burstiness, trace
length and initial-warm posture all vary with the seed) and checks, *after
every actuation* (via the simulator's ``on_event`` hook, which fires
immediately after the autoscaler's own hook on the same event — no state
changes in between):

* **clamp band** — an applied scale-up never pushes the observed resident
  count above ``max_residents``; an applied scale-down never below
  ``min_residents``; the applied delta never exceeds or contradicts the
  requested one, and the target list matches it exactly;
* **tombstone hygiene** — no actuation ever targets an invoker that is not
  active at actuation time (scale-ups route through the prewarmer's
  tombstone-skipping picker; scale-downs only see live containers);
* **hysteresis discipline** (threshold) — actuations happen only at or
  above the high watermark (up) or at or below the low watermark under a
  quiet arrival rate (down): the controller never oscillates from strictly
  inside the band, and its patience counter stays below the bound;
* **anti-windup** (PID) — the integral term stays inside
  ``[-integral_clamp, +integral_clamp]`` after every decision.

Failures shrink: the harness re-runs growing prefixes of the failing trace
and reports the shortest request prefix that still violates an invariant,
so a red test hands a minimal reproduction (seed + trace recipe + prefix
length), not a full-trace haystack.  ``test_harness_catches_*`` prove the
checkers and the hook wiring can actually fail.
"""

from __future__ import annotations

import pytest

from repro.cluster.autoscale import (
    AutoscaleActuation,
    AutoscaleSpec,
    AutoscaleState,
    Autoscaler,
    PIDController,
    ThresholdController,
    get_autoscale_spec,
)
from repro.cluster.churn import get_churn_spec
from repro.cluster.cluster import ClusterConfig
from repro.cluster.controller import ControllerConfig
from repro.cluster.simulator import Simulation, SimulationConfig
from repro.experiments.runner import (
    build_profile_store,
    build_requests,
    make_policy,
)
from repro.profiles.profiler import ProfileStore

CONTROLLER_SPECS = ("threshold-default", "pid-default", "learned-stub")
SEEDS_PER_CONTROLLER = 21

_SETTINGS = ("moderate-normal", "relaxed-heavy", "strict-light")
#: Bursty tails are where feedback controllers actually fire (smooth light
#: traffic never builds a backlog on a 4-invoker cluster).
_BURSTINESS = (0.7, 0.9, 0.97)


@pytest.fixture(scope="module")
def store() -> ProfileStore:
    return build_profile_store()


def fuzz_trace(seed: int, store: ProfileStore):
    """Seed-derived random trace: setting, burstiness, length, warm posture."""
    setting = _SETTINGS[seed % len(_SETTINGS)]
    burstiness = _BURSTINESS[(seed // len(_SETTINGS)) % len(_BURSTINESS)]
    num_requests = 14 + (seed % 6)
    initial_warm = "home" if seed % 2 else "none"
    # Small clusters back up deeply under bursts — that is where the EWMA
    # smoothing of the PID path still sees a sustained error.
    num_invokers = 2 + (seed % 3)
    requests = build_requests(setting, num_requests, seed, store, burstiness=burstiness)
    return requests, setting, initial_warm, num_invokers


# ----------------------------------------------------------------------
# Invariant checks
# ----------------------------------------------------------------------
def actuation_violations(
    actuation: AutoscaleActuation, spec: AutoscaleSpec, cluster
) -> list[str]:
    problems: list[str] = []
    a = actuation
    if a.requested == 0:
        problems.append("actuation recorded for a zero-delta decision")
    if a.applied > 0 and a.state.residents + a.applied > spec.max_residents:
        problems.append(
            f"scale-up broke the clamp: {a.state.residents} residents "
            f"+ {a.applied} applied > max_residents {spec.max_residents}"
        )
    if a.applied < 0 and a.state.residents + a.applied < spec.min_residents:
        problems.append(
            f"scale-down broke the clamp: {a.state.residents} residents "
            f"{a.applied} applied < min_residents {spec.min_residents}"
        )
    if abs(a.applied) > abs(a.requested):
        problems.append(f"applied {a.applied} exceeds requested {a.requested}")
    if a.applied != 0 and (a.applied > 0) != (a.requested > 0):
        problems.append(f"applied {a.applied} contradicts requested {a.requested}")
    if len(a.targets) != abs(a.applied):
        problems.append(
            f"{len(a.targets)} targets recorded for an applied delta of {a.applied}"
        )
    for invoker_id in a.targets:
        if not cluster.invoker(invoker_id).active:
            problems.append(
                f"actuation for {a.state.function_name!r} targeted "
                f"tombstoned invoker {invoker_id}"
            )
    return problems


def threshold_violations(actuation: AutoscaleActuation, spec: AutoscaleSpec) -> list[str]:
    """The hysteresis contract: never actuate from strictly inside the band."""
    problems: list[str] = []
    a = actuation
    if a.requested > 0 and a.state.queue_depth < spec.high_watermark:
        problems.append(
            f"threshold scaled up at depth {a.state.queue_depth} "
            f"below high watermark {spec.high_watermark}"
        )
    if a.requested < 0 and (
        a.state.queue_depth > spec.low_watermark
        or a.state.arrival_rate_per_s > spec.low_rate_per_s
    ):
        problems.append(
            f"threshold scaled down at depth {a.state.queue_depth}, rate "
            f"{a.state.arrival_rate_per_s:.1f}/s above the low gate "
            f"({spec.low_watermark}, {spec.low_rate_per_s}/s)"
        )
    return problems


def controller_violations(autoscaler: Autoscaler) -> list[str]:
    """Bounds on live controller state, re-checked after every event."""
    problems: list[str] = []
    for fn in sorted(autoscaler.controllers):
        controller = autoscaler.controllers[fn]
        if isinstance(controller, PIDController):
            if abs(controller.integral) > controller.integral_clamp + 1e-9:
                problems.append(
                    f"PID integral for {fn!r} wound up to {controller.integral} "
                    f"past the clamp {controller.integral_clamp}"
                )
        if isinstance(controller, ThresholdController):
            if not 0 <= controller.idle_rounds < controller.down_patience:
                problems.append(
                    f"threshold patience counter for {fn!r} is "
                    f"{controller.idle_rounds}, outside "
                    f"[0, {controller.down_patience})"
                )
    return problems


def all_violations(
    autoscaler: Autoscaler, new_actuations: list[AutoscaleActuation], cluster
) -> list[str]:
    problems: list[str] = []
    for actuation in new_actuations:
        problems.extend(actuation_violations(actuation, autoscaler.spec, cluster))
        if autoscaler.spec.kind == "threshold":
            problems.extend(threshold_violations(actuation, autoscaler.spec))
    problems.extend(controller_violations(autoscaler))
    return problems


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_once(
    spec_name: str,
    seed: int,
    requests,
    setting: str,
    store: ProfileStore,
    *,
    initial_warm: str = "home",
    num_invokers: int = 4,
    churn_spec_name: str | None = None,
    corrupt_picker=None,
) -> tuple[Autoscaler, list[str]]:
    """One fuzz run; returns the autoscaler and every violation observed."""
    cluster_config = ClusterConfig(num_invokers=num_invokers)
    schedule = None
    if churn_spec_name is not None:
        schedule = get_churn_spec(churn_spec_name).build(seed, cluster_config)
    simulation = Simulation(
        policy=make_policy("ESG"),
        requests=requests,
        profile_store=store,
        config=SimulationConfig(
            seed=seed,
            cluster=cluster_config,
            controller=ControllerConfig(initial_warm=initial_warm),
            churn=schedule,
        ),
        setting_name=setting,
    )
    autoscaler = Autoscaler(spec=get_autoscale_spec(spec_name)).attach(simulation)
    if corrupt_picker is not None:
        autoscaler._pick_invoker = corrupt_picker.__get__(autoscaler)
    violations: list[str] = []
    seen = 0

    # Registered after attach(), so this fires right after the autoscaler's
    # own hook on the same event: any actuation is checked against cluster
    # state at the exact virtual time it was applied.
    @simulation.on_event
    def _check(sim: Simulation, event) -> None:
        nonlocal seen
        new = autoscaler.actuations[seen:]
        seen = len(autoscaler.actuations)
        for problem in all_violations(autoscaler, new, sim.cluster):
            violations.append(f"after {event!r}: {problem}")

    simulation.run()
    return autoscaler, violations


def shrink(
    spec_name: str,
    seed: int,
    requests,
    setting: str,
    store: ProfileStore,
    *,
    initial_warm: str,
    num_invokers: int = 4,
    churn_spec_name: str | None = None,
) -> tuple[int, list[str]]:
    """Shortest failing trace prefix (linear growth, determinate)."""
    for k in range(1, len(requests) + 1):
        _, violations = run_once(
            spec_name,
            seed,
            requests[:k],
            setting,
            store,
            initial_warm=initial_warm,
            num_invokers=num_invokers,
            churn_spec_name=churn_spec_name,
        )
        if violations:
            return k, violations
    # The full trace failed but no prefix does: report it whole.
    _, violations = run_once(
        spec_name,
        seed,
        requests,
        setting,
        store,
        initial_warm=initial_warm,
        num_invokers=num_invokers,
        churn_spec_name=churn_spec_name,
    )
    return len(requests), violations


def fail_with_minimal_repro(
    spec_name: str,
    seed: int,
    requests,
    setting,
    store,
    *,
    initial_warm,
    num_invokers: int = 4,
    churn=None,
) -> None:
    prefix_len, min_violations = shrink(
        spec_name,
        seed,
        requests,
        setting,
        store,
        initial_warm=initial_warm,
        num_invokers=num_invokers,
        churn_spec_name=churn,
    )
    pytest.fail(
        f"autoscale invariants violated (spec={spec_name}, seed={seed}, "
        f"setting={setting}, initial_warm={initial_warm}, "
        f"num_invokers={num_invokers}, churn={churn});\n"
        f"minimal failing prefix: first {prefix_len} of {len(requests)} requests\n"
        "violations:\n" + "\n".join(f"  {v}" for v in min_violations)
    )


# ----------------------------------------------------------------------
# Fuzz tests
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec_name", CONTROLLER_SPECS)
def test_autoscale_invariants_hold_across_seeds(spec_name: str, store: ProfileStore):
    total_actuations = 0
    for seed in range(SEEDS_PER_CONTROLLER):
        requests, setting, initial_warm, num_invokers = fuzz_trace(seed, store)
        autoscaler, violations = run_once(
            spec_name,
            seed,
            requests,
            setting,
            store,
            initial_warm=initial_warm,
            num_invokers=num_invokers,
        )
        if violations:
            fail_with_minimal_repro(
                spec_name,
                seed,
                requests,
                setting,
                store,
                initial_warm=initial_warm,
                num_invokers=num_invokers,
            )
        total_actuations += len(autoscaler.actuations)
        assert autoscaler.decisions > 0
    # Vacuity guard: across the whole seed sweep this controller must have
    # actually actuated — an invariant suite over zero actuations proves
    # nothing.
    assert total_actuations > 0


@pytest.mark.parametrize("spec_name", CONTROLLER_SPECS)
def test_autoscale_respects_tombstones_under_eviction_storm(
    spec_name: str, store: ProfileStore
):
    """Regression: actuation during leave-heavy churn never targets a
    leaving invoker (the picker skips tombstones; retirement only ever sees
    live containers)."""
    saw_actuation_with_tombstones = False
    for seed in range(8):
        # The churn sweep keeps the 4-invoker cluster: eviction-storm's
        # leave pressure is calibrated against it, and the tombstone
        # invariant needs departures, not a tiny cluster.
        requests, setting, initial_warm, _ = fuzz_trace(seed, store)
        autoscaler, violations = run_once(
            spec_name,
            seed,
            requests,
            setting,
            store,
            initial_warm=initial_warm,
            churn_spec_name="eviction-storm",
        )
        if violations:
            fail_with_minimal_repro(
                spec_name,
                seed,
                requests,
                setting,
                store,
                initial_warm=initial_warm,
                churn="eviction-storm",
            )
        if autoscaler.actuations:
            saw_actuation_with_tombstones = True
    assert saw_actuation_with_tombstones


# ----------------------------------------------------------------------
# The harness itself must be able to fail
# ----------------------------------------------------------------------
def make_state(**overrides) -> AutoscaleState:
    defaults = dict(
        now_ms=10.0,
        function_name="f",
        queue_depth=0,
        arrival_rate_per_s=0.0,
        residents=1,
        active_invokers=4,
    )
    defaults.update(overrides)
    return AutoscaleState(**defaults)


class TestCheckersCatchForgedRecords:
    spec = get_autoscale_spec("threshold-default")

    def _cluster(self, store: ProfileStore):
        simulation = Simulation(
            policy=make_policy("ESG"),
            requests=build_requests("moderate-normal", 1, 0, store),
            profile_store=store,
            config=SimulationConfig(cluster=ClusterConfig(num_invokers=4)),
        )
        return simulation.cluster

    def test_clamp_overshoot_is_reported(self, store):
        forged = AutoscaleActuation(
            state=make_state(queue_depth=9, residents=self.spec.max_residents),
            requested=2,
            applied=2,
            targets=(0, 1),
        )
        problems = actuation_violations(forged, self.spec, self._cluster(store))
        assert any("broke the clamp" in p for p in problems)

    def test_floor_undershoot_is_reported(self, store):
        spec = AutoscaleSpec(name="forged-floor", min_residents=2, max_residents=4)
        forged = AutoscaleActuation(
            state=make_state(residents=2), requested=-1, applied=-1, targets=(0,)
        )
        problems = actuation_violations(forged, spec, self._cluster(store))
        assert any("broke the clamp" in p for p in problems)

    def test_tombstoned_target_is_reported(self, store):
        cluster = self._cluster(store)
        cluster.apply_leave(2)
        forged = AutoscaleActuation(
            state=make_state(queue_depth=9), requested=1, applied=1, targets=(2,)
        )
        problems = actuation_violations(forged, self.spec, cluster)
        assert any("tombstoned invoker 2" in p for p in problems)

    def test_in_band_actuation_is_reported(self):
        inside = AutoscaleActuation(
            state=make_state(queue_depth=1), requested=1, applied=1, targets=(0,)
        )
        assert any("below high watermark" in p for p in threshold_violations(inside, self.spec))
        down_with_traffic = AutoscaleActuation(
            state=make_state(queue_depth=0, arrival_rate_per_s=40.0),
            requested=-1,
            applied=-1,
            targets=(0,),
        )
        assert any(
            "above the low gate" in p
            for p in threshold_violations(down_with_traffic, self.spec)
        )

    def test_wound_up_integral_is_reported(self):
        autoscaler = Autoscaler(spec=get_autoscale_spec("pid-default"))
        controller = autoscaler.spec.build_controller()
        controller.integral = controller.integral_clamp + 1.0  # planted bug
        autoscaler.controllers["f"] = controller
        assert any("wound up" in p for p in controller_violations(autoscaler))


def test_harness_catches_planted_tombstone_placement(store: ProfileStore):
    """End-to-end self-test: corrupt the placement picker to prefer
    tombstoned invokers and check the hook-time observer reports it."""

    def bad_pick(self, cluster, function_name, now_ms):
        for invoker in cluster:
            if not invoker.active:
                return invoker.invoker_id  # planted bug
        from repro.cluster.prewarm import PrewarmManager

        return PrewarmManager._pick_invoker(cluster, function_name, now_ms)

    caught: list[str] = []
    for seed in range(8):
        requests, setting, _, _ = fuzz_trace(seed, store)
        _, violations = run_once(
            "learned-stub",
            seed,
            requests,
            setting,
            store,
            initial_warm="none",
            churn_spec_name="eviction-storm",
            corrupt_picker=bad_pick,
        )
        caught.extend(violations)
        if caught:
            break
    assert any("tombstoned invoker" in v for v in caught)
