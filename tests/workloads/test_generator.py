"""Tests for the workload settings and request-stream generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import derive_rng
from repro.workloads.applications import build_paper_applications, image_classification
from repro.workloads.generator import (
    MODERATE_NORMAL,
    RELAXED_HEAVY,
    STRICT_LIGHT,
    WORKLOAD_SETTINGS,
    WorkloadGenerator,
    WorkloadSetting,
)


class TestWorkloadSettings:
    def test_paper_settings_registered(self):
        assert set(WORKLOAD_SETTINGS) == {"strict-light", "moderate-normal", "relaxed-heavy"}

    def test_slo_factors(self):
        assert STRICT_LIGHT.slo_factor == 0.8
        assert MODERATE_NORMAL.slo_factor == 1.0
        assert RELAXED_HEAVY.slo_factor == 1.2

    def test_slo_scales_base_latency(self):
        assert STRICT_LIGHT.slo_ms(1000.0) == pytest.approx(800.0)
        assert RELAXED_HEAVY.slo_ms(500.0) == pytest.approx(600.0)

    def test_strict_pairs_with_light_arrivals(self):
        assert STRICT_LIGHT.intervals.mean_ms > RELAXED_HEAVY.intervals.mean_ms

    def test_invalid_setting_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSetting("", 1.0, STRICT_LIGHT.intervals)
        with pytest.raises(ValueError):
            WorkloadSetting("x", 0.0, STRICT_LIGHT.intervals)


@pytest.fixture()
def generator(small_store) -> WorkloadGenerator:
    return WorkloadGenerator(
        applications=build_paper_applications(),
        setting=RELAXED_HEAVY,
        profile_store=small_store,
        rng=derive_rng(5, "gen"),
    )


class TestWorkloadGenerator:
    def test_generates_requested_number(self, generator):
        requests = generator.generate(50)
        assert len(requests) == 50
        assert all(r.request_id == i for i, r in enumerate(requests))

    def test_arrivals_increase(self, generator):
        requests = generator.generate(50)
        arrivals = [r.arrival_ms for r in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_slo_is_factor_times_base_latency(self, generator, small_store):
        requests = generator.generate(30)
        for request in requests:
            base = small_store.minimum_config_latency_ms(request.workflow.function_names())
            assert request.slo_ms == pytest.approx(1.2 * base)

    def test_app_mix_covers_all_apps(self, generator):
        requests = generator.generate(200)
        apps = {r.app_name for r in requests}
        assert apps == {
            "image_classification",
            "depth_recognition",
            "background_elimination",
            "expanded_image_classification",
        }

    def test_reproducible_with_same_seed(self, small_store):
        def build():
            return WorkloadGenerator(
                applications=build_paper_applications(),
                setting=STRICT_LIGHT,
                profile_store=small_store,
                rng=derive_rng(11, "repro"),
            ).generate(40)

        first = build()
        second = build()
        assert [(r.arrival_ms, r.app_name) for r in first] == [
            (r.arrival_ms, r.app_name) for r in second
        ]

    def test_app_weights_bias_mix(self, small_store):
        generator = WorkloadGenerator(
            applications=build_paper_applications(),
            setting=MODERATE_NORMAL,
            profile_store=small_store,
            rng=derive_rng(3, "weights"),
            app_weights=[1.0, 0.0, 0.0, 0.0],
        )
        requests = generator.generate(30)
        assert {r.app_name for r in requests} == {"image_classification"}

    def test_invalid_weights_rejected(self, small_store):
        with pytest.raises(ValueError):
            WorkloadGenerator(
                applications=[image_classification()],
                setting=MODERATE_NORMAL,
                profile_store=small_store,
                rng=derive_rng(1, "w"),
                app_weights=[1.0, 2.0],
            )
        with pytest.raises(ValueError):
            WorkloadGenerator(
                applications=[image_classification()],
                setting=MODERATE_NORMAL,
                profile_store=small_store,
                rng=derive_rng(1, "w"),
                app_weights=[-1.0],
            )

    def test_empty_applications_rejected(self, small_store):
        with pytest.raises(ValueError):
            WorkloadGenerator(
                applications=[],
                setting=MODERATE_NORMAL,
                profile_store=small_store,
                rng=derive_rng(1, "w"),
            )

    def test_generate_for_duration_bounds_arrivals(self, generator):
        requests = generator.generate_for_duration(500.0)
        assert requests
        assert all(r.arrival_ms <= 500.0 for r in requests)

    def test_mean_interval_matches_setting(self, small_store):
        generator = WorkloadGenerator(
            applications=build_paper_applications(),
            setting=RELAXED_HEAVY,
            profile_store=small_store,
            rng=derive_rng(21, "mean"),
        )
        requests = generator.generate(500)
        intervals = np.diff([r.arrival_ms for r in requests])
        assert RELAXED_HEAVY.intervals.low_ms <= intervals.mean() <= RELAXED_HEAVY.intervals.high_ms
