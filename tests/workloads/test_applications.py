"""Tests for the four paper applications (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.profiles.specs import FUNCTION_SPECS
from repro.workloads.applications import (
    PAPER_APPLICATIONS,
    background_elimination,
    build_paper_applications,
    depth_recognition,
    expanded_image_classification,
    image_classification,
)


class TestPipelines:
    def test_image_classification_stages(self):
        wf = image_classification()
        assert wf.function_names() == ["super_resolution", "segmentation", "classification"]

    def test_depth_recognition_stages(self):
        wf = depth_recognition()
        assert wf.function_names() == ["deblur", "super_resolution", "depth_recognition"]

    def test_background_elimination_stages(self):
        wf = background_elimination()
        assert wf.function_names() == ["super_resolution", "deblur", "background_removal"]

    def test_expanded_image_classification_stages(self):
        wf = expanded_image_classification()
        assert wf.function_names() == [
            "deblur",
            "super_resolution",
            "background_removal",
            "segmentation",
            "classification",
        ]

    @pytest.mark.parametrize("builder", list(PAPER_APPLICATIONS.values()))
    def test_all_applications_are_valid_linear_pipelines(self, builder):
        wf = builder()
        wf.validate()
        assert wf.is_linear()

    @pytest.mark.parametrize("builder", list(PAPER_APPLICATIONS.values()))
    def test_all_functions_are_registered(self, builder):
        wf = builder()
        for fn in wf.function_names():
            assert fn in FUNCTION_SPECS

    def test_build_paper_applications_returns_all_four(self):
        apps = build_paper_applications()
        assert [a.name for a in apps] == [
            "image_classification",
            "depth_recognition",
            "background_elimination",
            "expanded_image_classification",
        ]

    def test_builders_return_fresh_instances(self):
        assert image_classification() is not image_classification()

    def test_registry_names_match_workflow_names(self):
        for name, builder in PAPER_APPLICATIONS.items():
            assert builder().name == name
