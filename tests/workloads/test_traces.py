"""Tests for the arrival-interval generation (Figure 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import derive_rng
from repro.workloads.traces import (
    HEAVY_INTERVALS,
    LIGHT_INTERVALS,
    NORMAL_INTERVALS,
    ArrivalIntervalRange,
    generate_arrival_times,
    generate_intervals,
)


class TestIntervalRanges:
    def test_paper_ranges(self):
        assert (HEAVY_INTERVALS.low_ms, HEAVY_INTERVALS.high_ms) == (10.0, 16.8)
        assert (NORMAL_INTERVALS.low_ms, NORMAL_INTERVALS.high_ms) == (20.0, 33.6)
        assert (LIGHT_INTERVALS.low_ms, LIGHT_INTERVALS.high_ms) == (40.0, 67.2)

    def test_mean_and_rate(self):
        r = ArrivalIntervalRange(10.0, 20.0)
        assert r.mean_ms == 15.0
        assert r.mean_rate_per_s == pytest.approx(1000.0 / 15.0)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            ArrivalIntervalRange(0.0, 10.0)
        with pytest.raises(ValueError):
            ArrivalIntervalRange(20.0, 10.0)

    def test_heavier_settings_have_higher_rates(self):
        assert HEAVY_INTERVALS.mean_rate_per_s > NORMAL_INTERVALS.mean_rate_per_s > LIGHT_INTERVALS.mean_rate_per_s


class TestGenerateIntervals:
    def test_all_intervals_within_range(self, rng):
        intervals = generate_intervals(500, HEAVY_INTERVALS, rng)
        assert intervals.shape == (500,)
        assert np.all(intervals >= HEAVY_INTERVALS.low_ms)
        assert np.all(intervals <= HEAVY_INTERVALS.high_ms)

    def test_reproducible_with_same_seed(self):
        a = generate_intervals(100, NORMAL_INTERVALS, derive_rng(9, "t"))
        b = generate_intervals(100, NORMAL_INTERVALS, derive_rng(9, "t"))
        assert np.array_equal(a, b)

    def test_invalid_count_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_intervals(0, NORMAL_INTERVALS, rng)

    def test_invalid_burstiness_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_intervals(10, NORMAL_INTERVALS, rng, burstiness=1.5)

    def test_burstiness_keeps_intervals_positive_and_bounded(self, rng):
        intervals = generate_intervals(300, LIGHT_INTERVALS, rng, burstiness=1.0)
        assert np.all(intervals > 0)
        assert np.all(intervals <= LIGHT_INTERVALS.high_ms * 1.5 + 1e-9)

    @settings(max_examples=25)
    @given(n=st.integers(min_value=1, max_value=200), seed=st.integers(min_value=0, max_value=1000))
    def test_interval_bounds_property(self, n, seed):
        intervals = generate_intervals(n, NORMAL_INTERVALS, derive_rng(seed, "prop"))
        assert len(intervals) == n
        assert np.all(intervals >= NORMAL_INTERVALS.low_ms)
        assert np.all(intervals <= NORMAL_INTERVALS.high_ms)


class TestGenerateArrivalTimes:
    def test_arrival_times_are_strictly_increasing(self, rng):
        arrivals = generate_arrival_times(200, HEAVY_INTERVALS, rng)
        assert np.all(np.diff(arrivals) > 0)

    def test_start_offset_applied(self, rng):
        arrivals = generate_arrival_times(10, LIGHT_INTERVALS, rng, start_ms=1000.0)
        assert arrivals[0] >= 1000.0 + LIGHT_INTERVALS.low_ms
