"""Tests for the workflow DAG representation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.dag import Stage, Workflow, WorkflowValidationError


class TestStage:
    def test_requires_non_empty_ids(self):
        with pytest.raises(WorkflowValidationError):
            Stage(stage_id="", function_name="f")
        with pytest.raises(WorkflowValidationError):
            Stage(stage_id="s", function_name="")


class TestConstruction:
    def test_add_stage_and_edge(self):
        wf = Workflow("w")
        wf.add_stage("a", "deblur")
        wf.add_stage("b", "classification")
        wf.add_edge("a", "b")
        assert wf.num_stages == 2
        assert wf.successors("a") == ["b"]
        assert wf.predecessors("b") == ["a"]

    def test_duplicate_stage_rejected(self):
        wf = Workflow("w")
        wf.add_stage("a", "deblur")
        with pytest.raises(WorkflowValidationError):
            wf.add_stage("a", "deblur")

    def test_edge_to_unknown_stage_rejected(self):
        wf = Workflow("w")
        wf.add_stage("a", "deblur")
        with pytest.raises(WorkflowValidationError):
            wf.add_edge("a", "zzz")

    def test_self_edge_rejected(self):
        wf = Workflow("w")
        wf.add_stage("a", "deblur")
        with pytest.raises(WorkflowValidationError):
            wf.add_edge("a", "a")

    def test_duplicate_edge_rejected(self):
        wf = Workflow("w")
        wf.add_stage("a", "deblur")
        wf.add_stage("b", "deblur")
        wf.add_edge("a", "b")
        with pytest.raises(WorkflowValidationError):
            wf.add_edge("a", "b")

    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow("")


class TestLinearBuilder:
    def test_linear_chain_structure(self):
        wf = Workflow.linear("app", ["f1", "f2", "f3"])
        assert wf.topological_order() == ["s1", "s2", "s3"]
        assert wf.function_names() == ["f1", "f2", "f3"]
        assert wf.is_linear()
        assert wf.sources() == ["s1"]
        assert wf.sinks() == ["s3"]

    def test_single_stage_pipeline(self):
        wf = Workflow.linear("one", ["f"])
        assert wf.sources() == wf.sinks() == ["s1"]

    @given(st.integers(min_value=1, max_value=10))
    def test_linear_length_property(self, n):
        wf = Workflow.linear("app", [f"fn{i}" for i in range(n)])
        assert wf.num_stages == n
        order = wf.topological_order()
        assert len(order) == n
        # In a chain, each stage except the last has exactly one successor.
        for sid in order[:-1]:
            assert len(wf.successors(sid)) == 1
        assert wf.successors(order[-1]) == []


class TestStructure:
    def test_cycle_detected(self):
        wf = Workflow("cyclic")
        wf.add_stage("a", "f")
        wf.add_stage("b", "g")
        wf.add_edge("a", "b")
        wf.add_edge("b", "a")
        with pytest.raises(WorkflowValidationError, match="cycle"):
            wf.topological_order()

    def test_validate_empty_workflow(self):
        with pytest.raises(WorkflowValidationError, match="no stages"):
            Workflow("empty").validate()

    def test_diamond_topological_order(self, diamond_workflow):
        order = diamond_workflow.topological_order()
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")
        assert order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_diamond_not_linear(self, diamond_workflow):
        assert not diamond_workflow.is_linear()
        assert diamond_workflow.sources() == ["a"]
        assert diamond_workflow.sinks() == ["d"]

    def test_downstream_stages(self, diamond_workflow):
        assert set(diamond_workflow.downstream_stages("a")) == {"b", "c", "d"}
        assert diamond_workflow.downstream_stages("d") == []

    def test_unknown_stage_access_raises(self):
        wf = Workflow.linear("app", ["f"])
        with pytest.raises(KeyError):
            wf.stage("nope")
        with pytest.raises(KeyError):
            wf.function_of("nope")

    def test_contains_and_iter(self):
        wf = Workflow.linear("app", ["f1", "f2"])
        assert "s1" in wf and "s9" not in wf
        assert [s.stage_id for s in wf] == ["s1", "s2"]
