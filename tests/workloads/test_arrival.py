"""Tests for the pluggable arrival-process hierarchy."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.utils.rng import derive_rng
from repro.workloads.arrival import (
    ArrivalProcess,
    AzureIntervalProcess,
    DiurnalProcess,
    OnOffBurstProcess,
    PoissonProcess,
    TraceExhaustedError,
    TraceReplayProcess,
)
from repro.workloads.traces import NORMAL_INTERVALS, generate_intervals

ALL_PROCESSES = [
    AzureIntervalProcess(NORMAL_INTERVALS),
    AzureIntervalProcess(NORMAL_INTERVALS, burstiness=0.4),
    PoissonProcess(rate_per_s=40.0),
    OnOffBurstProcess(
        burst_rate_per_s=80.0, base_rate_per_s=15.0, mean_burst_ms=300.0, mean_gap_ms=500.0
    ),
    DiurnalProcess(base_rate_per_s=40.0, amplitude=0.6, period_ms=4000.0),
    TraceReplayProcess(intervals_ms=(10.0, 20.0, 30.0), loop=True),
]


@pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
class TestEveryProcess:
    def test_intervals_are_positive_and_sized(self, process: ArrivalProcess):
        intervals = process.intervals(50, derive_rng(3, "arrivals"))
        assert intervals.shape == (50,)
        assert (intervals > 0).all()

    def test_deterministic_given_derived_stream(self, process: ArrivalProcess):
        a = process.intervals(40, derive_rng(9, "workload", "x"))
        b = process.intervals(40, derive_rng(9, "workload", "x"))
        assert (a == b).all()

    def test_round_trips_through_pickle(self, process: ArrivalProcess):
        clone = pickle.loads(pickle.dumps(process))
        assert clone == process
        a = process.intervals(10, derive_rng(1, "p"))
        b = clone.intervals(10, derive_rng(1, "p"))
        assert (a == b).all()

    def test_arrival_times_cumulate_from_start(self, process: ArrivalProcess):
        times = process.arrival_times(20, derive_rng(5, "t"), start_ms=100.0)
        assert times[0] > 100.0
        assert (np.diff(times) > 0).all()

    def test_mean_interval_matches_empirical(self, process: ArrivalProcess):
        empirical = float(np.mean(process.intervals(4000, derive_rng(17, "mean"))))
        assert empirical == pytest.approx(process.mean_interval_ms, rel=0.15)

    def test_mean_rate_is_reciprocal(self, process: ArrivalProcess):
        assert process.mean_rate_per_s == pytest.approx(1000.0 / process.mean_interval_ms)


class TestAzureIntervalProcess:
    def test_byte_identical_to_paper_generator(self):
        """The default process IS the pre-scenario code path."""
        process = AzureIntervalProcess(NORMAL_INTERVALS)
        a = process.intervals(200, derive_rng(42, "workload", "moderate-normal"))
        b = generate_intervals(200, NORMAL_INTERVALS, derive_rng(42, "workload", "moderate-normal"))
        assert (a == b).all()

    def test_burstiness_forwarded(self):
        process = AzureIntervalProcess(NORMAL_INTERVALS, burstiness=0.5)
        a = process.intervals(100, derive_rng(4, "b"))
        b = generate_intervals(100, NORMAL_INTERVALS, derive_rng(4, "b"), burstiness=0.5)
        assert (a == b).all()

    def test_rejects_out_of_range_burstiness(self):
        with pytest.raises(ValueError, match="burstiness"):
            AzureIntervalProcess(NORMAL_INTERVALS, burstiness=1.5)


class TestPoissonProcess:
    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError, match="rate_per_s"):
            PoissonProcess(rate_per_s=0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="rate_per_s"):
            PoissonProcess(rate_per_s=-3.0)

    def test_exponential_shape(self):
        intervals = PoissonProcess(rate_per_s=50.0).intervals(5000, derive_rng(2, "p"))
        # Exponential: std == mean; a uniform would have std ~ 0.29 * width.
        assert float(np.std(intervals)) == pytest.approx(float(np.mean(intervals)), rel=0.1)


class TestOnOffBurstProcess:
    def test_zero_rates_rejected(self):
        with pytest.raises(ValueError, match="burst_rate_per_s"):
            OnOffBurstProcess(0.0, 10.0, 100.0, 100.0)
        with pytest.raises(ValueError, match="base_rate_per_s"):
            OnOffBurstProcess(50.0, 0.0, 100.0, 100.0)

    def test_zero_dwell_rejected(self):
        with pytest.raises(ValueError, match="mean_burst_ms"):
            OnOffBurstProcess(50.0, 10.0, 0.0, 100.0)
        with pytest.raises(ValueError, match="mean_gap_ms"):
            OnOffBurstProcess(50.0, 10.0, 100.0, 0.0)

    def test_burst_rate_must_dominate(self):
        with pytest.raises(ValueError, match="must be >="):
            OnOffBurstProcess(10.0, 50.0, 100.0, 100.0)

    def test_is_actually_bursty(self):
        """Interval dispersion well above a plain Poisson's (CV > 1)."""
        process = OnOffBurstProcess(
            burst_rate_per_s=200.0, base_rate_per_s=5.0, mean_burst_ms=200.0, mean_gap_ms=800.0
        )
        intervals = process.intervals(4000, derive_rng(6, "burst"))
        cv = float(np.std(intervals) / np.mean(intervals))
        assert cv > 1.3

    def test_mean_rate_time_weighted(self):
        process = OnOffBurstProcess(
            burst_rate_per_s=100.0, base_rate_per_s=20.0, mean_burst_ms=100.0, mean_gap_ms=300.0
        )
        # (100*100 + 20*300) / 400 = 40 req/s.
        assert process.mean_rate_per_s == pytest.approx(40.0)


class TestDiurnalProcess:
    def test_amplitude_one_rejected(self):
        """amplitude == 1 would allow a zero-rate trough (stalls thinning)."""
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalProcess(base_rate_per_s=40.0, amplitude=1.0)

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalProcess(base_rate_per_s=40.0, amplitude=-0.1)

    def test_zero_base_rate_rejected(self):
        with pytest.raises(ValueError, match="base_rate_per_s"):
            DiurnalProcess(base_rate_per_s=0.0)

    def test_rate_oscillates_around_base(self):
        process = DiurnalProcess(base_rate_per_s=40.0, amplitude=0.5, period_ms=1000.0)
        assert process.rate_per_s_at(250.0) == pytest.approx(60.0)  # peak
        assert process.rate_per_s_at(750.0) == pytest.approx(20.0)  # trough
        assert process.rate_per_s_at(0.0) == pytest.approx(40.0)

    def test_zero_amplitude_reduces_to_poisson_mean(self):
        flat = DiurnalProcess(base_rate_per_s=40.0, amplitude=0.0)
        intervals = flat.intervals(3000, derive_rng(8, "flat"))
        assert float(np.mean(intervals)) == pytest.approx(25.0, rel=0.1)


class TestTraceReplayProcess:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TraceReplayProcess(intervals_ms=())

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError, match="> 0"):
            TraceReplayProcess(intervals_ms=(10.0, 0.0, 5.0))

    def test_exhausted_trace_raises(self):
        process = TraceReplayProcess(intervals_ms=(10.0, 20.0))
        with pytest.raises(TraceExhaustedError, match="holds 2 intervals but 5"):
            process.intervals(5, derive_rng(1, "t"))

    def test_loop_wraps_around(self):
        process = TraceReplayProcess(intervals_ms=(10.0, 20.0, 30.0), loop=True)
        intervals = process.intervals(7, derive_rng(1, "t"))
        assert intervals.tolist() == [10.0, 20.0, 30.0, 10.0, 20.0, 30.0, 10.0]

    def test_exact_length_without_loop(self):
        process = TraceReplayProcess(intervals_ms=(10.0, 20.0))
        assert process.intervals(2, derive_rng(1, "t")).tolist() == [10.0, 20.0]

    def test_from_csv_with_header(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("interval_ms\n5.0\n7.5\n2.5\n")
        process = TraceReplayProcess.from_csv(path)
        assert process.intervals_ms == (5.0, 7.5, 2.5)

    def test_from_csv_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            TraceReplayProcess.from_csv(path)

    def test_from_csv_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("interval_ms\n")
        with pytest.raises(ValueError, match="empty"):
            TraceReplayProcess.from_csv(path)

    def test_from_csv_non_numeric_mid_file_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("5.0\noops\n7.0\n")
        with pytest.raises(ValueError, match="non-numeric"):
            TraceReplayProcess.from_csv(path)

    def test_from_csv_ragged_row_named_in_error(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("interval_ms,count\n10.0,1\n12.0\n")
        with pytest.raises(ValueError, match="no column 1"):
            TraceReplayProcess.from_csv(path, column=1)

    def test_from_csv_timestamps_differenced(self, tmp_path):
        path = tmp_path / "stamps.csv"
        path.write_text("t_ms\n10.0\n30.0\n60.0\n")
        process = TraceReplayProcess.from_csv(path, kind="timestamps")
        assert process.intervals_ms == (10.0, 20.0, 30.0)

    def test_from_csv_non_monotone_timestamps_rejected(self, tmp_path):
        path = tmp_path / "stamps.csv"
        path.write_text("10.0\n5.0\n")
        with pytest.raises(ValueError, match="strictly increasing"):
            TraceReplayProcess.from_csv(path, kind="timestamps")

    def test_from_csv_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="kind"):
            TraceReplayProcess.from_csv(tmp_path / "x.csv", kind="nonsense")

    def test_bundled_sample_trace_loads(self):
        from repro.workloads.scenarios import SAMPLE_TRACE_PATH

        process = TraceReplayProcess.from_csv(SAMPLE_TRACE_PATH, loop=True)
        assert len(process.intervals_ms) >= 32
        assert all(iv > 0 for iv in process.intervals_ms)
