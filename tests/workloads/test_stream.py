"""Tests for lazy request streams and streaming arrival intervals."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.utils.rng import derive_rng
from repro.workloads.applications import build_paper_applications
from repro.workloads.arrival import (
    AzureIntervalProcess,
    DiurnalProcess,
    OnOffBurstProcess,
    PoissonProcess,
    TraceExhaustedError,
    TraceFileReplayProcess,
    TraceReplayProcess,
    iter_trace_intervals,
)
from repro.workloads.generator import MODERATE_NORMAL, RELAXED_HEAVY, WorkloadGenerator
from repro.workloads.traces import NORMAL_INTERVALS


def make_generator(small_store, *, arrival=None, seed=17, label="stream", **kwargs):
    return WorkloadGenerator(
        applications=build_paper_applications(),
        setting=MODERATE_NORMAL,
        profile_store=small_store,
        rng=derive_rng(seed, label),
        arrival=arrival,
        **kwargs,
    )


#: Every streaming-capable arrival process, exercised by the exactness and
#: stream-equivalence tests below.
STREAMABLE_PROCESSES = {
    "azure": AzureIntervalProcess(NORMAL_INTERVALS),
    "poisson": PoissonProcess(rate_per_s=40.0),
    "onoff": OnOffBurstProcess(
        burst_rate_per_s=100.0,
        base_rate_per_s=5.0,
        mean_burst_ms=400.0,
        mean_gap_ms=600.0,
    ),
    "diurnal": DiurnalProcess(base_rate_per_s=40.0, amplitude=0.6, period_ms=4000.0),
    "trace-loop": TraceReplayProcess(intervals_ms=(12.0, 30.0, 18.0, 45.0), loop=True),
}


class TestIntervalStream:
    """interval_stream must match the bulk intervals() draws value-for-value."""

    @pytest.mark.parametrize("name", sorted(STREAMABLE_PROCESSES))
    def test_stream_matches_bulk_draws(self, name):
        process = STREAMABLE_PROCESSES[name]
        bulk = process.intervals(50, derive_rng(9, "ivs", name))
        stream = process.interval_stream(derive_rng(9, "ivs", name))
        lazy = np.array([next(stream) for _ in range(50)])
        assert np.array_equal(bulk, lazy)

    def test_nonlooping_trace_stream_ends(self):
        process = TraceReplayProcess(intervals_ms=(5.0, 7.0), loop=False)
        assert list(process.interval_stream(derive_rng(1, "t"))) == [5.0, 7.0]

    def test_bursty_azure_cannot_stream(self):
        process = AzureIntervalProcess(NORMAL_INTERVALS, burstiness=0.5)
        with pytest.raises(ValueError, match="burstiness"):
            process.interval_stream(derive_rng(1, "b"))


class TestCountRequestStream:
    def test_byte_identical_to_generate(self, small_store):
        eager = make_generator(small_store).generate(60)
        lazy = list(make_generator(small_store).stream(60))
        assert len(lazy) == 60
        for request, (arrival_ms, streamed) in zip(eager, lazy):
            assert arrival_ms == streamed.arrival_ms
            assert streamed.request_id == request.request_id
            assert streamed.arrival_ms == request.arrival_ms
            assert streamed.app_name == request.app_name
            assert streamed.slo_ms == request.slo_ms

    def test_materialize_equals_generate_with_weights_and_process(self, small_store):
        kwargs = dict(
            arrival=PoissonProcess(rate_per_s=50.0), app_weights=(4.0, 1.0, 1.0, 2.0)
        )
        eager = make_generator(small_store, **kwargs).generate(40)
        lazy = make_generator(small_store, **kwargs).stream(40).materialize()
        assert [(r.arrival_ms, r.app_name) for r in eager] == [
            (r.arrival_ms, r.app_name) for r in lazy
        ]

    def test_reiteration_yields_fresh_equal_requests(self, small_store):
        stream = make_generator(small_store).stream(10)
        first = [r for _, r in stream]
        second = [r for _, r in stream]
        assert [(a.request_id, a.arrival_ms, a.app_name) for a in first] == [
            (b.request_id, b.arrival_ms, b.app_name) for b in second
        ]
        # Fresh objects each pass: requests carry mutable runtime state and
        # must never be shared across simulation runs.
        assert all(a is not b for a, b in zip(first, second))

    def test_len(self, small_store):
        assert len(make_generator(small_store).stream(25)) == 25

    def test_workflows_first_appearance_order(self, small_store):
        eager = make_generator(small_store).generate(60)
        expected: dict[str, object] = {}
        for request in eager:
            expected.setdefault(request.app_name, request.workflow)
        workflows = make_generator(small_store).stream(60).workflows()
        assert list(workflows) == list(expected)

    def test_workflows_with_factory_raises(self, small_store):
        generator = make_generator(small_store, workflow_factory=lambda wf: wf)
        stream = generator.stream(5)
        with pytest.raises(ValueError, match="workflow_factory"):
            stream.workflows()

    def test_nonlooping_trace_too_short_raises(self, small_store):
        generator = make_generator(
            small_store, arrival=TraceReplayProcess(intervals_ms=(10.0, 10.0), loop=False)
        )
        with pytest.raises(TraceExhaustedError):
            generator.stream(5)

    def test_rejects_nonpositive_count(self, small_store):
        with pytest.raises(ValueError):
            make_generator(small_store).stream(0)


class TestDurationRequestStream:
    """The exact duration-coverage guarantee, per arrival process."""

    @pytest.mark.parametrize("name", sorted(STREAMABLE_PROCESSES))
    def test_covers_the_window_exactly(self, small_store, name):
        process = STREAMABLE_PROCESSES[name]
        duration_ms = 2_000.0
        requests = make_generator(small_store, arrival=process, label=name).generate_for_duration(
            duration_ms
        )
        assert requests
        assert all(r.arrival_ms <= duration_ms for r in requests)
        assert [r.request_id for r in requests] == list(range(len(requests)))
        # Exactness: replaying the same interval draws (the interval RNG
        # stream is interleaved with one app pick per request, so replay
        # mirrors that) shows the *next* arrival would exceed the window.
        replay_rng = derive_rng(17, name)
        intervals = process.interval_stream(replay_rng)
        clock, count = 0.0, 0
        while True:
            clock += next(intervals)
            if clock > duration_ms:
                break
            count += 1
            replay_rng.choice(4)  # consume the interleaved app pick
        assert count == len(requests)
        assert clock > duration_ms
        assert requests[-1].arrival_ms < clock

    def test_exact_counts_on_a_literal_trace(self, small_store):
        generator = make_generator(
            small_store,
            arrival=TraceReplayProcess(intervals_ms=(10.0, 20.0), loop=True),
        )
        requests = generator.generate_for_duration(95.0)
        # Arrivals at 10, 30, 40, 60, 70, 90; the next (100) exceeds 95.
        assert [r.arrival_ms for r in requests] == [10.0, 30.0, 40.0, 60.0, 70.0, 90.0]

    def test_bursty_under_generation_is_fixed(self, small_store):
        """The historical 1.3x mean-rate estimate silently truncated windows
        whose realised short-term rate beats the long-run mean (a window
        inside one long burst); exact generation covers them."""
        process = OnOffBurstProcess(
            burst_rate_per_s=100.0,
            base_rate_per_s=1.0,
            mean_burst_ms=20_000.0,
            mean_gap_ms=20_000.0,
        )
        duration_ms = 5_000.0
        old_estimate = max(1, int(duration_ms / process.mean_interval_ms * 1.3) + 8)
        requests = make_generator(small_store, arrival=process).generate_for_duration(duration_ms)
        assert len(requests) > old_estimate
        # At ~100 req/s the last covered arrival sits within a few mean
        # intervals of the bound — the old path stopped seconds short.
        assert requests[-1].arrival_ms > duration_ms - 200.0

    def test_nonlooping_trace_exhausting_mid_stream_raises(self, small_store):
        generator = make_generator(
            small_store,
            arrival=TraceReplayProcess(intervals_ms=(10.0,) * 20, loop=False),
        )
        with pytest.raises(TraceExhaustedError, match="before covering"):
            generator.generate_for_duration(1_000.0)

    def test_nonlooping_trace_covering_the_window_is_fine(self, small_store):
        generator = make_generator(
            small_store,
            arrival=TraceReplayProcess(intervals_ms=(10.0,) * 20, loop=False),
        )
        requests = generator.generate_for_duration(95.0)
        assert [r.arrival_ms for r in requests] == [float(t) for t in range(10, 100, 10)]

    def test_stream_equals_generate_for_duration(self, small_store):
        eager = make_generator(small_store, seed=23).generate_for_duration(1_500.0)
        lazy = make_generator(small_store, seed=23).stream_for_duration(1_500.0).materialize()
        assert [(r.arrival_ms, r.app_name, r.slo_ms) for r in eager] == [
            (r.arrival_ms, r.app_name, r.slo_ms) for r in lazy
        ]

    def test_second_iteration_raises(self, small_store):
        stream = make_generator(small_store).stream_for_duration(300.0)
        stream.materialize()
        with pytest.raises(RuntimeError, match="already iterated"):
            iter(stream).__next__()

    def test_workflows_declares_all_applications(self, small_store):
        stream = make_generator(small_store).stream_for_duration(300.0)
        assert list(stream.workflows()) == [wf.name for wf in build_paper_applications()]

    def test_app_weights_respected(self, small_store):
        generator = make_generator(small_store, app_weights=(1.0, 0.0, 0.0, 0.0))
        requests = generator.generate_for_duration(1_000.0)
        assert {r.app_name for r in requests} == {"image_classification"}


class TestTraceFileReplayProcess:
    def write_trace(self, tmp_path, name, lines):
        path = tmp_path / name
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_matches_inline_trace(self, tmp_path):
        path = self.write_trace(tmp_path, "t.csv", ["interval_ms", "12.5", "30.0", "18.25"])
        inline = TraceReplayProcess.from_csv(path)
        lazy = TraceFileReplayProcess(path=str(path))
        rng = derive_rng(1, "file")
        assert np.array_equal(inline.intervals(3, rng), lazy.intervals(3, rng))
        assert lazy.mean_interval_ms == inline.mean_interval_ms
        assert list(lazy.interval_stream(rng)) == list(inline.intervals_ms)

    def test_loop_wraps_and_timestamps_difference(self, tmp_path):
        path = self.write_trace(tmp_path, "ts.csv", ["t", "10", "25", "60"])
        inline = TraceReplayProcess.from_csv(path, kind="timestamps", loop=True)
        lazy = TraceFileReplayProcess(path=str(path), kind="timestamps", loop=True)
        rng = derive_rng(2, "file")
        assert np.array_equal(inline.intervals(8, rng), lazy.intervals(8, rng))

    def test_exhaustion_raises_trace_error(self, tmp_path):
        path = self.write_trace(tmp_path, "short.csv", ["5.0", "6.0"])
        lazy = TraceFileReplayProcess(path=str(path))
        with pytest.raises(TraceExhaustedError, match="loop=True"):
            lazy.intervals(3, derive_rng(3, "file"))

    def test_missing_file_rejected_at_construction(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceFileReplayProcess(path=str(tmp_path / "nope.csv"))

    def test_empty_trace_raises_even_when_looping(self, tmp_path):
        path = self.write_trace(tmp_path, "empty.csv", ["header_only"])
        with pytest.raises(ValueError, match="empty"):
            list(iter_trace_intervals(path, loop=True))

    def test_nonpositive_interval_rejected(self, tmp_path):
        path = self.write_trace(tmp_path, "bad.csv", ["5.0", "-1.0"])
        with pytest.raises(ValueError, match="> 0 ms"):
            list(iter_trace_intervals(path))

    def test_decreasing_timestamps_rejected(self, tmp_path):
        path = self.write_trace(tmp_path, "dec.csv", ["10", "9"])
        with pytest.raises(ValueError, match="strictly increasing"):
            list(iter_trace_intervals(path, kind="timestamps"))

    def test_pickles_by_path(self, tmp_path):
        path = self.write_trace(tmp_path, "p.csv", ["4.0", "8.0"])
        process = TraceFileReplayProcess(path=str(path), loop=True)
        clone = pickle.loads(pickle.dumps(process))
        rng = derive_rng(4, "file")
        assert np.array_equal(process.intervals(5, rng), clone.intervals(5, derive_rng(4, "file")))

    def test_duration_stream_over_file_trace(self, small_store, tmp_path):
        path = self.write_trace(tmp_path, "d.csv", ["10.0", "20.0"])
        generator = make_generator(
            small_store, arrival=TraceFileReplayProcess(path=str(path), loop=True)
        )
        requests = generator.generate_for_duration(95.0)
        assert [r.arrival_ms for r in requests] == [10.0, 30.0, 40.0, 60.0, 70.0, 90.0]


class TestStreamSettingVariants:
    """Count streams stay byte-identical under the paper's other settings."""

    def test_relaxed_heavy_parity(self, small_store):
        def build():
            return WorkloadGenerator(
                applications=build_paper_applications(),
                setting=RELAXED_HEAVY,
                profile_store=small_store,
                rng=derive_rng(99, "heavy"),
            )

        eager = build().generate(30)
        lazy = build().stream(30).materialize()
        assert [(r.arrival_ms, r.app_name) for r in eager] == [
            (r.arrival_ms, r.app_name) for r in lazy
        ]

    def test_burstiness_count_mode_still_works(self, small_store):
        """Count streams use bulk draws, so the batch-length burstiness
        envelope remains available (only open-ended streaming rejects it)."""

        def build():
            return make_generator(small_store, burstiness=0.4)

        eager = build().generate(30)
        lazy = build().stream(30).materialize()
        assert [r.arrival_ms for r in eager] == [r.arrival_ms for r in lazy]

    def test_duration_stream_with_burstiness_raises(self, small_store):
        generator = make_generator(small_store, burstiness=0.4)
        with pytest.raises(ValueError, match="burstiness"):
            generator.generate_for_duration(500.0)
