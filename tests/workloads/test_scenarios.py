"""Tests for the scenario registry and scenario-built workloads."""

from __future__ import annotations

import pickle

import pytest

from repro.utils.rng import derive_rng
from repro.workloads.applications import build_application, register_application
from repro.workloads.arrival import PoissonProcess
from repro.workloads.dag import Workflow
from repro.workloads.generator import WORKLOAD_SETTINGS, WorkloadGenerator
from repro.workloads.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioRegistry,
    get_scenario,
    scenario_names,
)
from repro.workloads.applications import build_paper_applications


class TestRegistry:
    def test_builtin_registry_has_at_least_six_scenarios(self):
        assert len(SCENARIOS) >= 6

    def test_paper_scenarios_cover_all_settings(self):
        for setting in WORKLOAD_SETTINGS:
            scenario = get_scenario(f"paper-{setting}")
            assert scenario.setting == setting
            assert scenario.arrival is None
            assert scenario.stream == setting

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="paper-moderate-normal"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        scenario = Scenario(name="dup", description="d", setting="moderate-normal")
        registry.register(scenario)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(scenario)
        registry.register(scenario.with_overrides(description="d2"), replace=True)
        assert registry.get("dup").description == "d2"

    def test_contains_and_iter(self):
        assert "paper-strict-light" in SCENARIOS
        assert "nope" not in SCENARIOS
        assert {s.name for s in SCENARIOS} == set(scenario_names())


class TestScenarioValidation:
    def test_unknown_setting_rejected(self):
        with pytest.raises(KeyError, match="unknown workload setting"):
            Scenario(name="x", description="d", setting="nope")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Scenario(name="", description="d", setting="moderate-normal")

    def test_empty_applications_rejected(self):
        with pytest.raises(ValueError, match="applications"):
            Scenario(name="x", description="d", setting="moderate-normal", applications=())

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon_ms"):
            Scenario(name="x", description="d", setting="moderate-normal", horizon_ms=0.0)

    def test_mismatched_app_weights_rejected(self):
        with pytest.raises(ValueError, match="one weight per application"):
            Scenario(
                name="x",
                description="d",
                setting="moderate-normal",
                applications=("vision_diamond", "single_stage_classification"),
                app_weights=(1.0,),
            )
        # None applications means the four paper apps.
        with pytest.raises(ValueError, match="one weight per application"):
            Scenario(name="x", description="d", setting="moderate-normal", app_weights=(1.0,))

    def test_negative_or_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Scenario(
                name="x",
                description="d",
                setting="moderate-normal",
                applications=("vision_diamond",),
                app_weights=(-1.0,),
            )
        with pytest.raises(ValueError, match="not all be zero"):
            Scenario(
                name="x",
                description="d",
                setting="moderate-normal",
                applications=("vision_diamond",),
                app_weights=(0.0,),
            )

    def test_nonpositive_num_requests_rejected(self):
        with pytest.raises(ValueError, match="num_requests"):
            Scenario(name="x", description="d", setting="moderate-normal", num_requests=0)

    def test_scenarios_pickle(self):
        for scenario in SCENARIOS:
            assert pickle.loads(pickle.dumps(scenario)) == scenario


class TestScenarioWorkloads:
    def test_paper_scenario_requests_byte_identical_to_legacy_builder(self, small_store):
        """The acceptance check: paper-default == pre-scenario code path."""
        scenario = get_scenario("paper-moderate-normal")
        via_scenario = scenario.build_requests(30, 42, small_store)

        legacy = WorkloadGenerator(
            applications=build_paper_applications(),
            setting=WORKLOAD_SETTINGS["moderate-normal"],
            profile_store=small_store,
            rng=derive_rng(42, "workload", "moderate-normal"),
        ).generate(30)

        assert len(via_scenario) == len(legacy)
        for a, b in zip(via_scenario, legacy):
            assert a.arrival_ms == b.arrival_ms
            assert a.slo_ms == b.slo_ms
            assert a.app_name == b.app_name

    def test_build_requests_deterministic(self, small_store):
        scenario = get_scenario("bursty-onoff-heavy")
        a = scenario.build_requests(20, 7, small_store)
        b = scenario.build_requests(20, 7, small_store)
        assert [r.arrival_ms for r in a] == [r.arrival_ms for r in b]
        assert [r.app_name for r in a] == [r.app_name for r in b]

    def test_distinct_streams_for_distinct_scenarios(self, small_store):
        a = get_scenario("poisson-normal").build_requests(20, 7, small_store)
        b = get_scenario("diurnal-normal").build_requests(20, 7, small_store)
        assert [r.arrival_ms for r in a] != [r.arrival_ms for r in b]

    def test_mixed_dag_scenario_uses_registered_applications(self, small_store):
        scenario = get_scenario("mixed-dags-normal")
        requests = scenario.build_requests(60, 5, small_store)
        seen = {r.app_name for r in requests}
        assert seen <= set(scenario.applications)
        # The heavily weighted non-paper DAGs actually dominate the mix.
        non_paper = sum(
            r.app_name in ("vision_diamond", "single_stage_classification") for r in requests
        )
        assert non_paper > len(requests) / 2

    def test_trace_scenario_generates(self, small_store):
        requests = get_scenario("trace-replay-azure").build_requests(60, 3, small_store)
        assert len(requests) == 60
        arrivals = [r.arrival_ms for r in requests]
        assert arrivals == sorted(arrivals)

    def test_custom_application_registration_roundtrip(self, small_store):
        register_application(
            "test_only_linear",
            lambda: Workflow.linear("test_only_linear", ["deblur", "classification"]),
            replace=True,
        )
        assert build_application("test_only_linear").num_stages == 2
        scenario = Scenario(
            name="test-custom-app",
            description="t",
            setting="moderate-normal",
            applications=("test_only_linear",),
            arrival=PoissonProcess(rate_per_s=30.0),
        )
        requests = scenario.build_requests(10, 1, small_store)
        assert {r.app_name for r in requests} == {"test_only_linear"}

    def test_unknown_application_name_fails_with_catalogue(self):
        scenario = Scenario(
            name="test-bad-app",
            description="t",
            setting="moderate-normal",
            applications=("no_such_app",),
        )
        with pytest.raises(KeyError, match="unknown application"):
            scenario.build_applications()

    def test_duplicate_application_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_application("image_classification", lambda: None)
