"""Tests for request / job runtime records."""

from __future__ import annotations

import pytest

from repro.workloads.applications import image_classification
from repro.workloads.request import Job, Request


@pytest.fixture()
def request_obj() -> Request:
    return Request(request_id=1, workflow=image_classification(), arrival_ms=100.0, slo_ms=500.0)


class TestRequest:
    def test_deadline_and_budget(self, request_obj):
        assert request_obj.deadline_ms == 600.0
        assert request_obj.remaining_budget_ms(400.0) == 200.0
        assert request_obj.remaining_budget_ms(700.0) == -100.0

    def test_invalid_parameters_rejected(self):
        wf = image_classification()
        with pytest.raises(ValueError):
            Request(request_id=1, workflow=wf, arrival_ms=-1.0, slo_ms=100.0)
        with pytest.raises(ValueError):
            Request(request_id=1, workflow=wf, arrival_ms=0.0, slo_ms=0.0)

    def test_stage_completion_progression(self, request_obj):
        assert not request_obj.is_complete
        assert request_obj.stage_is_ready("s1")
        assert not request_obj.stage_is_ready("s2")

        request_obj.record_stage_completion("s1", 200.0, invoker_id=3)
        assert request_obj.stage_is_ready("s2")
        assert request_obj.remaining_stage_ids() == ["s2", "s3"]
        assert not request_obj.is_complete

        request_obj.record_stage_completion("s2", 300.0, invoker_id=4)
        request_obj.record_stage_completion("s3", 450.0, invoker_id=4)
        assert request_obj.is_complete
        assert request_obj.completed_ms == 450.0
        assert request_obj.latency_ms == 350.0
        assert request_obj.slo_hit is True

    def test_slo_miss(self, request_obj):
        request_obj.record_stage_completion("s1", 200.0, invoker_id=0)
        request_obj.record_stage_completion("s2", 500.0, invoker_id=0)
        request_obj.record_stage_completion("s3", 700.0, invoker_id=0)
        assert request_obj.slo_hit is False

    def test_slo_hit_none_while_running(self, request_obj):
        assert request_obj.slo_hit is None
        assert request_obj.latency_ms is None

    def test_double_completion_rejected(self, request_obj):
        request_obj.record_stage_completion("s1", 200.0, invoker_id=0)
        with pytest.raises(ValueError):
            request_obj.record_stage_completion("s1", 250.0, invoker_id=0)

    def test_unknown_stage_rejected(self, request_obj):
        with pytest.raises(KeyError):
            request_obj.record_stage_completion("zzz", 200.0, invoker_id=0)

    def test_predecessor_invoker(self, request_obj):
        assert request_obj.predecessor_invoker("s1") is None
        request_obj.record_stage_completion("s1", 200.0, invoker_id=7)
        assert request_obj.predecessor_invoker("s2") == 7


class TestJob:
    def test_function_and_app_names(self, request_obj):
        job = Job(request=request_obj, stage_id="s2", ready_ms=150.0)
        assert job.function_name == "segmentation"
        assert job.app_name == "image_classification"

    def test_waiting_time_non_negative(self, request_obj):
        job = Job(request=request_obj, stage_id="s1", ready_ms=150.0)
        assert job.waiting_ms(100.0) == 0.0
        assert job.waiting_ms(200.0) == 50.0

    def test_remaining_budget_delegates_to_request(self, request_obj):
        job = Job(request=request_obj, stage_id="s1", ready_ms=150.0)
        assert job.remaining_budget_ms(300.0) == request_obj.remaining_budget_ms(300.0)

    def test_unknown_stage_rejected(self, request_obj):
        with pytest.raises(KeyError):
            Job(request=request_obj, stage_id="zzz", ready_ms=0.0)

    def test_negative_ready_time_rejected(self, request_obj):
        with pytest.raises(ValueError):
            Job(request=request_obj, stage_id="s1", ready_ms=-5.0)
