"""Tests for the deterministic random-stream helpers."""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np

from repro.utils.rng import RngFactory, derive_rng


class TestDeriveRng:
    def test_same_seed_and_names_give_identical_streams(self):
        a = derive_rng(42, "workload").random(10)
        b = derive_rng(42, "workload").random(10)
        assert np.array_equal(a, b)

    def test_different_names_give_different_streams(self):
        a = derive_rng(42, "workload").random(10)
        b = derive_rng(42, "noise").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_give_different_streams(self):
        a = derive_rng(1, "workload").random(10)
        b = derive_rng(2, "workload").random(10)
        assert not np.array_equal(a, b)

    def test_multiple_name_components(self):
        a = derive_rng(7, "a", "b").random(5)
        b = derive_rng(7, "a", "c").random(5)
        assert not np.array_equal(a, b)

    def test_streams_identical_across_interpreter_invocations(self):
        """Regression: label hashing must not depend on PYTHONHASHSEED.

        The builtin ``hash()`` is salted per process; deriving entropy from
        it made "reproducible" streams differ between interpreter
        invocations (and between a parent and spawned pool workers).
        """
        script = (
            "from repro.utils.rng import derive_rng; "
            "print(repr(list(derive_rng(42, 'workload', 'strict-light').random(4))))"
        )
        outputs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            outputs.append(
                subprocess.run(
                    [sys.executable, "-c", script],
                    env=env,
                    capture_output=True,
                    text=True,
                    check=True,
                ).stdout
            )
        assert outputs[0] == outputs[1]


class TestRngFactory:
    def test_get_caches_streams(self):
        factory = RngFactory(seed=3)
        assert factory.get("x") is factory.get("x")

    def test_get_different_names_independent(self):
        factory = RngFactory(seed=3)
        a = factory.get("a").random(4)
        b = factory.get("b").random(4)
        assert not np.array_equal(a, b)

    def test_reset_restarts_streams(self):
        factory = RngFactory(seed=5)
        first = factory.get("s").random(3)
        factory.reset()
        second = factory.get("s").random(3)
        assert np.array_equal(first, second)

    def test_spawn_is_deterministic(self):
        child1 = RngFactory(seed=11).spawn("worker")
        child2 = RngFactory(seed=11).spawn("worker")
        assert child1.seed == child2.seed
        assert child1.seed != 11
