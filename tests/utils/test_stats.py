"""Tests for streaming statistics and summaries."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import EWMA, RunningStats, percentile, summarize


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestEWMA:
    def test_first_sample_is_value(self):
        ewma = EWMA(alpha=0.5)
        assert ewma.update(10.0) == 10.0

    def test_update_moves_towards_new_sample(self):
        ewma = EWMA(alpha=0.5)
        ewma.update(10.0)
        assert ewma.update(20.0) == pytest.approx(15.0)

    def test_alpha_one_tracks_last_sample(self):
        ewma = EWMA(alpha=1.0)
        ewma.update(3.0)
        ewma.update(8.0)
        assert ewma.value == 8.0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            EWMA(alpha=0.0)
        with pytest.raises(ValueError):
            EWMA(alpha=1.5)

    def test_count_tracks_samples(self):
        ewma = EWMA()
        for i in range(5):
            ewma.update(float(i))
        assert ewma.count == 5

    def test_value_none_before_updates(self):
        assert EWMA().value is None


class TestRunningStats:
    def test_matches_numpy_mean_and_std(self, rng):
        samples = rng.normal(5.0, 2.0, size=200)
        stats = RunningStats()
        stats.update_many(samples)
        assert stats.mean == pytest.approx(float(np.mean(samples)))
        assert stats.std == pytest.approx(float(np.std(samples, ddof=1)))
        assert stats.min == pytest.approx(float(samples.min()))
        assert stats.max == pytest.approx(float(samples.max()))

    def test_variance_zero_with_single_sample(self):
        stats = RunningStats()
        stats.update(4.2)
        assert stats.variance == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_welford_agrees_with_numpy(self, values):
        stats = RunningStats()
        stats.update_many(values)
        assert stats.count == len(values)
        assert math.isclose(stats.mean, float(np.mean(values)), rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(
            stats.variance, float(np.var(values, ddof=1)), rel_tol=1e-6, abs_tol=1e-3
        )


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)

    def test_single_value_has_zero_std(self):
        summary = summarize([7.0])
        assert summary.std == 0.0
        assert summary.mean == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_round_trip(self):
        summary = summarize([1.0, 5.0, 9.0])
        data = summary.as_dict()
        assert data["count"] == 3
        assert data["max"] == 9.0
        assert set(data) == {"count", "mean", "std", "min", "p25", "median", "p75", "p95", "max"}
