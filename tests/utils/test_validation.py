"""Tests for the argument-validation helpers."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_positive_int,
)


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            ensure_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_positive(-1.0, "x")


class TestEnsurePositiveInt:
    def test_accepts_positive_int(self):
        assert ensure_positive_int(3, "n") == 3

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            ensure_positive_int(0, "n")
        with pytest.raises(ValueError):
            ensure_positive_int(-2, "n")

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            ensure_positive_int(True, "n")
        with pytest.raises(TypeError):
            ensure_positive_int(2.0, "n")


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert ensure_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_non_negative(-0.1, "x")


class TestEnsureInRange:
    def test_accepts_bounds(self):
        assert ensure_in_range(0.0, 0.0, 1.0, "f") == 0.0
        assert ensure_in_range(1.0, 0.0, 1.0, "f") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            ensure_in_range(1.5, 0.0, 1.0, "f")
        with pytest.raises(ValueError):
            ensure_in_range(-0.5, 0.0, 1.0, "f")
