"""Tests for the locality-first ESG_Dispatch node selection."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.core.dispatch import locality_first_invoker
from repro.profiles.configuration import Configuration


@pytest.fixture()
def cluster() -> ClusterState:
    return ClusterState(config=ClusterConfig(num_invokers=4))


CFG = Configuration(1, 2, 1)
APP = "image_classification"
FN = "segmentation"


class TestLocalityOrder:
    def test_prefers_predecessor_with_resident_function(self, cluster):
        cluster.invoker(2).create_warm_container(FN, 0.0)
        chosen = locality_first_invoker(cluster, APP, FN, CFG, 0.0, predecessor_invoker_id=2)
        assert chosen == 2

    def test_prefers_warm_node_over_cold_predecessor(self, cluster):
        """A cold start is orders of magnitude worse than a remote transfer."""
        cluster.invoker(3).create_warm_container(FN, 0.0)
        chosen = locality_first_invoker(cluster, APP, FN, CFG, 0.0, predecessor_invoker_id=1)
        assert chosen == 3

    def test_home_invoker_used_for_source_stages(self, cluster):
        home = cluster.home_invoker_id(APP, FN)
        cluster.invoker(home).create_warm_container(FN, 0.0)
        chosen = locality_first_invoker(cluster, APP, FN, CFG, 0.0, predecessor_invoker_id=None)
        assert chosen == home

    def test_predecessor_without_capacity_is_skipped(self, cluster):
        cluster.invoker(1).create_warm_container(FN, 0.0)
        cluster.invoker(1).reserve(Configuration(1, 16, 7))
        cluster.invoker(2).create_warm_container(FN, 0.0)
        chosen = locality_first_invoker(cluster, APP, FN, CFG, 0.0, predecessor_invoker_id=1)
        assert chosen == 2

    def test_cold_fallback_picks_most_available_node(self, cluster):
        # No node is warm anywhere and nodes 0-2 cannot fit the config:
        # fall back to the only remaining node.
        cluster.invoker(0).reserve(Configuration(1, 15, 7))
        cluster.invoker(1).reserve(Configuration(1, 16, 7))
        cluster.invoker(2).reserve(Configuration(1, 15, 7))
        chosen = locality_first_invoker(cluster, APP, FN, CFG, 0.0, predecessor_invoker_id=None)
        assert chosen == 3

    def test_predecessor_kept_when_no_node_is_warm(self, cluster):
        chosen = locality_first_invoker(cluster, APP, FN, CFG, 0.0, predecessor_invoker_id=1)
        assert chosen == 1

    def test_returns_none_when_cluster_is_full(self, cluster):
        for invoker in cluster:
            invoker.reserve(Configuration(1, 16, 7))
        assert locality_first_invoker(cluster, APP, FN, CFG, 0.0) is None

    def test_warm_fallback_prefers_most_available(self, cluster):
        cluster.invoker(1).create_warm_container(FN, 0.0)
        cluster.invoker(2).create_warm_container(FN, 0.0)
        cluster.invoker(1).reserve(Configuration(1, 8, 4))
        home = cluster.home_invoker_id(APP, FN)
        chosen = locality_first_invoker(cluster, APP, FN, CFG, 0.0)
        # Unless the home node happens to be warm, the dispatcher must pick
        # the warm node with the most available resources (node 2).
        if home not in (1, 2):
            assert chosen == 2
