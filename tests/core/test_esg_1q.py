"""Tests for the ESG_1Q search, including the brute-force optimality oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import brute_force_search
from repro.core.esg_1q import StageSearchSpec, esg_1q_search
from repro.profiles.configuration import ConfigurationSpace
from repro.profiles.profiler import ProfileStore
from repro.workloads.applications import image_classification


def make_specs(store: ProfileStore, functions: list[str], *, max_batch=None) -> list[StageSearchSpec]:
    specs = []
    for i, fn in enumerate(functions):
        profile = store.profile(fn)
        specs.append(
            StageSearchSpec.from_profile(
                f"s{i+1}", profile, max_batch=max_batch if i == 0 else None
            )
        )
    return specs


IC_FUNCTIONS = ["super_resolution", "segmentation", "classification"]


class TestStageSearchSpec:
    def test_entries_sorted_by_latency(self, small_store):
        spec = StageSearchSpec.from_profile("s1", small_store.profile("deblur"))
        latencies = [e.latency_ms for e in spec.entries]
        assert latencies == sorted(latencies)

    def test_max_batch_filters_entries(self, small_store):
        spec = StageSearchSpec.from_profile("s1", small_store.profile("deblur"), max_batch=1)
        assert all(e.config.batch_size == 1 for e in spec.entries)

    def test_unsorted_entries_rejected(self, small_store):
        profile = small_store.profile("deblur")
        entries = tuple(reversed(profile.sorted_by_latency()))
        with pytest.raises(ValueError):
            StageSearchSpec(stage_id="s1", function_name="deblur", entries=entries)

    def test_empty_entries_rejected(self):
        with pytest.raises(ValueError):
            StageSearchSpec(stage_id="s1", function_name="deblur", entries=())

    def test_extreme_accessors(self, small_store):
        spec = StageSearchSpec.from_profile("s1", small_store.profile("segmentation"))
        assert spec.min_latency_ms == spec.fastest_entry.latency_ms
        assert spec.fastest_cost_cents == spec.fastest_entry.per_job_cost_cents
        assert spec.min_cost_cents <= spec.fastest_cost_cents


class TestSearchBasics:
    def test_feasible_search_meets_target(self, small_store):
        specs = make_specs(small_store, IC_FUNCTIONS)
        target = small_store.minimum_config_latency_ms(IC_FUNCTIONS)
        result = esg_1q_search(specs, target, k=5)
        assert result.feasible
        assert result.best is not None
        for path in result.paths:
            assert path.latency_ms < target
            assert len(path.configs) == 3

    def test_paths_sorted_by_cost(self, small_store):
        specs = make_specs(small_store, IC_FUNCTIONS)
        target = 1.2 * small_store.minimum_config_latency_ms(IC_FUNCTIONS)
        result = esg_1q_search(specs, target, k=5)
        costs = [p.cost_cents for p in result.paths]
        assert costs == sorted(costs)
        assert len(result.paths) <= 5

    def test_infeasible_target_returns_fastest_default(self, small_store):
        specs = make_specs(small_store, IC_FUNCTIONS)
        result = esg_1q_search(specs, 1.0, k=5)  # 1 ms is impossible
        assert not result.feasible
        assert len(result.paths) == 1
        fastest = result.paths[0]
        assert fastest.configs == tuple(s.fastest_entry.config for s in specs)

    def test_non_positive_target_returns_default(self, small_store):
        specs = make_specs(small_store, IC_FUNCTIONS)
        result = esg_1q_search(specs, -10.0, k=3)
        assert not result.feasible
        assert result.expansions == 0

    def test_single_stage_search(self, small_store):
        specs = make_specs(small_store, ["deblur"])
        target = 2.0 * small_store.profile("deblur").min_latency_ms
        result = esg_1q_search(specs, target, k=3)
        assert result.feasible
        cheapest_feasible = min(
            (e for e in small_store.profile("deblur").sorted_by_latency() if e.latency_ms < target),
            key=lambda e: e.per_job_cost_cents,
        )
        assert result.best.cost_cents == pytest.approx(cheapest_feasible.per_job_cost_cents)

    def test_invalid_arguments(self, small_store):
        specs = make_specs(small_store, ["deblur"])
        with pytest.raises(ValueError):
            esg_1q_search([], 100.0)
        with pytest.raises(ValueError):
            esg_1q_search(specs, 100.0, k=0)

    def test_max_batch_respected_in_first_stage(self, small_store):
        specs = make_specs(small_store, IC_FUNCTIONS, max_batch=1)
        target = 1.5 * small_store.minimum_config_latency_ms(IC_FUNCTIONS)
        result = esg_1q_search(specs, target, k=5)
        for path in result.paths:
            assert path.configs[0].batch_size == 1

    def test_candidate_configs_deduplicated(self, small_store):
        specs = make_specs(small_store, IC_FUNCTIONS)
        target = 1.5 * small_store.minimum_config_latency_ms(IC_FUNCTIONS)
        result = esg_1q_search(specs, target, k=5)
        candidates = result.candidate_configs()
        assert len(candidates) == len(set(candidates))

    def test_search_statistics_populated(self, small_store):
        specs = make_specs(small_store, IC_FUNCTIONS)
        target = small_store.minimum_config_latency_ms(IC_FUNCTIONS)
        result = esg_1q_search(specs, target, k=5)
        assert result.expansions > 0
        assert result.search_time_ms >= 0.0
        assert result.stage_ids == ("s1", "s2", "s3")

    def test_as_plan_maps_stage_ids(self, small_store):
        specs = make_specs(small_store, IC_FUNCTIONS)
        target = 1.2 * small_store.minimum_config_latency_ms(IC_FUNCTIONS)
        best = esg_1q_search(specs, target, k=1).best
        plan = best.as_plan(["s1", "s2", "s3"])
        assert set(plan) == {"s1", "s2", "s3"}
        with pytest.raises(ValueError):
            best.as_plan(["s1"])


class TestOptimalityAgainstBruteForce:
    @pytest.mark.parametrize("slo_factor", [0.9, 1.0, 1.2, 2.0])
    def test_same_optimal_cost_as_bruteforce(self, small_store, slo_factor):
        specs = make_specs(small_store, IC_FUNCTIONS)
        target = slo_factor * small_store.minimum_config_latency_ms(IC_FUNCTIONS)
        esg = esg_1q_search(specs, target, k=5)
        brute = brute_force_search(specs, target, k=5)
        assert esg.feasible == brute.feasible
        if esg.feasible:
            assert esg.best.cost_cents == pytest.approx(brute.best.cost_cents, rel=1e-9)
            assert esg.best.latency_ms < target

    def test_prunes_far_fewer_states_than_bruteforce(self, default_store):
        functions = image_classification().function_names()
        specs = [
            StageSearchSpec.from_profile(f"s{i}", default_store.profile(fn))
            for i, fn in enumerate(functions)
        ]
        target = default_store.minimum_config_latency_ms(functions)
        esg = esg_1q_search(specs, target, k=5)
        brute = brute_force_search(specs, target, k=5)
        assert esg.feasible and brute.feasible
        assert esg.expansions < brute.examined / 5

    @settings(max_examples=20, deadline=None)
    @given(
        slo_factor=st.floats(min_value=0.5, max_value=3.0),
        functions=st.lists(
            st.sampled_from(
                ["super_resolution", "segmentation", "deblur", "classification", "depth_recognition"]
            ),
            min_size=1,
            max_size=3,
        ),
    )
    def test_property_feasibility_and_cost_match_oracle(self, small_store, slo_factor, functions):
        """Property: on the small space ESG_1Q agrees with exhaustive search on
        feasibility and on the optimal cost whenever a feasible path exists."""
        specs = make_specs(small_store, functions)
        target = slo_factor * small_store.minimum_config_latency_ms(functions)
        esg = esg_1q_search(specs, target, k=5)
        brute = brute_force_search(specs, target, k=5)
        assert esg.feasible == brute.feasible
        if esg.feasible:
            assert esg.best.cost_cents == pytest.approx(brute.best.cost_cents, rel=1e-9)
            assert all(p.latency_ms < target for p in esg.paths)

    @settings(max_examples=15, deadline=None)
    @given(k=st.integers(min_value=1, max_value=10))
    def test_property_k_best_costs_match_oracle(self, small_store, k):
        """Property: the costs of the K returned paths are the K smallest."""
        specs = make_specs(small_store, IC_FUNCTIONS)
        target = 1.3 * small_store.minimum_config_latency_ms(IC_FUNCTIONS)
        esg = esg_1q_search(specs, target, k=k)
        brute = brute_force_search(specs, target, k=k)
        esg_costs = [round(p.cost_cents, 12) for p in esg.paths]
        brute_costs = [round(p.cost_cents, 12) for p in brute.paths]
        assert esg_costs == brute_costs[: len(esg_costs)]


class TestLargerSpace:
    def test_paper_256_space_search_is_fast_and_optimal(self, default_store):
        space = ConfigurationSpace.paper_256()
        store = ProfileStore.build(space=space)
        functions = ["deblur", "super_resolution", "background_removal"]
        specs = [
            StageSearchSpec.from_profile(f"s{i}", store.profile(fn)) for i, fn in enumerate(functions)
        ]
        target = store.minimum_config_latency_ms(functions)
        result = esg_1q_search(specs, target, k=5)
        assert result.feasible
        # 256^3 = 16.7M joint configurations; the pruned search must examine
        # a small fraction of them (a few percent).
        assert result.expansions < 16_777_216 * 0.05
