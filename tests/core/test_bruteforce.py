"""Tests for the exhaustive path search used as an oracle."""

from __future__ import annotations

import pytest

from repro.core.bruteforce import brute_force_search
from repro.core.esg_1q import StageSearchSpec


def specs_for(store, functions):
    return [StageSearchSpec.from_profile(f"s{i}", store.profile(fn)) for i, fn in enumerate(functions)]


class TestBruteForce:
    def test_examines_full_product_space(self, small_store):
        functions = ["super_resolution", "segmentation"]
        specs = specs_for(small_store, functions)
        target = 10 * small_store.minimum_config_latency_ms(functions)
        result = brute_force_search(specs, target)
        assert result.examined == small_store.space.size ** 2

    def test_paths_sorted_and_feasible(self, small_store):
        functions = ["super_resolution", "classification"]
        specs = specs_for(small_store, functions)
        target = 1.5 * small_store.minimum_config_latency_ms(functions)
        result = brute_force_search(specs, target, k=10)
        costs = [p.cost_cents for p in result.paths]
        assert costs == sorted(costs)
        assert all(p.latency_ms < target for p in result.paths)
        assert len(result.paths) <= 10

    def test_infeasible_target_reports_no_paths(self, small_store):
        specs = specs_for(small_store, ["deblur"])
        result = brute_force_search(specs, 0.5)
        assert not result.feasible
        assert result.best is None

    def test_invalid_arguments(self, small_store):
        specs = specs_for(small_store, ["deblur"])
        with pytest.raises(ValueError):
            brute_force_search([], 10.0)
        with pytest.raises(ValueError):
            brute_force_search(specs, 10.0, k=0)

    def test_max_examined_cap(self, small_store):
        functions = ["super_resolution", "segmentation", "deblur"]
        specs = specs_for(small_store, functions)
        target = 10 * small_store.minimum_config_latency_ms(functions)
        result = brute_force_search(specs, target, max_examined=100)
        assert result.examined <= 101
