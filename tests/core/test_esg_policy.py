"""Tests for the ESGPolicy (planning, adaptivity, ablation switches)."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.datatransfer import DataTransferModel
from repro.cluster.policy_api import AFWQueue, SchedulingContext
from repro.core.esg import ESGPolicy
from repro.workloads.applications import (
    build_paper_applications,
    expanded_image_classification,
    image_classification,
)
from repro.workloads.request import Job, Request


def make_context(store, num_invokers: int = 4) -> SchedulingContext:
    workflows = {wf.name: wf for wf in build_paper_applications()}
    return SchedulingContext(
        profile_store=store,
        cluster=ClusterState(config=ClusterConfig(num_invokers=num_invokers)),
        config_space=store.space,
        pricing=store.pricing,
        workflows=workflows,
        transfer_model=DataTransferModel(),
    )


def make_queue(workflow, stage_id: str) -> AFWQueue:
    return AFWQueue(
        app_name=workflow.name,
        stage_id=stage_id,
        function_name=workflow.function_of(stage_id),
        workflow=workflow,
    )


def add_request(queue: AFWQueue, req_id: int, *, slo_factor: float, store, now: float = 0.0) -> Request:
    base = store.minimum_config_latency_ms(queue.workflow.function_names())
    request = Request(
        request_id=req_id, workflow=queue.workflow, arrival_ms=now, slo_ms=slo_factor * base
    )
    queue.push(Job(request=request, stage_id=queue.stage_id, ready_ms=now))
    return request


@pytest.fixture()
def bound_esg(small_store) -> ESGPolicy:
    policy = ESGPolicy(k=3)
    policy.bind(make_context(small_store))
    return policy


class TestConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ESGPolicy(k=0)
        with pytest.raises(ValueError):
            ESGPolicy(group_size=0)
        with pytest.raises(ValueError):
            ESGPolicy(safety_margin=1.5)

    def test_name_override(self):
        assert ESGPolicy(name="ESG-variant").name == "ESG-variant"
        assert ESGPolicy().name == "ESG"


class TestBinding:
    def test_bind_precomputes_distributions(self, bound_esg):
        for wf in build_paper_applications():
            dist = bound_esg.distribution_for(wf.name)
            assert dist.total_fraction() == pytest.approx(1.0)

    def test_distribution_for_unknown_app_computed_lazily(self, small_store):
        policy = ESGPolicy()
        context = make_context(small_store)
        policy.bind(context)
        # Register an extra workflow after binding.
        extra = image_classification()
        extra.name = "extra_app"  # type: ignore[misc]
        context.workflows["extra_app"] = extra
        assert policy.distribution_for("extra_app").workflow is extra


class TestPlanning:
    def test_plan_returns_candidates_within_k(self, bound_esg, small_store):
        wf = bound_esg.context.workflows["image_classification"]
        queue = make_queue(wf, "s1")
        add_request(queue, 0, slo_factor=1.2, store=small_store)
        decision = bound_esg.plan(queue, now_ms=1.0)
        assert decision is not None
        assert 1 <= len(decision.candidates) <= 3
        assert decision.planned_path is not None
        assert set(decision.planned_path) == {"s1", "s2", "s3"}

    def test_plan_empty_queue_returns_none(self, bound_esg):
        wf = bound_esg.context.workflows["image_classification"]
        assert bound_esg.plan(make_queue(wf, "s1"), now_ms=0.0) is None

    def test_plan_batch_capped_by_queue_length(self, bound_esg, small_store):
        wf = bound_esg.context.workflows["image_classification"]
        queue = make_queue(wf, "s1")
        add_request(queue, 0, slo_factor=1.5, store=small_store)
        add_request(queue, 1, slo_factor=1.5, store=small_store)
        decision = bound_esg.plan(queue, now_ms=1.0)
        assert all(c.batch_size <= 2 for c in decision.candidates)

    def test_candidates_ordered_by_increasing_cost(self, bound_esg, small_store):
        wf = bound_esg.context.workflows["expanded_image_classification"]
        queue = make_queue(wf, "s1")
        add_request(queue, 0, slo_factor=1.3, store=small_store)
        decision = bound_esg.plan(queue, now_ms=1.0)
        profile = small_store.profile(queue.function_name)
        costs = [profile.per_job_cost_cents(c) for c in decision.candidates]
        # First-stage candidates come from paths sorted by total cost; their
        # own per-job costs may tie but never decrease then increase wildly.
        assert len(costs) >= 1

    def test_adaptive_replanning_tightens_late_stages(self, bound_esg, small_store):
        """If the first stage consumed most of the budget, the plan for the
        last stage must pick a faster configuration than it would with a
        fresh budget."""
        wf = bound_esg.context.workflows["image_classification"]
        profile = small_store.profile(wf.function_of("s3"))

        # Fresh request at its last stage with plenty of budget.
        relaxed_queue = make_queue(wf, "s3")
        relaxed_req = add_request(relaxed_queue, 0, slo_factor=1.2, store=small_store)
        relaxed_req.record_stage_completion("s1", 10.0, 0)
        relaxed_req.record_stage_completion("s2", 20.0, 0)
        relaxed_decision = bound_esg.plan(relaxed_queue, now_ms=30.0)

        # Same request shape, but earlier stages ate nearly all of the budget.
        tight_queue = make_queue(wf, "s3")
        tight_req = add_request(tight_queue, 1, slo_factor=1.2, store=small_store)
        tight_req.record_stage_completion("s1", 10.0, 0)
        late = tight_req.deadline_ms - profile.min_latency_ms * 1.5
        tight_req.record_stage_completion("s2", late, 0)
        tight_decision = bound_esg.plan(tight_queue, now_ms=late)

        relaxed_latency = profile.latency_ms(relaxed_decision.best)
        tight_latency = profile.latency_ms(tight_decision.best)
        assert tight_latency <= relaxed_latency

    def test_blown_deadline_still_returns_a_decision(self, bound_esg, small_store):
        wf = bound_esg.context.workflows["image_classification"]
        queue = make_queue(wf, "s1")
        request = add_request(queue, 0, slo_factor=0.8, store=small_store)
        decision = bound_esg.plan(queue, now_ms=request.deadline_ms + 10_000.0)
        assert decision is not None
        assert len(decision.candidates) >= 1


class TestAblationSwitches:
    def test_no_batching_only_plans_batch_one(self, small_store):
        policy = ESGPolicy(batching=False)
        policy.bind(make_context(small_store))
        wf = policy.context.workflows["image_classification"]
        queue = make_queue(wf, "s1")
        for i in range(4):
            add_request(queue, i, slo_factor=1.5, store=small_store)
        decision = policy.plan(queue, now_ms=1.0)
        assert all(c.batch_size == 1 for c in decision.candidates)
        assert not policy.uses_batching

    def test_no_gpu_sharing_always_takes_whole_gpu(self, small_store):
        policy = ESGPolicy(gpu_sharing=False)
        policy.bind(make_context(small_store))
        wf = policy.context.workflows["image_classification"]
        queue = make_queue(wf, "s1")
        add_request(queue, 0, slo_factor=1.5, store=small_store)
        decision = policy.plan(queue, now_ms=1.0)
        full_gpu = small_store.space.vgpu_options[-1]
        assert all(c.vgpus == full_gpu for c in decision.candidates)
        assert not policy.uses_gpu_sharing

    def test_static_variant_plans_once_and_reuses(self, small_store):
        policy = ESGPolicy(adaptive=False)
        policy.bind(make_context(small_store))
        wf = policy.context.workflows["expanded_image_classification"]
        queue = make_queue(wf, "s1")
        request = add_request(queue, 0, slo_factor=1.2, store=small_store)
        first = policy.plan(queue, now_ms=1.0)
        assert first.used_preplanned
        assert request.static_plan is not None
        # Later stage reads the same plan.
        queue2 = make_queue(wf, "s2")
        queue2.push(Job(request=request, stage_id="s2", ready_ms=50.0))
        second = policy.plan(queue2, now_ms=50.0)
        assert second.used_preplanned
        assert second.candidates[0].vcpus == request.static_plan["s2"].vcpus

    def test_static_variant_records_plan_miss_on_small_queue(self, small_store):
        policy = ESGPolicy(adaptive=False)
        policy.bind(make_context(small_store))
        wf = policy.context.workflows["image_classification"]
        queue = make_queue(wf, "s2")
        request = add_request(queue, 0, slo_factor=1.2, store=small_store)
        # Force a pre-planned batch larger than the queue.
        request.static_plan = {
            "s1": small_store.space.minimum,
            "s2": small_store.space.minimum.with_batch(4),
            "s3": small_store.space.minimum,
        }
        decision = policy.plan(queue, now_ms=1.0)
        assert decision.plan_miss
        assert decision.candidates[0].batch_size == 1
        assert request.plan_miss_count == 1


class TestDispatchIntegration:
    def test_select_invoker_prefers_predecessor_node(self, bound_esg, small_store):
        wf = bound_esg.context.workflows["image_classification"]
        queue = make_queue(wf, "s2")
        request = add_request(queue, 0, slo_factor=1.2, store=small_store)
        bound_esg.context.cluster.invoker(2).create_warm_container(wf.function_of("s2"), 0.0)
        request.record_stage_completion("s1", 5.0, invoker_id=2)
        chosen = bound_esg.select_invoker(small_store.space.minimum, queue, now_ms=10.0)
        assert chosen == 2
