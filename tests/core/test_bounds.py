"""Tests for the dual-blade pruning bounds."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import SuffixBounds


class TestSuffixConstruction:
    def test_suffix_sums(self):
        bounds = SuffixBounds.from_stages(
            stage_min_latency_ms=[10.0, 20.0, 30.0],
            stage_min_cost_cents=[1.0, 2.0, 3.0],
            stage_fastest_cost_cents=[5.0, 6.0, 7.0],
        )
        assert bounds.min_latency_suffix == (60.0, 50.0, 30.0, 0.0)
        assert bounds.min_cost_suffix == (6.0, 5.0, 3.0, 0.0)
        assert bounds.fastest_cost_suffix == (18.0, 13.0, 7.0, 0.0)
        assert bounds.num_stages == 3
        assert bounds.minimum_total_latency_ms() == 60.0
        assert bounds.minimum_total_cost_cents() == 6.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SuffixBounds.from_stages([1.0], [1.0, 2.0], [1.0])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            SuffixBounds.from_stages([-1.0], [1.0], [1.0])


class TestExtensionBounds:
    @pytest.fixture()
    def bounds(self) -> SuffixBounds:
        return SuffixBounds.from_stages(
            stage_min_latency_ms=[10.0, 20.0, 30.0],
            stage_min_cost_cents=[1.0, 2.0, 3.0],
            stage_fastest_cost_cents=[5.0, 6.0, 7.0],
        )

    def test_bounds_for_first_stage_extension(self, bounds):
        result = bounds.bounds_for_extension(0.0, 0.0, 15.0, 2.5, next_stage_index=1)
        assert result.t_low_ms == pytest.approx(15.0 + 50.0)
        assert result.rsc_low_cents == pytest.approx(2.5 + 5.0)
        assert result.rsc_fastest_cents == pytest.approx(2.5 + 13.0)

    def test_bounds_for_last_stage_are_exact(self, bounds):
        result = bounds.bounds_for_extension(40.0, 4.0, 35.0, 3.5, next_stage_index=3)
        assert result.t_low_ms == pytest.approx(75.0)
        assert result.rsc_low_cents == pytest.approx(7.5)
        assert result.rsc_fastest_cents == pytest.approx(7.5)

    def test_out_of_range_index_rejected(self, bounds):
        with pytest.raises(IndexError):
            bounds.bounds_for_extension(0.0, 0.0, 1.0, 1.0, next_stage_index=4)

    @given(
        mins=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),
                st.floats(min_value=0.01, max_value=10.0),
                st.floats(min_value=0.01, max_value=10.0),
            ),
            min_size=1,
            max_size=6,
        ),
        prefix_latency=st.floats(min_value=0.0, max_value=500.0),
        prefix_cost=st.floats(min_value=0.0, max_value=50.0),
        entry_latency=st.floats(min_value=0.1, max_value=100.0),
        entry_cost=st.floats(min_value=0.01, max_value=10.0),
    )
    def test_lower_bounds_really_are_lower_bounds(
        self, mins, prefix_latency, prefix_cost, entry_latency, entry_cost
    ):
        """Property: tLow/rscLow never exceed any achievable completion, and
        the fastest completion is itself achievable (rscFastest >= rscLow)."""
        latencies = [m[0] for m in mins]
        costs = [m[1] for m in mins]
        fastest = [max(m[1], m[2]) for m in mins]  # fastest config can't be cheaper than the min cost
        bounds = SuffixBounds.from_stages(latencies, costs, fastest)
        idx = 1 if len(mins) >= 1 else 0
        result = bounds.bounds_for_extension(
            prefix_latency, prefix_cost, entry_latency, entry_cost, next_stage_index=min(idx, bounds.num_stages)
        )
        assert result.rsc_fastest_cents >= result.rsc_low_cents - 1e-9
        assert result.t_low_ms >= prefix_latency + entry_latency - 1e-9
