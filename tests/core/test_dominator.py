"""Tests for the dominator tree, ANL labelling and SLO distribution."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominator import (
    DominatorTree,
    SLODistribution,
    compute_anl,
    distribute_slo,
)
from repro.workloads.applications import (
    expanded_image_classification,
    image_classification,
)
from repro.workloads.dag import Workflow


class TestDominatorTree:
    def test_linear_chain_dominators(self):
        wf = Workflow.linear("chain", ["deblur", "segmentation", "classification"])
        tree = DominatorTree(workflow=wf)
        assert tree.root == "s1"
        assert tree.immediate_dominator("s1") is None
        assert tree.immediate_dominator("s2") == "s1"
        assert tree.immediate_dominator("s3") == "s2"
        assert tree.dominates("s1", "s3")
        assert not tree.dominates("s3", "s1")
        assert not tree.has_virtual_root

    def test_diamond_dominators(self, diamond_workflow):
        tree = DominatorTree(workflow=diamond_workflow)
        # The join node d is dominated by a but not by either branch.
        assert tree.immediate_dominator("d") == "a"
        assert tree.dominates("a", "d")
        assert not tree.dominates("b", "d")
        assert not tree.dominates("c", "d")
        assert set(tree.children("a")) == {"b", "c", "d"}

    def test_multi_source_dag_gets_virtual_root(self):
        wf = Workflow("multi")
        wf.add_stage("x", "deblur")
        wf.add_stage("y", "segmentation")
        wf.add_stage("z", "classification")
        wf.add_edge("x", "z")
        wf.add_edge("y", "z")
        tree = DominatorTree(workflow=wf)
        assert tree.has_virtual_root
        assert tree.immediate_dominator("x") == tree.root
        assert tree.immediate_dominator("z") == tree.root

    def test_every_node_dominated_by_root(self, diamond_workflow):
        tree = DominatorTree(workflow=diamond_workflow)
        for sid in diamond_workflow.stage_ids():
            assert tree.dominates("a", sid)

    def test_node_dominates_itself(self, diamond_workflow):
        tree = DominatorTree(workflow=diamond_workflow)
        for sid in diamond_workflow.stage_ids():
            assert tree.dominates(sid, sid)


class TestANL:
    def test_anl_sums_to_one_for_linear_workflow(self, small_store):
        wf = image_classification()
        anl = compute_anl(wf, small_store)
        assert sum(anl.values()) == pytest.approx(1.0)
        assert set(anl) == set(wf.stage_ids())

    def test_longer_functions_get_larger_anl(self, small_store):
        wf = image_classification()  # super_resolution (86) < classification (147) < segmentation (293)
        anl = compute_anl(wf, small_store)
        assert anl["s2"] > anl["s3"] > anl["s1"]

    def test_anl_positive(self, small_store, paper_apps):
        for wf in paper_apps:
            anl = compute_anl(wf, small_store)
            assert all(v > 0 for v in anl.values())


class TestDistributeSLO:
    def test_linear_groups_of_three(self, small_store):
        wf = expanded_image_classification()
        dist = distribute_slo(wf, small_store, group_size=3)
        assert [g.stage_ids for g in dist.groups] == [("s1", "s2", "s3"), ("s4", "s5")]
        assert dist.total_fraction() == pytest.approx(1.0)

    def test_group_size_one_gives_per_stage_groups(self, small_store):
        wf = image_classification()
        dist = distribute_slo(wf, small_store, group_size=1)
        assert len(dist.groups) == 3
        assert dist.total_fraction() == pytest.approx(1.0)

    def test_group_size_larger_than_workflow(self, small_store):
        wf = image_classification()
        dist = distribute_slo(wf, small_store, group_size=10)
        assert len(dist.groups) == 1
        assert dist.groups[0].slo_fraction == pytest.approx(1.0)

    def test_fractions_proportional_to_anl(self, small_store):
        wf = expanded_image_classification()
        dist = distribute_slo(wf, small_store, group_size=3)
        anl = dist.anl
        expected_first = sum(anl[s] for s in ("s1", "s2", "s3"))
        assert dist.groups[0].slo_fraction == pytest.approx(expected_first, rel=1e-9)

    def test_stage_fraction_splits_group_fraction(self, small_store):
        wf = image_classification()
        dist = distribute_slo(wf, small_store, group_size=3)
        total = sum(dist.stage_fraction(s) for s in wf.stage_ids())
        assert total == pytest.approx(1.0)

    def test_group_of_and_stages_from(self, small_store):
        wf = expanded_image_classification()
        dist = distribute_slo(wf, small_store, group_size=3)
        group = dist.group_of("s2")
        assert group.stage_ids == ("s1", "s2", "s3")
        assert group.stages_from("s2") == ("s2", "s3")
        assert dist.group_of("s5").stage_ids == ("s4", "s5")

    def test_group_slo_ms_scales_end_to_end_budget(self, small_store):
        wf = image_classification()
        dist = distribute_slo(wf, small_store, group_size=2)
        budget = 1000.0
        total = sum(g.slo_fraction for g in dist.groups) * budget
        assert total == pytest.approx(1000.0)
        assert dist.group_slo_ms("s1", budget) == pytest.approx(
            dist.group_of("s1").slo_fraction * budget
        )

    def test_diamond_branch_groups(self, small_store, diamond_workflow):
        dist = distribute_slo(diamond_workflow, small_store, group_size=3)
        # Every stage must be covered exactly once.
        covered = [sid for g in dist.groups for sid in g.stage_ids]
        assert sorted(covered) == sorted(diamond_workflow.stage_ids())
        # The budget along any source->sink path must not exceed the SLO.
        for path in (["a", "b", "d"], ["a", "c", "d"]):
            groups_on_path = {dist.group_of(s).index: dist.group_of(s).slo_fraction for s in path}
            assert sum(groups_on_path.values()) <= 1.0 + 1e-9

    def test_invalid_group_size_rejected(self, small_store):
        with pytest.raises(ValueError):
            distribute_slo(image_classification(), small_store, group_size=0)

    def test_missing_anl_rejected(self, small_store):
        wf = image_classification()
        with pytest.raises(ValueError):
            distribute_slo(wf, small_store, anl={"s1": 0.5})

    def test_explicit_anl_respected(self, small_store):
        wf = image_classification()
        anl = {"s1": 0.2, "s2": 0.5, "s3": 0.3}
        dist = distribute_slo(wf, small_store, group_size=1, anl=anl)
        assert dist.groups[1].slo_fraction == pytest.approx(0.5)

    @settings(max_examples=20, deadline=None)
    @given(
        group_size=st.integers(min_value=1, max_value=5),
        num_stages=st.integers(min_value=1, max_value=6),
    )
    def test_property_linear_distribution_covers_budget(self, small_store, group_size, num_stages):
        """Property: for any linear pipeline and group size, the group
        fractions are positive, cover every stage exactly once and sum to 1."""
        functions = ["super_resolution", "deblur", "segmentation", "classification",
                     "depth_recognition", "background_removal"][:num_stages]
        wf = Workflow.linear("prop", functions)
        dist = distribute_slo(wf, small_store, group_size=group_size)
        covered = [sid for g in dist.groups for sid in g.stage_ids]
        assert sorted(covered) == sorted(wf.stage_ids())
        assert all(g.slo_fraction > 0 for g in dist.groups)
        assert dist.total_fraction() == pytest.approx(1.0)
        assert all(len(g.stage_ids) <= group_size for g in dist.groups)


class TestSLODistributionValidation:
    def test_duplicate_stage_in_groups_rejected(self, small_store):
        wf = image_classification()
        dist = distribute_slo(wf, small_store, group_size=3)
        groups = dist.groups + [dist.groups[0]]
        with pytest.raises(ValueError):
            SLODistribution(workflow=wf, group_size=3, anl=dist.anl, groups=groups)

    def test_uncovered_stage_rejected(self, small_store):
        wf = image_classification()
        dist = distribute_slo(wf, small_store, group_size=3)
        with pytest.raises(ValueError):
            SLODistribution(workflow=wf, group_size=3, anl=dist.anl, groups=dist.groups[:0])
