"""Tests for the Gaussian-process Bayesian optimiser and the Aquatope policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.aquatope import AquatopePolicy
from repro.baselines.bo import BayesianOptimizer, GaussianProcess
from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.datatransfer import DataTransferModel
from repro.cluster.policy_api import AFWQueue, SchedulingContext
from repro.utils.rng import derive_rng
from repro.workloads.applications import build_paper_applications, image_classification
from repro.workloads.request import Job, Request


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        x = np.linspace(0, 1, 8).reshape(-1, 1)
        y = np.sin(3 * x).ravel()
        gp = GaussianProcess(noise=1e-6).fit(x, y)
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-2)
        assert np.all(std < 0.2)

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([[0.1], [0.2]])
        y = np.array([1.0, 1.2])
        gp = GaussianProcess(lengthscale=0.05).fit(x, y)
        _, near_std = gp.predict(np.array([[0.15]]))
        _, far_std = gp.predict(np.array([[0.9]]))
        assert far_std[0] > near_std[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.array([[0.5]]))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))

    def test_single_point_fit(self):
        gp = GaussianProcess().fit(np.array([[0.5, 0.5]]), np.array([2.0]))
        mean, _ = gp.predict(np.array([[0.5, 0.5]]))
        assert mean[0] == pytest.approx(2.0, abs=1e-3)


class TestBayesianOptimizer:
    def test_finds_minimum_of_quadratic(self):
        target = np.array([0.3, 0.7])

        def objective(x):
            return float(np.sum((x - target) ** 2))

        optimizer = BayesianOptimizer(
            num_dims=2,
            objective=objective,
            rng=derive_rng(0, "bo"),
            bootstrap=30,
            rounds=10,
            samples_per_round=3,
            candidate_pool=128,
        )
        result = optimizer.run()
        assert result.best_y < 0.02
        assert result.evaluations == 30 + 10 * 3

    def test_expected_improvement_positive_below_best(self):
        ei = BayesianOptimizer.expected_improvement(
            mean=np.array([0.5, 2.0]), std=np.array([0.1, 0.1]), best_y=1.0
        )
        assert ei[0] > ei[1]
        assert ei[0] > 0

    def test_reproducible_with_same_rng_seed(self):
        def objective(x):
            return float(np.sum(x**2))

        def run(seed):
            return BayesianOptimizer(
                num_dims=3,
                objective=objective,
                rng=derive_rng(seed, "bo-repro"),
                bootstrap=10,
                rounds=3,
                samples_per_round=2,
            ).run()

        assert run(5).best_y == run(5).best_y

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(num_dims=0, objective=lambda x: 0.0, rng=derive_rng(0, "x"))
        with pytest.raises(ValueError):
            BayesianOptimizer(num_dims=1, objective=lambda x: 0.0, rng=derive_rng(0, "x"), bootstrap=0)


def make_context(store) -> SchedulingContext:
    return SchedulingContext(
        profile_store=store,
        cluster=ClusterState(config=ClusterConfig(num_invokers=4)),
        config_space=store.space,
        pricing=store.pricing,
        workflows={wf.name: wf for wf in build_paper_applications()},
        transfer_model=DataTransferModel(),
    )


@pytest.fixture()
def fast_aquatope(small_store) -> AquatopePolicy:
    """A small training budget keeps the test quick while exercising the full path."""
    policy = AquatopePolicy(bootstrap=15, rounds=3, samples_per_round=2, seed=3)
    policy.bind(make_context(small_store))
    return policy


class TestAquatope:
    def test_training_produces_full_plan(self, fast_aquatope, small_store):
        wf = image_classification()
        slo = 1.2 * small_store.minimum_config_latency_ms(wf.function_names())
        plan = fast_aquatope.plan_for(wf, slo)
        assert set(plan) == set(wf.stage_ids())
        for config in plan.values():
            assert config in small_store.space

    def test_plan_is_cached_per_app_and_slo(self, fast_aquatope, small_store):
        wf = image_classification()
        slo = 1.2 * small_store.minimum_config_latency_ms(wf.function_names())
        first = fast_aquatope.plan_for(wf, slo)
        second = fast_aquatope.plan_for(wf, slo)
        assert first is second

    def test_plan_decision_is_static_and_marks_misses(self, fast_aquatope, small_store):
        wf = image_classification()
        base = small_store.minimum_config_latency_ms(wf.function_names())
        queue = AFWQueue(app_name=wf.name, stage_id="s1", function_name="super_resolution", workflow=wf)
        request = Request(request_id=0, workflow=wf, arrival_ms=0.0, slo_ms=1.2 * base)
        queue.push(Job(request=request, stage_id="s1", ready_ms=0.0))
        decision = fast_aquatope.plan(queue, now_ms=1.0)
        assert decision.used_preplanned
        assert decision.reported_overhead_ms == 0.0
        planned_batch = request.static_plan["s1"].batch_size
        assert decision.plan_miss == (planned_batch > 1)

    def test_tight_slo_prefers_faster_configs_than_relaxed(self, small_store):
        policy = AquatopePolicy(bootstrap=40, rounds=5, samples_per_round=3, seed=11)
        policy.bind(make_context(small_store))
        wf = image_classification()
        base = small_store.minimum_config_latency_ms(wf.function_names())

        def plan_latency(slo_factor):
            plan = policy.plan_for(wf, slo_factor * base)
            return sum(
                small_store.profile(wf.function_of(sid)).latency_ms(cfg.with_batch(1))
                for sid, cfg in plan.items()
            )

        assert plan_latency(0.8) <= plan_latency(3.0) * 1.25

    def test_on_bind_clears_trained_plans(self, fast_aquatope, small_store):
        wf = image_classification()
        slo = 1.2 * small_store.minimum_config_latency_ms(wf.function_names())
        fast_aquatope.plan_for(wf, slo)
        fast_aquatope.bind(make_context(small_store))
        assert fast_aquatope._plans == {}
