"""Tests for the average-service-time SLO distribution."""

from __future__ import annotations

import pytest

from repro.baselines.service_time_slo import service_time_fractions
from repro.workloads.applications import expanded_image_classification, image_classification


class TestServiceTimeFractions:
    def test_fractions_sum_to_one(self, small_store, paper_apps):
        for wf in paper_apps:
            fractions = service_time_fractions(wf, small_store)
            assert sum(fractions.values()) == pytest.approx(1.0)
            assert set(fractions) == set(wf.stage_ids())

    def test_fractions_proportional_to_base_exec_time(self, small_store):
        wf = image_classification()
        fractions = service_time_fractions(wf, small_store)
        total = 86.0 + 293.0 + 147.0
        assert fractions["s1"] == pytest.approx(86.0 / total)
        assert fractions["s2"] == pytest.approx(293.0 / total)
        assert fractions["s3"] == pytest.approx(147.0 / total)

    def test_longer_pipeline_spreads_budget(self, small_store):
        wf = expanded_image_classification()
        fractions = service_time_fractions(wf, small_store)
        assert all(0 < f < 1 for f in fractions.values())
        # Background removal (1047 ms) dominates the expanded pipeline.
        assert max(fractions, key=fractions.get) == "s3"
