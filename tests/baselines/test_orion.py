"""Tests for the Orion best-first-search baseline."""

from __future__ import annotations

import pytest

from repro.baselines.orion import OrionPolicy
from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.datatransfer import DataTransferModel
from repro.cluster.policy_api import AFWQueue, SchedulingContext
from repro.workloads.applications import build_paper_applications, image_classification
from repro.workloads.request import Job, Request


def make_context(store) -> SchedulingContext:
    return SchedulingContext(
        profile_store=store,
        cluster=ClusterState(config=ClusterConfig(num_invokers=4)),
        config_space=store.space,
        pricing=store.pricing,
        workflows={wf.name: wf for wf in build_paper_applications()},
        transfer_model=DataTransferModel(),
    )


def bound_orion(store, **kwargs) -> OrionPolicy:
    policy = OrionPolicy(**kwargs)
    policy.bind(make_context(store))
    return policy


def make_queue_with_request(store, stage_id="s1", jobs=1, slo_factor=1.2):
    wf = image_classification()
    queue = AFWQueue(
        app_name=wf.name, stage_id=stage_id, function_name=wf.function_of(stage_id), workflow=wf
    )
    base = store.minimum_config_latency_ms(wf.function_names())
    requests = []
    for i in range(jobs):
        request = Request(request_id=i, workflow=wf, arrival_ms=0.0, slo_ms=slo_factor * base)
        requests.append(request)
        queue.push(Job(request=request, stage_id=stage_id, ready_ms=0.0))
    return queue, requests


class TestSearch:
    def test_relaxed_slo_reached_with_cheap_plan(self, small_store):
        policy = bound_orion(small_store)
        wf = image_classification()
        slo = 2.0 * small_store.minimum_config_latency_ms(wf.function_names())
        result = policy.search(wf, slo)
        assert result.reached_goal
        assert result.predicted_latency_ms <= slo
        assert set(result.plan) == set(wf.stage_ids())

    def test_tight_slo_with_tiny_cutoff_misses_goal(self, small_store):
        policy = bound_orion(small_store, cutoff_ms=0.1, per_expansion_ms=0.05, bundling=False)
        wf = image_classification()
        slo = 0.8 * small_store.minimum_config_latency_ms(wf.function_names())
        result = policy.search(wf, slo)
        assert result.expansions <= 2
        assert not result.reached_goal

    def test_larger_cutoff_finds_better_or_equal_plans(self, small_store):
        wf = image_classification()
        slo = 0.9 * small_store.minimum_config_latency_ms(wf.function_names())
        short = bound_orion(small_store, cutoff_ms=0.2).search(wf, slo)
        long = bound_orion(small_store, cutoff_ms=500.0).search(wf, slo)
        assert long.expansions >= short.expansions
        # With more search the predicted latency gets no further from the SLO.
        assert abs(long.predicted_latency_ms - slo) <= abs(short.predicted_latency_ms - slo) + 1e-9

    def test_bundling_increases_batch_sizes_under_slack(self, small_store):
        wf = image_classification()
        slo = 3.0 * small_store.minimum_config_latency_ms(wf.function_names())
        without = bound_orion(small_store, bundling=False).search(wf, slo)
        with_bundling = bound_orion(small_store, bundling=True).search(wf, slo)
        assert max(c.batch_size for c in with_bundling.plan.values()) >= max(
            c.batch_size for c in without.plan.values()
        )
        assert with_bundling.predicted_cost_cents <= without.predicted_cost_cents + 1e-12

    def test_search_time_capped_by_cutoff(self, small_store):
        policy = bound_orion(small_store, cutoff_ms=5.0, per_expansion_ms=0.05)
        wf = image_classification()
        slo = 0.7 * small_store.minimum_config_latency_ms(wf.function_names())
        result = policy.search(wf, slo)
        assert result.search_time_ms <= 5.0 + 1e-9
        assert result.expansions <= 100


class TestPlanning:
    def test_first_stage_creates_static_plan_and_charges_overhead(self, small_store):
        policy = bound_orion(small_store, cutoff_ms=50.0)
        queue, (request,) = make_queue_with_request(small_store, slo_factor=0.9)
        decision = policy.plan(queue, now_ms=1.0)
        assert decision.used_preplanned
        assert request.static_plan is not None
        assert decision.reported_overhead_ms is not None and decision.reported_overhead_ms > 0

    def test_no_overhead_reported_when_disabled(self, small_store):
        policy = bound_orion(small_store, count_search_overhead=False)
        queue, _ = make_queue_with_request(small_store)
        decision = policy.plan(queue, now_ms=1.0)
        assert decision.reported_overhead_ms == 0.0

    def test_later_stage_reuses_plan_without_overhead(self, small_store):
        policy = bound_orion(small_store)
        queue, (request,) = make_queue_with_request(small_store)
        policy.plan(queue, now_ms=1.0)
        later_queue, _ = make_queue_with_request(small_store, stage_id="s2")
        later_queue.jobs.clear()
        later_queue.push(Job(request=request, stage_id="s2", ready_ms=10.0))
        decision = policy.plan(later_queue, now_ms=10.0)
        assert decision.used_preplanned
        assert decision.reported_overhead_ms == 0.0

    def test_plan_miss_when_bundle_exceeds_queue(self, small_store):
        policy = bound_orion(small_store, bundling=True)
        queue, (request,) = make_queue_with_request(small_store, jobs=1, slo_factor=3.0)
        decision = policy.plan(queue, now_ms=1.0)
        planned_batch = request.static_plan["s1"].batch_size
        if planned_batch > 1:
            assert decision.plan_miss
            assert decision.best.batch_size == 1
        else:
            assert not decision.plan_miss

    def test_search_cache_shared_across_requests(self, small_store):
        policy = bound_orion(small_store)
        queue, _ = make_queue_with_request(small_store, jobs=3)
        policy.plan(queue, now_ms=1.0)
        assert policy.searches_performed == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            OrionPolicy(cutoff_ms=0.0)
        with pytest.raises(ValueError):
            OrionPolicy(per_expansion_ms=0.0)
        with pytest.raises(ValueError):
            OrionPolicy(p95_factor=0.5)
