"""Tests for the INFless and FaST-GShare enumeration baselines."""

from __future__ import annotations

import pytest

from repro.baselines.fastgshare import FaSTGSharePolicy
from repro.baselines.infless import INFlessPolicy
from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.datatransfer import DataTransferModel
from repro.cluster.policy_api import AFWQueue, SchedulingContext
from repro.profiles.configuration import Configuration
from repro.workloads.applications import build_paper_applications, image_classification
from repro.workloads.request import Job, Request


def make_context(store, num_invokers: int = 4) -> SchedulingContext:
    return SchedulingContext(
        profile_store=store,
        cluster=ClusterState(config=ClusterConfig(num_invokers=num_invokers)),
        config_space=store.space,
        pricing=store.pricing,
        workflows={wf.name: wf for wf in build_paper_applications()},
        transfer_model=DataTransferModel(),
    )


def make_loaded_queue(store, stage_id="s1", jobs=1, slo_factor=1.2):
    wf = image_classification()
    queue = AFWQueue(
        app_name=wf.name, stage_id=stage_id, function_name=wf.function_of(stage_id), workflow=wf
    )
    base = store.minimum_config_latency_ms(wf.function_names())
    for i in range(jobs):
        request = Request(request_id=i, workflow=wf, arrival_ms=0.0, slo_ms=slo_factor * base)
        queue.push(Job(request=request, stage_id=stage_id, ready_ms=0.0))
    return queue


@pytest.fixture(params=[INFlessPolicy, FaSTGSharePolicy], ids=["INFless", "FaST-GShare"])
def bound_policy(request, small_store):
    policy = request.param()
    policy.bind(make_context(small_store))
    return policy


class TestSharedBehaviour:
    def test_plan_returns_candidates(self, bound_policy, small_store):
        queue = make_loaded_queue(small_store)
        decision = bound_policy.plan(queue, now_ms=1.0)
        assert decision is not None
        assert 1 <= len(decision.candidates) <= 3
        assert not decision.used_preplanned

    def test_plan_empty_queue_returns_none(self, bound_policy, small_store):
        wf = image_classification()
        queue = AFWQueue(app_name=wf.name, stage_id="s1", function_name="super_resolution", workflow=wf)
        assert bound_policy.plan(queue, now_ms=0.0) is None

    def test_batch_capped_by_queue_length(self, bound_policy, small_store):
        queue = make_loaded_queue(small_store, jobs=2)
        decision = bound_policy.plan(queue, now_ms=1.0)
        assert all(c.batch_size <= 2 for c in decision.candidates)

    def test_stage_slo_uses_static_fractions(self, bound_policy, small_store):
        queue = make_loaded_queue(small_store)
        slo = queue.oldest_job().request.slo_ms
        stage_slo = bound_policy.stage_slo_ms(queue, slo)
        assert 0 < stage_slo < slo

    def test_chosen_config_meets_stage_slo_when_possible(self, bound_policy, small_store):
        queue = make_loaded_queue(small_store, slo_factor=2.0)
        decision = bound_policy.plan(queue, now_ms=1.0)
        profile = small_store.profile(queue.function_name)
        stage_slo = bound_policy.stage_slo_ms(queue, queue.oldest_job().request.slo_ms)
        assert profile.latency_ms(decision.best) <= stage_slo

    def test_infeasible_stage_slo_falls_back_to_fastest(self, bound_policy, small_store):
        queue = make_loaded_queue(small_store, slo_factor=0.01)
        decision = bound_policy.plan(queue, now_ms=1.0)
        assert decision is not None and len(decision.candidates) >= 1


class TestINFlessSpecifics:
    def test_prefers_high_throughput_configs(self, small_store):
        policy = INFlessPolicy()
        policy.bind(make_context(small_store))
        queue = make_loaded_queue(small_store, jobs=4, slo_factor=3.0)
        decision = policy.plan(queue, now_ms=1.0)
        profile = small_store.profile(queue.function_name)
        chosen_tp = 1000.0 * decision.best.batch_size / profile.latency_ms(decision.best)
        min_tp = 1000.0 / profile.latency_ms(small_store.space.minimum)
        assert chosen_tp >= min_tp

    def test_placement_minimises_fragmentation(self, small_store):
        policy = INFlessPolicy()
        policy.bind(make_context(small_store))
        cluster = policy.context.cluster
        # Node 1 is already half full: the best-fit placement picks it.
        cluster.invoker(1).reserve(Configuration(1, 10, 4))
        queue = make_loaded_queue(small_store)
        chosen = policy.select_invoker(Configuration(1, 2, 1), queue, now_ms=0.0)
        assert chosen == 1

    def test_placement_none_when_full(self, small_store):
        policy = INFlessPolicy()
        policy.bind(make_context(small_store))
        for invoker in policy.context.cluster:
            invoker.reserve(Configuration(1, 16, 7))
        queue = make_loaded_queue(small_store)
        assert policy.select_invoker(Configuration(1, 1, 1), queue, now_ms=0.0) is None

    def test_invalid_candidates_count(self):
        with pytest.raises(ValueError):
            INFlessPolicy(candidates=0)


class TestFaSTGShareSpecifics:
    def test_prefers_gpu_efficient_configs_over_infless(self, small_store):
        """FaST-GShare must never pick more vGPUs than INFless for the same queue."""
        context_a = make_context(small_store)
        context_b = make_context(small_store)
        infless = INFlessPolicy()
        infless.bind(context_a)
        fast = FaSTGSharePolicy()
        fast.bind(context_b)
        queue = make_loaded_queue(small_store, jobs=2, slo_factor=2.0)
        infless_cfg = infless.plan(queue, 1.0).best
        fast_cfg = fast.plan(queue, 1.0).best
        assert fast_cfg.vgpus <= infless_cfg.vgpus

    def test_placement_minimises_gpu_fragmentation(self, small_store):
        policy = FaSTGSharePolicy()
        policy.bind(make_context(small_store))
        cluster = policy.context.cluster
        cluster.invoker(2).reserve(Configuration(1, 2, 5))  # only 2 vGPUs left
        queue = make_loaded_queue(small_store)
        chosen = policy.select_invoker(Configuration(1, 1, 2), queue, now_ms=0.0)
        assert chosen == 2

    def test_invalid_candidates_count(self):
        with pytest.raises(ValueError):
            FaSTGSharePolicy(candidates=0)
