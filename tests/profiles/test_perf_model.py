"""Tests for the analytic performance model.

The model's exact constants are assumptions, but its *shape* (the
speed/cost tension ESG navigates) must hold: batching slows an invocation
but makes it cheaper per job; more vGPUs/vCPUs make it faster but more
expensive; the minimum configuration reproduces the Table 3 latency.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.profiles.configuration import Configuration
from repro.profiles.perf_model import AnalyticalPerformanceModel, NoisyPerformanceModel
from repro.profiles.pricing import PricingModel
from repro.profiles.specs import FUNCTION_SPECS, get_function_spec
from repro.utils.rng import derive_rng

ALL_FUNCTIONS = sorted(FUNCTION_SPECS)

batch_strategy = st.sampled_from([1, 2, 4, 8, 16])
vcpu_strategy = st.sampled_from([1, 2, 4, 8, 16])
vgpu_strategy = st.sampled_from([1, 2, 3, 4, 5, 6, 7])


class TestBaseAnchor:
    @pytest.mark.parametrize("name", ALL_FUNCTIONS)
    def test_minimum_configuration_matches_table3(self, name, perf_model):
        spec = get_function_spec(name)
        latency = perf_model.latency_ms(spec, Configuration(1, 1, 1))
        assert latency == pytest.approx(spec.base_exec_ms, rel=1e-9)


class TestMonotonicity:
    @given(batch=batch_strategy, vcpus=vcpu_strategy, vgpus=vgpu_strategy)
    def test_latency_increases_with_batch(self, batch, vcpus, vgpus):
        model = AnalyticalPerformanceModel()
        spec = get_function_spec("segmentation")
        small = model.latency_ms(spec, Configuration(batch, vcpus, vgpus))
        larger = model.latency_ms(spec, Configuration(batch * 2, vcpus, vgpus))
        assert larger > small

    @given(batch=batch_strategy, vcpus=vcpu_strategy, vgpus=st.sampled_from([1, 2, 3, 4, 5, 6]))
    def test_latency_decreases_with_more_vgpus(self, batch, vcpus, vgpus):
        model = AnalyticalPerformanceModel()
        spec = get_function_spec("deblur")
        fewer = model.latency_ms(spec, Configuration(batch, vcpus, vgpus))
        more = model.latency_ms(spec, Configuration(batch, vcpus, vgpus + 1))
        assert more < fewer

    @given(batch=batch_strategy, vcpus=st.sampled_from([1, 2, 4, 8]), vgpus=vgpu_strategy)
    def test_latency_decreases_with_more_vcpus(self, batch, vcpus, vgpus):
        model = AnalyticalPerformanceModel()
        spec = get_function_spec("classification")
        fewer = model.latency_ms(spec, Configuration(batch, vcpus, vgpus))
        more = model.latency_ms(spec, Configuration(batch, vcpus * 2, vgpus))
        assert more < fewer

    @given(batch=st.sampled_from([1, 2, 4, 8]), vcpus=vcpu_strategy, vgpus=vgpu_strategy)
    def test_batching_reduces_per_job_cost(self, batch, vcpus, vgpus):
        """The speed/cost tension: doubling the batch lowers the per-job cost."""
        model = AnalyticalPerformanceModel()
        pricing = PricingModel()
        spec = get_function_spec("super_resolution")
        small_cfg = Configuration(batch, vcpus, vgpus)
        large_cfg = Configuration(batch * 2, vcpus, vgpus)
        small_cost = pricing.per_job_cost_cents(small_cfg, model.latency_ms(spec, small_cfg))
        large_cost = pricing.per_job_cost_cents(large_cfg, model.latency_ms(spec, large_cfg))
        assert large_cost < small_cost

    @given(batch=batch_strategy, vcpus=vcpu_strategy, vgpus=vgpu_strategy)
    def test_latency_always_positive(self, batch, vcpus, vgpus):
        model = AnalyticalPerformanceModel()
        for name in ALL_FUNCTIONS:
            assert model.latency_ms(get_function_spec(name), Configuration(batch, vcpus, vgpus)) > 0


class TestThroughput:
    def test_throughput_is_batch_over_latency(self, perf_model):
        spec = get_function_spec("segmentation")
        cfg = Configuration(4, 2, 2)
        latency = perf_model.latency_ms(spec, cfg)
        assert perf_model.throughput_jobs_per_s(spec, cfg) == pytest.approx(4 * 1000.0 / latency)

    def test_richest_config_has_much_lower_latency_than_minimum(self, perf_model):
        """The configuration space must give real head-room below the minimum
        configuration, otherwise the strict SLO (0.8 x L) is unattainable."""
        spec = get_function_spec("depth_recognition")
        minimum = perf_model.latency_ms(spec, Configuration(1, 1, 1))
        rich = perf_model.latency_ms(spec, Configuration(1, 16, 7))
        assert rich < 0.5 * minimum


class TestModelParameters:
    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            AnalyticalPerformanceModel(batch_overhead_fraction=1.5)
        with pytest.raises(ValueError):
            AnalyticalPerformanceModel(gpu_parallel_fraction=-0.1)
        with pytest.raises(ValueError):
            AnalyticalPerformanceModel(cpu_parallel_fraction=2.0)

    def test_vgpu_speedup_monotone_and_bounded(self):
        model = AnalyticalPerformanceModel(gpu_parallel_fraction=0.9)
        speedups = [model.vgpu_speedup(g) for g in range(1, 8)]
        assert speedups[0] == pytest.approx(1.0)
        assert all(b > a for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] < 7.0  # sub-linear


class TestNoisyModel:
    def test_zero_sigma_equals_base(self):
        base = AnalyticalPerformanceModel()
        noisy = NoisyPerformanceModel(base=base, rng=derive_rng(0, "t"), sigma=0.0)
        spec = get_function_spec("deblur")
        cfg = Configuration(2, 2, 2)
        assert noisy.latency_ms(spec, cfg) == base.latency_ms(spec, cfg)

    def test_noise_is_reproducible_with_same_seed(self):
        base = AnalyticalPerformanceModel()
        spec = get_function_spec("deblur")
        cfg = Configuration(1, 1, 1)
        a = NoisyPerformanceModel(base=base, rng=derive_rng(7, "noise"), sigma=0.1)
        b = NoisyPerformanceModel(base=base, rng=derive_rng(7, "noise"), sigma=0.1)
        assert [a.latency_ms(spec, cfg) for _ in range(5)] == [
            b.latency_ms(spec, cfg) for _ in range(5)
        ]

    def test_noise_respects_floor(self):
        base = AnalyticalPerformanceModel()
        spec = get_function_spec("classification")
        cfg = Configuration(1, 1, 1)
        noisy = NoisyPerformanceModel(
            base=base, rng=derive_rng(3, "floor"), sigma=3.0, floor_fraction=0.5
        )
        mean = base.latency_ms(spec, cfg)
        for _ in range(200):
            assert noisy.latency_ms(spec, cfg) >= 0.5 * mean

    def test_mean_latency_is_deterministic(self):
        base = AnalyticalPerformanceModel()
        noisy = NoisyPerformanceModel(base=base, rng=derive_rng(1, "m"), sigma=0.2)
        spec = get_function_spec("segmentation")
        cfg = Configuration(4, 4, 4)
        assert noisy.mean_latency_ms(spec, cfg) == base.latency_ms(spec, cfg)

    def test_draw_counter_increments(self):
        noisy = NoisyPerformanceModel(
            base=AnalyticalPerformanceModel(), rng=derive_rng(2, "d"), sigma=0.1
        )
        spec = get_function_spec("deblur")
        for _ in range(3):
            noisy.latency_ms(spec, Configuration(1, 1, 1))
        assert noisy.draws == 3
