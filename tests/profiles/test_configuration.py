"""Tests for the configuration triple and configuration spaces."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.profiles.configuration import (
    Configuration,
    ConfigurationSpace,
    product_space_size,
)


class TestConfiguration:
    def test_fields_and_tuple(self):
        cfg = Configuration(batch_size=2, vcpus=4, vgpus=1)
        assert cfg.as_tuple() == (2, 4, 1)

    def test_rejects_non_positive_values(self):
        with pytest.raises(ValueError):
            Configuration(batch_size=0, vcpus=1, vgpus=1)
        with pytest.raises(ValueError):
            Configuration(batch_size=1, vcpus=-1, vgpus=1)
        with pytest.raises(ValueError):
            Configuration(batch_size=1, vcpus=1, vgpus=0)

    def test_with_batch_preserves_resources(self):
        cfg = Configuration(batch_size=8, vcpus=4, vgpus=2)
        clipped = cfg.with_batch(3)
        assert clipped.batch_size == 3
        assert clipped.vcpus == 4
        assert clipped.vgpus == 2

    def test_is_hashable_and_comparable(self):
        a = Configuration(1, 1, 1)
        b = Configuration(1, 1, 2)
        assert a < b
        assert len({a, b, Configuration(1, 1, 1)}) == 2

    def test_str_mentions_all_dimensions(self):
        text = str(Configuration(2, 4, 7))
        assert "2" in text and "4" in text and "7" in text


class TestConfigurationSpace:
    def test_size_is_product_of_option_counts(self):
        space = ConfigurationSpace(batch_options=(1, 2), vcpu_options=(1, 4), vgpu_options=(1, 2, 7))
        assert space.size == 2 * 2 * 3
        assert len(list(space)) == space.size

    def test_options_are_sorted(self):
        space = ConfigurationSpace(batch_options=(4, 1, 2), vcpu_options=(8, 1), vgpu_options=(7, 1))
        assert space.batch_options == (1, 2, 4)
        assert space.vcpu_options == (1, 8)
        assert space.vgpu_options == (1, 7)

    def test_minimum_and_maximum(self):
        space = ConfigurationSpace.small()
        assert space.minimum == Configuration(1, 1, 1)
        assert space.maximum == Configuration(4, 4, 2)

    def test_contains(self):
        space = ConfigurationSpace.small()
        assert Configuration(2, 2, 1) in space
        assert Configuration(16, 2, 1) not in space

    def test_rejects_empty_or_duplicate_options(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(batch_options=())
        with pytest.raises(ValueError):
            ConfigurationSpace(batch_options=(1, 1, 2))
        with pytest.raises(ValueError):
            ConfigurationSpace(vgpu_options=(0, 1))

    def test_restrict_batch_caps_options(self):
        space = ConfigurationSpace(batch_options=(1, 2, 4, 8))
        restricted = space.restrict_batch(3)
        assert restricted.batch_options == (1, 2)
        assert restricted.vcpu_options == space.vcpu_options

    def test_restrict_batch_keeps_at_least_smallest(self):
        space = ConfigurationSpace(batch_options=(2, 4))
        restricted = space.restrict_batch(1)
        assert restricted.batch_options == (2,)

    def test_paper_256_space_size(self):
        assert ConfigurationSpace.paper_256().size == 256

    def test_product_space_size_matches_paper_explosion(self):
        # Section 1: m=5 options, k=7 functions -> 78125 without GPU sharing.
        space = ConfigurationSpace(batch_options=(1,), vcpu_options=(1, 2, 3, 4, 5), vgpu_options=(1,))
        assert product_space_size(space, 7) == 5**7

    @given(st.integers(min_value=1, max_value=20))
    def test_restrict_batch_never_exceeds_cap_when_possible(self, cap):
        space = ConfigurationSpace(batch_options=(1, 2, 4, 8, 16))
        restricted = space.restrict_batch(cap)
        if cap >= 1:
            smallest = space.batch_options[0]
            assert all(b <= max(cap, smallest) for b in restricted.batch_options)

    def test_configurations_are_unique(self):
        space = ConfigurationSpace.small()
        configs = space.configurations()
        assert len(set(configs)) == len(configs)
