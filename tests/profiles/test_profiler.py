"""Tests for the profile tables (FunctionProfile / ProfileStore)."""

from __future__ import annotations

import pytest

from repro.profiles.configuration import Configuration, ConfigurationSpace
from repro.profiles.perf_model import AnalyticalPerformanceModel
from repro.profiles.pricing import PricingModel
from repro.profiles.profiler import FunctionProfile, ProfileEntry, ProfileStore
from repro.profiles.specs import FunctionSpec, get_function_spec


class TestProfileEntry:
    def test_rejects_non_positive_latency(self):
        with pytest.raises(ValueError):
            ProfileEntry(Configuration(1, 1, 1), latency_ms=0.0, task_cost_cents=1.0, per_job_cost_cents=1.0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            ProfileEntry(Configuration(1, 1, 1), latency_ms=1.0, task_cost_cents=-1.0, per_job_cost_cents=1.0)


class TestFunctionProfile:
    def test_entries_cover_whole_space(self, small_store, small_space):
        profile = small_store.profile("deblur")
        assert len(profile) == small_space.size
        for config in small_space:
            assert config in profile

    def test_sorted_by_latency_is_monotone(self, small_store):
        profile = small_store.profile("segmentation")
        latencies = [e.latency_ms for e in profile.sorted_by_latency()]
        assert latencies == sorted(latencies)

    def test_sorted_by_cost_is_monotone(self, small_store):
        profile = small_store.profile("segmentation")
        costs = [e.per_job_cost_cents for e in profile.sorted_by_cost()]
        assert costs == sorted(costs)

    def test_max_batch_filter(self, small_store):
        profile = small_store.profile("classification")
        filtered = profile.sorted_by_latency(max_batch=2)
        assert all(e.config.batch_size <= 2 for e in filtered)
        assert len(filtered) < len(profile.sorted_by_latency())

    def test_min_latency_and_cost_are_consistent(self, small_store):
        profile = small_store.profile("super_resolution")
        all_entries = profile.sorted_by_latency()
        assert profile.min_latency_ms == min(e.latency_ms for e in all_entries)
        assert profile.min_per_job_cost_cents == min(e.per_job_cost_cents for e in all_entries)
        assert profile.fastest_entry.latency_ms == profile.min_latency_ms

    def test_unknown_config_raises(self, small_store):
        profile = small_store.profile("deblur")
        with pytest.raises(KeyError, match="deblur"):
            profile.entry(Configuration(64, 64, 64))

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            FunctionProfile(spec=get_function_spec("deblur"), entries={})


class TestProfileStore:
    def test_build_defaults_cover_all_registered_functions(self, small_store):
        assert set(small_store.function_names()) >= {
            "super_resolution",
            "segmentation",
            "deblur",
            "classification",
            "background_removal",
            "depth_recognition",
        }

    def test_unknown_function_raises_with_suggestions(self, small_store):
        with pytest.raises(KeyError, match="available"):
            small_store.profile("nope")

    def test_contains(self, small_store):
        assert "deblur" in small_store
        assert "nope" not in small_store

    def test_minimum_config_latency_is_sum_of_base_times(self, small_store):
        total = small_store.minimum_config_latency_ms(["super_resolution", "segmentation", "classification"])
        expected = 86.0 + 293.0 + 147.0
        assert total == pytest.approx(expected, rel=1e-9)

    def test_cost_entries_match_pricing_model(self, small_store):
        pricing = small_store.pricing
        profile = small_store.profile("depth_recognition")
        for entry in profile.sorted_by_latency()[:5]:
            expected = pricing.task_cost_cents(entry.config, entry.latency_ms)
            assert entry.task_cost_cents == pytest.approx(expected)
            assert entry.per_job_cost_cents == pytest.approx(expected / entry.config.batch_size)

    def test_build_with_custom_specs(self):
        specs = {
            "tiny": FunctionSpec(
                name="tiny", model_name="T", base_exec_ms=10.0, cold_start_ms=50.0, input_mb=0.1
            )
        }
        store = ProfileStore.build(
            ["tiny"],
            space=ConfigurationSpace.small(),
            perf_model=AnalyticalPerformanceModel(),
            pricing=PricingModel(),
            specs=specs,
        )
        assert store.function_names() == ["tiny"]
        assert store.profile("tiny").latency_ms(Configuration(1, 1, 1)) == pytest.approx(10.0)
