"""Tests for the Table 3 function specifications."""

from __future__ import annotations

import pytest

from repro.profiles.specs import (
    FUNCTION_SPECS,
    FunctionSpec,
    get_function_spec,
    list_function_names,
    register_function_spec,
)


class TestTable3Values:
    """The published Table 3 numbers must stay intact."""

    @pytest.mark.parametrize(
        "name, exec_ms, cold_ms, input_mb, model",
        [
            ("super_resolution", 86.0, 3503.0, 2.7, "SRGAN"),
            ("segmentation", 293.0, 16510.0, 2.5, "deeplabv3_resnet50"),
            ("deblur", 319.0, 22343.0, 1.1, "DeblurGAN"),
            ("classification", 147.0, 18299.0, 0.147, "ResNet50"),
            ("background_removal", 1047.0, 3729.0, 2.5, "U2Net"),
            ("depth_recognition", 828.0, 16479.0, 0.648, "MiDaS"),
        ],
    )
    def test_table3_row(self, name, exec_ms, cold_ms, input_mb, model):
        spec = get_function_spec(name)
        assert spec.base_exec_ms == exec_ms
        assert spec.cold_start_ms == cold_ms
        assert spec.input_mb == input_mb
        assert spec.model_name == model

    def test_exactly_six_functions_registered_by_default(self):
        paper_functions = {
            "super_resolution",
            "segmentation",
            "deblur",
            "classification",
            "background_removal",
            "depth_recognition",
        }
        assert paper_functions.issubset(set(FUNCTION_SPECS))


class TestFunctionSpec:
    def test_cpu_gpu_split_sums_to_base(self):
        spec = get_function_spec("deblur")
        assert spec.cpu_ms + spec.gpu_ms == pytest.approx(spec.base_exec_ms)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FunctionSpec(name="x", model_name="m", base_exec_ms=0.0, cold_start_ms=1.0, input_mb=1.0)
        with pytest.raises(ValueError):
            FunctionSpec(name="x", model_name="m", base_exec_ms=10.0, cold_start_ms=-1.0, input_mb=1.0)
        with pytest.raises(ValueError):
            FunctionSpec(
                name="x", model_name="m", base_exec_ms=10.0, cold_start_ms=1.0, input_mb=1.0, cpu_fraction=1.5
            )
        with pytest.raises(ValueError):
            FunctionSpec(name="", model_name="m", base_exec_ms=10.0, cold_start_ms=1.0, input_mb=1.0)


class TestRegistry:
    def test_get_unknown_function_lists_available(self):
        with pytest.raises(KeyError, match="super_resolution"):
            get_function_spec("definitely_not_a_function")

    def test_list_function_names_sorted(self):
        names = list_function_names()
        assert names == sorted(names)

    def test_register_custom_spec(self):
        spec = FunctionSpec(
            name="test_custom_fn", model_name="TinyNet", base_exec_ms=10.0, cold_start_ms=100.0, input_mb=0.5
        )
        register_function_spec(spec)
        try:
            assert get_function_spec("test_custom_fn") is spec
            with pytest.raises(ValueError):
                register_function_spec(spec)
            register_function_spec(spec, overwrite=True)
        finally:
            del FUNCTION_SPECS["test_custom_fn"]
