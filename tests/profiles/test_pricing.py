"""Tests for the pricing model, anchored at the paper's own numbers."""

from __future__ import annotations

import pytest

from repro.profiles.configuration import Configuration
from repro.profiles.pricing import PricingModel


class TestDefaults:
    def test_paper_prices(self):
        pricing = PricingModel()
        assert pricing.vcpu_dollars_per_hour == pytest.approx(0.034)
        assert pricing.vgpu_dollars_per_hour == pytest.approx(0.67)

    def test_rates_convert_to_cents_per_ms(self):
        pricing = PricingModel()
        # 0.034 $/h = 3.4 cents / 3.6e6 ms.
        assert pricing.vcpu_cents_per_ms == pytest.approx(3.4 / 3_600_000.0)
        assert pricing.vgpu_cents_per_ms == pytest.approx(67.0 / 3_600_000.0)


class TestFigure3Example:
    """Figure 3's worked example: (0.04*4 + 0.8) * 0.9 / 2 = 0.43 cents."""

    def test_per_job_cost_matches_paper(self):
        pricing = PricingModel.figure3_example()
        config = Configuration(batch_size=2, vcpus=4, vgpus=1)
        cost = pricing.per_job_cost_cents(config, duration_ms=900.0)
        assert cost == pytest.approx((0.04 * 4 + 0.8) * 0.9 / 2, rel=1e-6)

    def test_unit_prices_match_paper(self):
        pricing = PricingModel.figure3_example()
        # 1 vCPU: 0.04 cents/s, 1 vGPU: 0.8 cents/s.
        assert pricing.vcpu_cents_per_ms * 1000.0 == pytest.approx(0.04)
        assert pricing.vgpu_cents_per_ms * 1000.0 == pytest.approx(0.8)


class TestCostArithmetic:
    def test_task_cost_scales_linearly_with_duration(self):
        pricing = PricingModel()
        cfg = Configuration(1, 2, 3)
        assert pricing.task_cost_cents(cfg, 200.0) == pytest.approx(
            2 * pricing.task_cost_cents(cfg, 100.0)
        )

    def test_per_job_cost_divides_by_batch(self):
        pricing = PricingModel()
        cfg = Configuration(4, 2, 2)
        task = pricing.task_cost_cents(cfg, 500.0)
        assert pricing.per_job_cost_cents(cfg, 500.0) == pytest.approx(task / 4)

    def test_more_resources_cost_more(self):
        pricing = PricingModel()
        cheap = pricing.task_cost_cents(Configuration(1, 1, 1), 100.0)
        rich = pricing.task_cost_cents(Configuration(1, 8, 7), 100.0)
        assert rich > cheap

    def test_zero_duration_costs_nothing(self):
        pricing = PricingModel()
        assert pricing.task_cost_cents(Configuration(1, 1, 1), 0.0) == 0.0

    def test_negative_duration_rejected(self):
        pricing = PricingModel()
        with pytest.raises(ValueError):
            pricing.task_cost_cents(Configuration(1, 1, 1), -1.0)

    def test_negative_prices_rejected(self):
        with pytest.raises(ValueError):
            PricingModel(vcpu_dollars_per_hour=-1.0)
        with pytest.raises(ValueError):
            PricingModel(vgpu_dollars_per_hour=-0.5)
