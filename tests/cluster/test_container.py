"""Tests for the container / function-residency lifecycle."""

from __future__ import annotations

import pytest

from repro.cluster.container import Container, ContainerState


def make_container(**kwargs) -> Container:
    defaults = dict(function_name="deblur", invoker_id=0)
    defaults.update(kwargs)
    return Container(**defaults)


class TestLifecycle:
    def test_starting_container_not_resident_before_warm_time(self):
        c = make_container(state=ContainerState.STARTING, warm_at_ms=100.0)
        assert not c.is_resident(50.0)
        assert not c.is_warm_idle(50.0)

    def test_mark_warm_arms_keep_alive(self):
        c = make_container(state=ContainerState.STARTING, warm_at_ms=100.0)
        c.mark_warm(100.0, keep_alive_ms=1000.0)
        assert c.state == ContainerState.WARM
        assert c.is_resident(100.0)
        assert c.is_warm_idle(500.0)
        assert not c.is_warm_idle(1200.0)
        assert c.is_expired(1200.0)

    def test_assign_and_release_task(self):
        c = make_container(state=ContainerState.WARM, warm_at_ms=0.0)
        c.mark_warm(0.0, keep_alive_ms=1000.0)
        c.assign_task()
        assert c.state == ContainerState.BUSY
        assert c.is_resident(5000.0)  # busy containers never expire
        c.assign_task()
        assert c.active_tasks == 2
        c.release_task(100.0, keep_alive_ms=1000.0)
        assert c.state == ContainerState.BUSY
        c.release_task(200.0, keep_alive_ms=1000.0)
        assert c.state == ContainerState.WARM
        assert c.expires_at_ms == pytest.approx(1200.0)

    def test_release_without_task_rejected(self):
        c = make_container(state=ContainerState.WARM)
        with pytest.raises(RuntimeError):
            c.release_task(10.0)

    def test_stopped_container_rejects_operations(self):
        c = make_container(state=ContainerState.WARM)
        c.mark_warm(0.0, keep_alive_ms=10.0)
        c.mark_stopped()
        assert c.state == ContainerState.STOPPED
        with pytest.raises(RuntimeError):
            c.assign_task()
        with pytest.raises(RuntimeError):
            c.mark_warm(20.0)

    def test_cannot_stop_with_active_tasks(self):
        c = make_container(state=ContainerState.WARM)
        c.mark_warm(0.0)
        c.assign_task()
        with pytest.raises(RuntimeError):
            c.mark_stopped()

    def test_cannot_warm_with_active_tasks(self):
        c = make_container(state=ContainerState.WARM)
        c.mark_warm(0.0)
        c.assign_task()
        with pytest.raises(RuntimeError):
            c.mark_warm(10.0)

    def test_container_ids_are_unique(self):
        assert make_container().container_id != make_container().container_id
