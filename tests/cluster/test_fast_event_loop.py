"""Randomized equivalence fuzz: :class:`FastEventLoop` vs. the compat loop.

The fast loop's split-heap design rests on one claim: with a single shared
push counter, interleaving a real heap and a housekeeping heap and always
popping the smaller head reproduces the compat single-heap pop sequence
*exactly*.  These tests drive both implementations (plus a brute-force
sorted-list reference) through seeded random push/pop interleavings built
to stress the claim where it could break — exact-time collisions,
``sort_priority`` ties between arrivals and ticks, and dense mixes of
housekeeping timers — and assert identical observable behaviour at every
step.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.container import Container
from repro.cluster.events import (
    ContainerExpireEvent,
    RequestArrivalEvent,
    SchedulerTickEvent,
)
from repro.cluster.simulator import EventLoop, FastEventLoop
from repro.workloads.applications import image_classification
from repro.workloads.request import Request

#: Deliberately tiny time palette: with ~2000 ops drawing from 8 values,
#: exact-time collisions (the FIFO/sort_priority tie-break cases) dominate.
TIME_PALETTE = (0.0, 1.0, 1.0, 2.0, 5.0, 5.0, 7.5, 10.0)


def _shared_request() -> Request:
    return Request(
        request_id=0, workflow=image_classification(), arrival_ms=0.0, slo_ms=1000.0
    )


def _shared_container() -> Container:
    return Container(function_name="f", invoker_id=0)


def make_event(rng: random.Random, request: Request, container: Container):
    """One random event: tick (priority 1), arrival (priority 0, outranks
    same-time ticks) or expiry timer (housekeeping, invisible to the
    real-only queries)."""
    time_ms = rng.choice(TIME_PALETTE)
    kind = rng.randrange(3)
    if kind == 0:
        return SchedulerTickEvent(time_ms=time_ms)
    if kind == 1:
        return RequestArrivalEvent(time_ms=time_ms, request=request)
    return ContainerExpireEvent(time_ms=time_ms, container=container)


class ReferenceLoop:
    """Brute-force model: a list re-sorted by the documented total order."""

    def __init__(self) -> None:
        self._entries: list[tuple[float, int, int, object]] = []
        self._counter = 0

    def push(self, event) -> None:
        self._entries.append(
            (event.time_ms, event.sort_priority, self._counter, event)
        )
        self._counter += 1
        self._entries.sort(key=lambda entry: entry[:3])

    def pop(self):
        return self._entries.pop(0)[3]

    def peek_time(self) -> float:
        return self._entries[0][0]

    def real_times(self) -> list[float]:
        return [e.time_ms for *_, e in self._entries if not e.housekeeping]

    def __len__(self) -> int:
        return len(self._entries)


def assert_observables_agree(fast: FastEventLoop, compat: EventLoop, ref: ReferenceLoop):
    assert len(fast) == len(compat) == len(ref)
    assert fast.empty == compat.empty == (len(ref) == 0)
    assert fast.has_real == compat.has_real == bool(ref.real_times())
    if len(ref):
        assert fast.peek_time() == compat.peek_time() == ref.peek_time()
    if ref.real_times():
        assert (
            fast.peek_real_time()
            == compat.peek_real_time()
            == ref.real_times()[0]
        )


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 17, 1234])
def test_fuzz_pop_sequences_identical(seed):
    """~2000 random ops: every pop returns the *same object* from all three
    implementations, and every observable query agrees at every step."""
    rng = random.Random(seed)
    request = _shared_request()
    container = _shared_container()
    fast, compat, ref = FastEventLoop(), EventLoop(), ReferenceLoop()

    for _ in range(2000):
        if len(ref) and rng.random() < 0.45:
            popped_fast = fast.pop()
            popped_compat = compat.pop()
            popped_ref = ref.pop()
            assert popped_fast is popped_compat is popped_ref
        else:
            event = make_event(rng, request, container)
            fast.push(event)
            compat.push(event)
            ref.push(event)
        assert_observables_agree(fast, compat, ref)

    # Drain: the remaining backlog pops identically too.
    while len(ref):
        assert fast.pop() is compat.pop() is ref.pop()
        assert_observables_agree(fast, compat, ref)
    assert fast.empty and compat.empty


@pytest.mark.parametrize("seed", [5, 6, 7])
def test_fuzz_housekeeping_heavy_mix(seed):
    """Housekeeping-dominant workloads (the keep-alive-timer regime): the
    real-only queries must still track only productive events."""
    rng = random.Random(seed)
    request = _shared_request()
    container = _shared_container()
    fast, compat, ref = FastEventLoop(), EventLoop(), ReferenceLoop()

    for _ in range(1000):
        roll = rng.random()
        if len(ref) and roll < 0.4:
            assert fast.pop() is compat.pop() is ref.pop()
        elif roll < 0.85 or not len(ref):
            # 75% of pushes are expiry timers.
            time_ms = rng.choice(TIME_PALETTE)
            if rng.random() < 0.75:
                event = ContainerExpireEvent(time_ms=time_ms, container=container)
            else:
                event = RequestArrivalEvent(time_ms=time_ms, request=request)
            fast.push(event)
            compat.push(event)
            ref.push(event)
        assert_observables_agree(fast, compat, ref)


class TestFastEventLoopEdges:
    """The non-fuzz edge contract, mirroring the compat EventLoop tests."""

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FastEventLoop().pop()

    def test_peek_time_empty_raises(self):
        with pytest.raises(IndexError):
            FastEventLoop().peek_time()

    def test_peek_real_time_with_only_housekeeping_raises(self):
        loop = FastEventLoop()
        loop.push(ContainerExpireEvent(time_ms=5.0, container=_shared_container()))
        assert not loop.has_real
        assert not loop.empty
        assert loop.peek_time() == 5.0
        with pytest.raises(IndexError):
            loop.peek_real_time()

    def test_arrival_outranks_same_time_tick(self):
        loop = FastEventLoop()
        tick = SchedulerTickEvent(time_ms=5.0)
        arrival = RequestArrivalEvent(time_ms=5.0, request=_shared_request())
        loop.push(tick)
        loop.push(arrival)  # pushed later but lower sort_priority
        assert loop.pop() is arrival
        assert loop.pop() is tick

    def test_housekeeping_interleaves_in_global_time_order(self):
        loop = FastEventLoop()
        container = _shared_container()
        expire_early = ContainerExpireEvent(time_ms=1.0, container=container)
        tick = SchedulerTickEvent(time_ms=2.0)
        expire_late = ContainerExpireEvent(time_ms=3.0, container=container)
        loop.push(tick)
        loop.push(expire_late)
        loop.push(expire_early)
        assert loop.peek_time() == 1.0
        assert loop.peek_real_time() == 2.0
        assert [loop.pop() for _ in range(3)] == [expire_early, tick, expire_late]

    def test_fifo_among_equal_keys(self):
        loop = FastEventLoop()
        events = [SchedulerTickEvent(time_ms=5.0) for _ in range(10)]
        for event in events:
            loop.push(event)
        assert [loop.pop() for _ in range(10)] == events

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FastEventLoop().push(SchedulerTickEvent(time_ms=-0.5))
