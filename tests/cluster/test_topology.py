"""Tests for cluster topologies: registry, parsing and scenario threading."""

from __future__ import annotations

import pickle

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.topology import (
    TOPOLOGIES,
    ClusterTopology,
    get_topology,
    parse_topology,
    register_topology,
    topology_names,
)
from repro.workloads.scenarios import Scenario


class TestTopology:
    def test_builtins_cover_the_sweep_range(self):
        names = topology_names()
        assert "paper-16" in names
        assert "datacenter-1024" in names
        assert get_topology("paper-16").num_invokers == 16
        assert get_topology("pod-256").num_invokers == 256
        assert get_topology("datacenter-1024").total_vgpus == 1024 * 7

    def test_to_cluster_config(self):
        config = get_topology("rack-64").to_cluster_config()
        assert config == ClusterConfig(num_invokers=64)
        scan = get_topology("rack-64").to_cluster_config(index_mode="scan")
        assert scan.index_mode == "scan"

    def test_get_passes_objects_through(self):
        topology = ClusterTopology(name="adhoc", num_invokers=3)
        assert get_topology(topology) is topology

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(KeyError, match="paper-16"):
            get_topology("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(name="", num_invokers=4)
        with pytest.raises(ValueError):
            ClusterTopology(name="bad", num_invokers=0)
        with pytest.raises(ValueError):
            ClusterTopology(name="bad", num_invokers=4, keep_alive_ms=0.0)

    def test_register_refuses_silent_redefinition(self):
        with pytest.raises(ValueError, match="replace=True"):
            register_topology(ClusterTopology(name="paper-16", num_invokers=1))

    def test_topologies_are_picklable(self):
        topology = get_topology("pod-256")
        assert pickle.loads(pickle.dumps(topology)) == topology


class TestParseTopology:
    def test_registered_name(self):
        assert parse_topology("pod-256") is TOPOLOGIES.get("pod-256")

    def test_bare_invoker_count(self):
        topology = parse_topology("48")
        assert topology.num_invokers == 48
        assert topology.vcpus_per_invoker == 16  # paper per-node shape kept

    def test_full_spec(self):
        topology = parse_topology("128x8x4")
        assert (topology.num_invokers, topology.vcpus_per_invoker, topology.vgpus_per_invoker) == (
            128,
            8,
            4,
        )

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="registered name"):
            parse_topology("banana")
        with pytest.raises(ValueError):
            parse_topology("8x8")


class TestScenarioTopology:
    def test_scenario_resolves_topology_names_eagerly(self):
        scenario = Scenario(
            name="t-scale",
            description="test",
            setting="moderate-normal",
            topology="pod-256",
        )
        assert isinstance(scenario.topology, ClusterTopology)
        assert scenario.topology.num_invokers == 256

    def test_unknown_topology_name_fails_at_construction(self):
        with pytest.raises(KeyError):
            Scenario(
                name="t-bad", description="test", setting="moderate-normal", topology="nope"
            )

    def test_scenario_with_topology_is_picklable(self):
        scenario = Scenario(
            name="t-pickle",
            description="test",
            setting="moderate-normal",
            topology="rack-64",
        )
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone.topology == scenario.topology


class TestRunnerAppliesScenarioTopology:
    @pytest.fixture(scope="class")
    def store(self):
        from repro.experiments.runner import build_profile_store

        return build_profile_store()

    def test_scenario_topology_sizes_the_cluster(self, store):
        from repro.experiments.runner import ExperimentConfig, run_experiment

        # Sanity anchor: on the paper's 16 nodes, ESG's home-invoker hashing
        # spreads the four applications beyond nodes {0, 1}.
        default = run_experiment(
            "ESG", "moderate-normal", config=ExperimentConfig(num_requests=6), profile_store=store
        )
        assert max(t.invoker_id for t in default.metrics.tasks) > 1

        scenario = Scenario(
            name="t-mini-cluster",
            description="test",
            setting="moderate-normal",
            stream="moderate-normal",
            topology=ClusterTopology(name="mini", num_invokers=2),
        )
        result = run_experiment(
            "ESG",
            config=ExperimentConfig(num_requests=6),
            profile_store=store,
            scenario=scenario,
        )
        assert max(t.invoker_id for t in result.metrics.tasks) <= 1

    def test_explicit_cluster_config_beats_scenario_topology(self, store):
        from repro.experiments.runner import ExperimentConfig, run_experiment

        scenario = Scenario(
            name="t-overridden",
            description="test",
            setting="moderate-normal",
            stream="moderate-normal",
            topology=ClusterTopology(name="mini", num_invokers=2),
        )
        result = run_experiment(
            "ESG",
            config=ExperimentConfig(
                num_requests=6, cluster=ClusterConfig(num_invokers=8)
            ),
            profile_store=store,
            scenario=scenario,
        )
        # The explicit (non-default) cluster config wins over the scenario's
        # pinned topology, so placement spreads past the 2-node mini cluster.
        assert max(t.invoker_id for t in result.metrics.tasks) > 1

    def test_scenario_topology_applies_in_scan_mode_too(self, store):
        # index_mode is orthogonal to the cluster *shape*: a scan-mode
        # parity run of a topology-pinned scenario must use the pinned size
        # (and keep scan mode), or indexed-vs-scan comparisons would
        # silently compare different clusters.
        from repro.experiments.runner import ExperimentConfig, run_experiment

        scenario = Scenario(
            name="t-scan-topology",
            description="test",
            setting="moderate-normal",
            stream="moderate-normal",
            topology=ClusterTopology(name="mini", num_invokers=2),
        )
        indexed = run_experiment(
            "ESG",
            config=ExperimentConfig(num_requests=6),
            profile_store=store,
            scenario=scenario,
        )
        scan = run_experiment(
            "ESG",
            config=ExperimentConfig(num_requests=6, cluster=ClusterConfig(index_mode="scan")),
            profile_store=store,
            scenario=scenario,
        )
        assert max(t.invoker_id for t in scan.metrics.tasks) <= 1
        assert indexed.summary == scan.summary

    def test_orthogonal_keep_alive_override_composes_with_scenario_topology(self, store):
        # keep_alive_ms is not part of the cluster *shape*: tuning it must
        # not silently disable the scenario's pinned topology.
        from repro.experiments.runner import ExperimentConfig, run_experiment

        scenario = Scenario(
            name="t-keepalive-topology",
            description="test",
            setting="moderate-normal",
            stream="moderate-normal",
            topology=ClusterTopology(name="mini", num_invokers=2),
        )
        result = run_experiment(
            "ESG",
            config=ExperimentConfig(
                num_requests=6, cluster=ClusterConfig(keep_alive_ms=30_000.0)
            ),
            profile_store=store,
            scenario=scenario,
        )
        assert max(t.invoker_id for t in result.metrics.tasks) <= 1

    def test_cluster_pinned_flag_beats_scenario_topology_even_at_the_default(self, store):
        from repro.experiments.runner import ExperimentConfig, run_experiment

        scenario = Scenario(
            name="t-pinned-default",
            description="test",
            setting="moderate-normal",
            stream="moderate-normal",
            topology=ClusterTopology(name="mini", num_invokers=2),
        )
        # `--topology paper-16` on the CLI resolves to the default-shaped
        # ClusterConfig; the pinned flag must still make it win.
        result = run_experiment(
            "ESG",
            config=ExperimentConfig(
                num_requests=6, cluster=ClusterConfig(), cluster_pinned=True
            ),
            profile_store=store,
            scenario=scenario,
        )
        assert max(t.invoker_id for t in result.metrics.tasks) > 1
