"""Tests for the event types, the event loop and the simulation driver."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.cluster.controller import ControllerConfig
from repro.cluster.events import (
    Event,
    RequestArrivalEvent,
    SchedulerTickEvent,
)
from repro.cluster.simulator import EventLoop, Simulation, SimulationConfig
from repro.experiments.runner import (
    EXPERIMENT_SPACE,
    build_profile_store,
    build_requests,
    make_policy,
)
from repro.workloads.applications import image_classification
from repro.workloads.request import Request


def make_request(arrival_ms: float = 0.0) -> Request:
    return Request(
        request_id=0, workflow=image_classification(), arrival_ms=arrival_ms, slo_ms=1000.0
    )


class TestEvents:
    def test_negative_time_rejected_at_push(self):
        # Events are slotted and validation-free per instance; the
        # ``time_ms >= 0`` invariant is enforced once at the scheduling
        # boundary, by both event-loop implementations.
        event = SchedulerTickEvent(time_ms=-1.0)
        with pytest.raises(ValueError):
            EventLoop().push(event)
        from repro.cluster.simulator import FastEventLoop

        with pytest.raises(ValueError):
            FastEventLoop().push(event)

    def test_arrival_event_holds_request(self):
        request = make_request(5.0)
        event = RequestArrivalEvent(time_ms=5.0, request=request)
        assert event.request is request
        assert isinstance(event, Event)


class TestEventLoop:
    def test_pops_in_time_order(self):
        loop = EventLoop()
        loop.push(SchedulerTickEvent(time_ms=30.0))
        loop.push(SchedulerTickEvent(time_ms=10.0))
        loop.push(SchedulerTickEvent(time_ms=20.0))
        times = [loop.pop().time_ms for _ in range(3)]
        assert times == [10.0, 20.0, 30.0]

    def test_ties_broken_by_insertion_order(self):
        loop = EventLoop()
        first = RequestArrivalEvent(time_ms=5.0, request=make_request())
        second = SchedulerTickEvent(time_ms=5.0)
        loop.push(first)
        loop.push(second)
        assert loop.pop() is first
        assert loop.pop() is second

    def test_len_and_empty(self):
        loop = EventLoop()
        assert loop.empty
        loop.push(SchedulerTickEvent(time_ms=1.0))
        assert len(loop) == 1
        assert not loop.empty
        loop.pop()
        assert loop.empty

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventLoop().pop()

    def test_peek_time(self):
        loop = EventLoop()
        loop.push(SchedulerTickEvent(time_ms=42.0))
        assert loop.peek_time() == 42.0
        with pytest.raises(IndexError):
            EventLoop().peek_time()

    def test_peek_does_not_consume(self):
        loop = EventLoop()
        loop.push(SchedulerTickEvent(time_ms=7.0))
        assert loop.peek_time() == 7.0
        assert len(loop) == 1
        assert loop.pop().time_ms == 7.0


class TestEventLoopDeterminism:
    """The event loop must be a deterministic total order: time, then FIFO."""

    def test_fifo_preserved_among_many_equal_times(self):
        loop = EventLoop()
        events = [RequestArrivalEvent(time_ms=5.0, request=make_request(5.0)) for _ in range(10)]
        for event in events:
            loop.push(event)
        assert [loop.pop() for _ in range(10)] == events

    def test_heap_order_under_interleaved_pushes_and_pops(self):
        loop = EventLoop()
        loop.push(SchedulerTickEvent(time_ms=30.0))
        loop.push(SchedulerTickEvent(time_ms=10.0))
        assert loop.pop().time_ms == 10.0
        loop.push(SchedulerTickEvent(time_ms=5.0))
        loop.push(SchedulerTickEvent(time_ms=20.0))
        assert loop.pop().time_ms == 5.0
        loop.push(SchedulerTickEvent(time_ms=15.0))
        assert [loop.pop().time_ms for _ in range(3)] == [15.0, 20.0, 30.0]

    def test_ties_stay_fifo_across_interleaved_pops(self):
        loop = EventLoop()
        first = SchedulerTickEvent(time_ms=5.0)
        second = SchedulerTickEvent(time_ms=5.0)
        loop.push(first)
        loop.push(SchedulerTickEvent(time_ms=1.0))
        loop.push(second)
        assert loop.pop().time_ms == 1.0
        third = SchedulerTickEvent(time_ms=5.0)
        loop.push(third)
        assert loop.pop() is first
        assert loop.pop() is second
        assert loop.pop() is third

    def test_two_identically_fed_loops_drain_identically(self):
        feed = [30.0, 10.0, 10.0, 20.0, 10.0, 30.0]
        drains = []
        for _ in range(2):
            loop = EventLoop()
            events = [SchedulerTickEvent(time_ms=t) for t in feed]
            for event in events:
                loop.push(event)
            drains.append([loop.pop() for _ in range(len(events))])
        assert drains[0] == drains[1]
        assert [e.time_ms for e in drains[0]] == sorted(feed)


# ----------------------------------------------------------------------
# Simulation driver: dispatch, hooks and the horizon
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sim_store():
    return build_profile_store(EXPERIMENT_SPACE)


def make_simulation(sim_store, **config_kwargs) -> Simulation:
    requests = build_requests("moderate-normal", 6, 3, sim_store)
    config = SimulationConfig(
        seed=3, controller=ControllerConfig(initial_warm="all"), **config_kwargs
    )
    return Simulation(
        policy=make_policy("ESG"),
        requests=requests,
        profile_store=sim_store,
        config=config,
        setting_name="moderate-normal",
    )


class TestHorizonTruncation:
    def test_untruncated_run_drains_all_productive_events(self, sim_store):
        simulation = make_simulation(sim_store)
        summary = simulation.run()
        assert not summary.truncated
        assert not simulation.truncated
        # Every productive event drains; only housekeeping events (the
        # containers' keep-alive expiry timers) may remain queued.
        assert not simulation.events.has_real
        assert summary.num_completed == summary.num_requests

    def test_horizon_stops_the_clock_and_keeps_the_crossing_event(self, sim_store):
        full = make_simulation(sim_store).run()
        horizon_ms = full.mean_latency_ms  # well inside the busy part of the run
        simulation = make_simulation(sim_store, max_time_ms=horizon_ms)
        hook_calls: list[float] = []
        simulation.on_horizon_reached(lambda sim: hook_calls.append(sim.now_ms))
        summary = simulation.run()

        assert summary.truncated
        assert simulation.truncated
        # The clock never advances past the horizon ...
        assert simulation.now_ms <= horizon_ms
        # ... and the event that crosses it stays queued instead of being lost.
        assert not simulation.events.empty
        assert simulation.events.peek_time() > horizon_ms
        assert summary.num_completed < summary.num_requests
        assert hook_calls == [simulation.now_ms]

    def test_max_events_cap_marks_truncated(self, sim_store):
        simulation = make_simulation(sim_store, max_events=3)
        summary = simulation.run()
        assert summary.truncated
        assert simulation.processed_events == 3


class TestSimulationHooks:
    def test_event_and_progress_hooks_fire(self, sim_store):
        simulation = make_simulation(sim_store)
        seen_events: list[Event] = []
        progress_ticks: list[int] = []
        simulation.on_event(lambda sim, event: seen_events.append(event))
        simulation.on_progress(
            lambda sim: progress_ticks.append(sim.processed_events), every_events=10
        )
        summary = simulation.run()
        assert len(seen_events) == simulation.processed_events
        assert isinstance(seen_events[0], RequestArrivalEvent)
        assert progress_ticks == list(range(10, simulation.processed_events + 1, 10))
        assert not summary.truncated

    def test_progress_hook_rejects_nonpositive_interval(self, sim_store):
        simulation = make_simulation(sim_store)
        with pytest.raises(ValueError):
            simulation.on_progress(lambda sim: None, every_events=0)


@dataclass(frozen=True)
class ProbeEvent(Event):
    """A custom event type exercising the open dispatch path."""

    def apply(self, simulation: Simulation) -> None:
        simulation.probe_applied = True  # type: ignore[attr-defined]


@dataclass(frozen=True)
class OpaqueEvent(Event):
    """A custom event with no apply() and no registered handler."""


class TestEventDispatch:
    def test_unknown_event_type_dispatches_via_apply(self, sim_store):
        simulation = make_simulation(sim_store)
        simulation.probe_applied = False
        simulation.events.push(ProbeEvent(time_ms=0.0))
        simulation.run()
        assert simulation.probe_applied

    def test_registered_handler_shadows_apply(self, sim_store):
        calls: list[float] = []
        Simulation.register_handler(ProbeEvent, lambda sim, event: calls.append(event.time_ms))
        try:
            simulation = make_simulation(sim_store)
            simulation.probe_applied = False
            simulation.events.push(ProbeEvent(time_ms=0.0))
            simulation.run()
            assert calls == [0.0]
            assert not simulation.probe_applied
        finally:
            del Simulation._handlers[ProbeEvent]

    def test_event_without_apply_or_handler_raises(self, sim_store):
        simulation = make_simulation(sim_store)
        simulation.events.push(OpaqueEvent(time_ms=0.0))
        with pytest.raises(NotImplementedError):
            simulation.run()

    def test_register_handler_rejects_non_event_types(self):
        with pytest.raises(TypeError):
            Simulation.register_handler(int, lambda sim, event: None)

    def test_instance_handler_scoped_to_one_simulation(self, sim_store):
        calls: list[float] = []
        instrumented = make_simulation(sim_store)
        instrumented.add_handler(ProbeEvent, lambda sim, event: calls.append(event.time_ms))
        instrumented.events.push(ProbeEvent(time_ms=0.0))
        instrumented.probe_applied = False
        instrumented.run()
        assert calls == [0.0]
        assert not instrumented.probe_applied  # instance handler shadowed apply()

        # A sibling simulation is unaffected: ProbeEvent falls back to apply().
        plain = make_simulation(sim_store)
        plain.probe_applied = False
        plain.events.push(ProbeEvent(time_ms=0.0))
        plain.run()
        assert plain.probe_applied
        assert calls == [0.0]

    def test_add_handler_rejects_non_event_types(self, sim_store):
        with pytest.raises(TypeError):
            make_simulation(sim_store).add_handler(int, lambda sim, event: None)
