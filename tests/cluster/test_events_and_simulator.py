"""Tests for the event types and the event loop."""

from __future__ import annotations

import pytest

from repro.cluster.events import (
    Event,
    RequestArrivalEvent,
    SchedulerTickEvent,
)
from repro.cluster.simulator import EventLoop
from repro.workloads.applications import image_classification
from repro.workloads.request import Request


def make_request(arrival_ms: float = 0.0) -> Request:
    return Request(
        request_id=0, workflow=image_classification(), arrival_ms=arrival_ms, slo_ms=1000.0
    )


class TestEvents:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            SchedulerTickEvent(time_ms=-1.0)

    def test_arrival_event_holds_request(self):
        request = make_request(5.0)
        event = RequestArrivalEvent(time_ms=5.0, request=request)
        assert event.request is request
        assert isinstance(event, Event)


class TestEventLoop:
    def test_pops_in_time_order(self):
        loop = EventLoop()
        loop.push(SchedulerTickEvent(time_ms=30.0))
        loop.push(SchedulerTickEvent(time_ms=10.0))
        loop.push(SchedulerTickEvent(time_ms=20.0))
        times = [loop.pop().time_ms for _ in range(3)]
        assert times == [10.0, 20.0, 30.0]

    def test_ties_broken_by_insertion_order(self):
        loop = EventLoop()
        first = RequestArrivalEvent(time_ms=5.0, request=make_request())
        second = SchedulerTickEvent(time_ms=5.0)
        loop.push(first)
        loop.push(second)
        assert loop.pop() is first
        assert loop.pop() is second

    def test_len_and_empty(self):
        loop = EventLoop()
        assert loop.empty
        loop.push(SchedulerTickEvent(time_ms=1.0))
        assert len(loop) == 1
        assert not loop.empty
        loop.pop()
        assert loop.empty

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventLoop().pop()

    def test_peek_time(self):
        loop = EventLoop()
        loop.push(SchedulerTickEvent(time_ms=42.0))
        assert loop.peek_time() == 42.0
        with pytest.raises(IndexError):
            EventLoop().peek_time()
