"""Unit tests for the capacity-churn subsystem.

Covers the churn schedule/spec layer (validation, determinism, registry),
the cluster membership mutations (join / leave / resize) in both index
modes, eviction semantics of containers and the prewarmer, and the
regression pins for stale :class:`ContainerExpireEvent` timers racing a
node eviction at all three lazy-cancellation sites.
"""

from __future__ import annotations

import heapq
import pickle

import pytest

from repro.cluster.churn import (
    CHURN_SPECS,
    ChurnAction,
    ChurnSchedule,
    ChurnSpec,
    churn_spec_names,
    get_churn_spec,
    register_churn_spec,
    resolve_churn,
)
from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.container import Container, ContainerState
from repro.cluster.controller import Controller
from repro.cluster.events import (
    ContainerExpireEvent,
    InvokerJoinEvent,
    InvokerLeaveEvent,
    InvokerResizeEvent,
)
from repro.cluster.metrics import MetricsCollector
from repro.cluster.prewarm import PrewarmManager
from repro.cluster.simulator import _fast_expire_apply
from repro.experiments.runner import make_policy
from repro.profiles.perf_model import AnalyticalPerformanceModel
from repro.profiles.pricing import PricingModel
from repro.profiles.profiler import ProfileStore


@pytest.fixture(scope="module")
def store() -> ProfileStore:
    return ProfileStore.build()


def small_cluster(index_mode: str = "indexed", num_invokers: int = 4) -> ClusterState:
    return ClusterState(
        config=ClusterConfig(
            num_invokers=num_invokers,
            vcpus_per_invoker=8,
            vgpus_per_invoker=4,
            index_mode=index_mode,
        )
    )


# ----------------------------------------------------------------------
# Schedule / spec layer
# ----------------------------------------------------------------------
class TestChurnAction:
    def test_validates_kind_and_payload(self):
        with pytest.raises(ValueError, match="unknown churn action kind"):
            ChurnAction(time_ms=0.0, kind="reboot")
        with pytest.raises(ValueError, match="time_ms"):
            ChurnAction(time_ms=-1.0, kind="join")
        with pytest.raises(ValueError, match="requires invoker_id"):
            ChurnAction(time_ms=0.0, kind="leave")
        with pytest.raises(ValueError, match="requires vcpus and vgpus"):
            ChurnAction(time_ms=0.0, kind="resize", invoker_id=1)

    def test_to_event_maps_kinds(self):
        join = ChurnAction(time_ms=5.0, kind="join", vcpus=4, vgpus=2).to_event()
        leave = ChurnAction(time_ms=6.0, kind="leave", invoker_id=3).to_event()
        resize = ChurnAction(
            time_ms=7.0, kind="resize", invoker_id=1, vcpus=2, vgpus=1
        ).to_event()
        assert isinstance(join, InvokerJoinEvent) and join.vcpus == 4
        assert isinstance(leave, InvokerLeaveEvent) and leave.invoker_id == 3
        assert isinstance(resize, InvokerResizeEvent) and resize.vgpus == 1
        # Churn events are housekeeping: they never keep a drained run alive
        # and stay invisible to horizons and event budgets.
        assert join.housekeeping and leave.housekeeping and resize.housekeeping


class TestChurnSchedule:
    def test_requires_sorted_actions_and_valid_policy(self):
        a = ChurnAction(time_ms=10.0, kind="leave", invoker_id=0)
        b = ChurnAction(time_ms=5.0, kind="leave", invoker_id=1)
        with pytest.raises(ValueError, match="sorted"):
            ChurnSchedule(name="x", actions=(a, b))
        with pytest.raises(ValueError, match="on_evict"):
            ChurnSchedule(name="x", actions=(b, a), on_evict="retry")
        ChurnSchedule(name="x", actions=(b, a))  # sorted order is fine

    def test_schedule_is_picklable_and_comparable(self):
        schedule = get_churn_spec("harvest-mild").build(
            seed=3, cluster_config=ClusterConfig()
        )
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone == schedule


class TestChurnSpec:
    def test_build_is_deterministic_per_seed(self):
        spec = get_churn_spec("churn-mixed")
        config = ClusterConfig()
        assert spec.build(3, config) == spec.build(3, config)
        assert spec.build(3, config) != spec.build(4, config)

    def test_build_respects_min_active(self):
        spec = ChurnSpec(
            name="all-leave",
            start_ms=1.0,
            interval_ms=1.0,
            num_events=50,
            p_leave=1.0,
            p_join=0.0,
            p_resize=0.0,
            min_active=2,
        )
        schedule = spec.build(0, ClusterConfig(num_invokers=4))
        leaves = sum(1 for a in schedule.actions if a.kind == "leave")
        # 4 nodes, floor of 2: at most 2 can ever leave; the rest of the
        # would-be leaves convert to joins (each enabling one more leave).
        joins = sum(1 for a in schedule.actions if a.kind == "join")
        assert leaves == 2 + joins

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ChurnSpec(name="bad", p_leave=0.9, p_join=0.9, p_resize=0.9)
        with pytest.raises(ValueError):
            ChurnSpec(name="bad", resize_low=0.0)
        with pytest.raises(ValueError):
            ChurnSpec(name="bad", min_active=0)

    def test_registry_lookup_and_duplicates(self):
        assert set(churn_spec_names()) >= {
            "harvest-mild",
            "harvest-severe",
            "eviction-storm",
            "eviction-fail",
            "churn-mixed",
        }
        with pytest.raises(KeyError, match="unknown churn spec"):
            get_churn_spec("nope")
        with pytest.raises(ValueError, match="already registered"):
            register_churn_spec(CHURN_SPECS["harvest-mild"])

    def test_resolve_churn_paths(self):
        config = ClusterConfig()
        assert resolve_churn(None, 1, config) is None
        by_name = resolve_churn("harvest-mild", 1, config)
        by_spec = resolve_churn(get_churn_spec("harvest-mild"), 1, config)
        assert by_name == by_spec
        assert resolve_churn(by_name, 99, config) is by_name  # schedules pass through
        with pytest.raises(TypeError):
            resolve_churn(42, 1, config)


# ----------------------------------------------------------------------
# Cluster membership mutations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("index_mode", ["indexed", "scan"])
class TestClusterChurn:
    def test_join_appends_dense_ids_and_grows_totals(self, index_mode):
        cluster = small_cluster(index_mode)
        joined = cluster.apply_join()
        assert joined.invoker_id == 4
        assert len(cluster) == 5
        assert cluster.total_vcpus() == 5 * 8
        assert cluster.total_available_vcpus() == 5 * 8
        custom = cluster.apply_join(vcpus=2, vgpus=1)
        assert (custom.total_vcpus, custom.gpu.total_vgpus) == (2, 1)
        assert cluster.total_vgpus() == 5 * 4 + 1

    def test_leave_tombstones_and_conserves_capacity(self, index_mode):
        cluster = small_cluster(index_mode)
        cluster.invoker(1).create_warm_container("classification", 0.0)
        evicted = cluster.apply_leave(1)
        assert [c.state for c in evicted] == [ContainerState.STOPPED]
        invoker = cluster.invoker(1)
        assert not invoker.active
        assert invoker.total_vcpus == 0 and invoker.gpu.total_vgpus == 0
        assert len(cluster) == 4  # ids stay dense and stable
        assert cluster.total_vcpus() == 3 * 8
        assert cluster.total_available_vcpus() == 3 * 8
        # Idempotent: a second leave of the same node is a no-op.
        assert cluster.apply_leave(1) == []
        assert cluster.total_vcpus() == 3 * 8

    def test_resize_clamps_to_used_and_one(self, index_mode):
        cluster = small_cluster(index_mode)
        invoker = cluster.invoker(0)
        invoker._used_vcpus = 4
        invoker.gpu._used_vgpus = 2
        applied = cluster.apply_resize(0, 1, 1)
        assert applied == (4, 2)  # harvest never takes busy resources
        assert cluster.total_vcpus() == 3 * 8 + 4
        grown = cluster.apply_resize(0, 16, 8)
        assert grown == (16, 8)
        assert invoker.total_vgpus == invoker.gpu.total_vgpus == 8
        assert cluster.total_vgpus() == 3 * 4 + 8

    def test_resize_of_departed_node_is_a_no_op(self, index_mode):
        cluster = small_cluster(index_mode)
        cluster.apply_leave(2)
        assert cluster.apply_resize(2, 16, 8) == (0, 0)
        assert cluster.total_vcpus() == 3 * 8

    def test_utilization_uses_dynamic_membership(self, index_mode):
        cluster = small_cluster(index_mode)
        assert cluster.cpu_utilization() == 0.0
        cluster.apply_leave(3)
        assert cluster.cpu_utilization() == 0.0  # 24 free of 24 current
        assert cluster.gpu_utilization() == 0.0


class TestIndexedChurnConsistency:
    def test_leave_rebuckets_to_zero_and_join_is_placeable(self):
        cluster = small_cluster("indexed")
        cluster.apply_leave(0)
        assert cluster._bucket_of[0] == (0, 0)
        joined = cluster.apply_join()
        # The new node answers capacity queries through the bucket index.
        from repro.profiles.configuration import Configuration

        fitting = cluster.invokers_that_fit(Configuration(batch_size=1, vcpus=8, vgpus=4))
        assert joined in fitting
        assert cluster.invoker(0) not in fitting

    def test_join_invalidates_home_cache(self):
        cluster = small_cluster("indexed")
        cluster.enable_home_cache()
        before = cluster.home_invoker_id("app", "classification")
        assert before == cluster._hash_home("app", "classification")
        cluster.apply_join()
        after = cluster.home_invoker_id("app", "classification")
        assert after == cluster._hash_home("app", "classification")


# ----------------------------------------------------------------------
# Container eviction + prewarmer
# ----------------------------------------------------------------------
class TestContainerEviction:
    def test_mark_evicted_force_stops_busy_containers(self):
        cluster = small_cluster()
        container = cluster.invoker(0).create_warm_container("classification", 0.0)
        container.assign_task()
        container.assign_task()
        assert container.state is ContainerState.BUSY
        container.mark_evicted()
        assert container.state is ContainerState.STOPPED
        assert container.active_tasks == 0
        assert container.expires_at_ms == float("-inf")
        container.mark_evicted()  # idempotent
        assert container.state is ContainerState.STOPPED

    def test_prewarmer_never_picks_a_departed_node(self, store):
        cluster = small_cluster()
        cluster.apply_leave(0)
        picked = PrewarmManager._pick_invoker(cluster, "classification", 0.0)
        assert picked == 1  # fewest containers, lowest active id
        for i in (1, 2, 3):
            cluster.apply_leave(i)
        assert PrewarmManager._pick_invoker(cluster, "classification", 0.0) is None


# ----------------------------------------------------------------------
# Regression: stale expiry timers racing a node eviction
# ----------------------------------------------------------------------
class TestExpiryUnderEviction:
    """A node eviction must defeat every pending keep-alive timer.

    ``mark_evicted`` leaves the container STOPPED with ``expires_at_ms``
    at -inf, so the ``WARM and expires_at_ms == deadline`` guard fails at
    all three lazy-cancellation sites.
    """

    def armed_container(self) -> tuple[Container, float]:
        cluster = small_cluster()
        container = cluster.invoker(0).create_warm_container("classification", 0.0)
        deadline = container.expires_at_ms
        assert container.state is ContainerState.WARM and deadline > 0
        return container, deadline

    def test_compat_expire_event_is_a_no_op_after_eviction(self):
        container, deadline = self.armed_container()
        container.mark_evicted()
        ContainerExpireEvent(time_ms=deadline, container=container).apply(None)
        assert container.state is ContainerState.STOPPED

    def test_fast_expire_trampoline_is_a_no_op_after_eviction(self):
        container, deadline = self.armed_container()
        container.mark_evicted()
        _fast_expire_apply(None, ContainerExpireEvent(time_ms=deadline, container=container))
        assert container.state is ContainerState.STOPPED

    def test_drain_heap_skips_evicted_containers(self, store):
        cluster = small_cluster()
        controller = Controller(
            policy=make_policy("ESG"),
            cluster=cluster,
            profile_store=store,
            runtime_perf_model=AnalyticalPerformanceModel(),
            pricing=PricingModel(),
            metrics=MetricsCollector(),
        )
        container, deadline = self.armed_container()
        survivor = cluster.invoker(1).create_warm_container("classification", 0.0)
        for entry in (container, survivor):
            heapq.heappush(
                controller._expiry_heap,
                (entry.expires_at_ms, next(controller._expiry_seq), entry),
            )
        container.mark_evicted()
        controller._drain_expired_containers(deadline)
        # The evicted container's entry popped as a no-op; the survivor's
        # live deadline still fired normally.
        assert not controller._expiry_heap
        assert survivor.state is ContainerState.STOPPED


# ----------------------------------------------------------------------
# Metrics plumbing
# ----------------------------------------------------------------------
class TestChurnMetrics:
    def test_eviction_counters_reach_the_summary(self):
        metrics = MetricsCollector(policy_name="ESG", setting_name="t")
        metrics.record_task_evicted()
        metrics.record_task_evicted()
        metrics.record_requeued_jobs(3)
        summary = metrics.summary()
        assert summary.evicted_tasks == 2
        assert summary.requeued_jobs == 3
        assert summary.num_evicted == 0
        data = summary.as_dict()
        assert data["evicted_tasks"] == 2
        assert data["requeued_jobs"] == 3
        assert data["num_evicted"] == 0

    def test_record_requeued_jobs_rejects_negative(self):
        metrics = MetricsCollector()
        with pytest.raises(ValueError):
            metrics.record_requeued_jobs(-1)
