"""Tests for the EWMA-based prewarming manager."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.prewarm import PrewarmManager


@pytest.fixture()
def cluster() -> ClusterState:
    return ClusterState(config=ClusterConfig(num_invokers=4))


@pytest.fixture()
def manager(small_store) -> PrewarmManager:
    return PrewarmManager(profile_store=small_store)


class TestObservation:
    def test_predicted_interval_needs_two_arrivals(self, manager):
        assert manager.predicted_interval_ms("app", "deblur") is None
        manager.observe_arrival("app", "deblur", 0.0)
        assert manager.predicted_interval_ms("app", "deblur") is None
        manager.observe_arrival("app", "deblur", 50.0)
        assert manager.predicted_interval_ms("app", "deblur") == pytest.approx(50.0)

    def test_predicted_next_arrival(self, manager):
        manager.observe_arrival("app", "deblur", 0.0)
        manager.observe_arrival("app", "deblur", 40.0)
        predicted = manager.predicted_next_arrival_ms("app", "deblur")
        assert predicted == pytest.approx(80.0)

    def test_unknown_function_has_no_prediction(self, manager):
        assert manager.predicted_next_arrival_ms("app", "never_seen") is None


class TestDemandEstimation:
    def test_desired_instances_grow_with_rate(self, manager):
        # ~1 arrival per 20 ms of a ~1s function => many concurrent instances.
        for i in range(20):
            manager.observe_arrival("app", "background_removal", i * 20.0)
        high_rate = manager.desired_warm_instances("background_removal")

        manager2 = PrewarmManager(profile_store=manager.profile_store)
        for i in range(20):
            manager2.observe_arrival("app", "background_removal", i * 2000.0)
        low_rate = manager2.desired_warm_instances("background_removal")
        assert high_rate > low_rate
        assert low_rate >= 1

    def test_desired_instances_capped(self, small_store):
        manager = PrewarmManager(profile_store=small_store, max_warm_per_function=3)
        for i in range(50):
            manager.observe_arrival("app", "background_removal", i * 5.0)
        assert manager.desired_warm_instances("background_removal") <= 3

    def test_aggregates_rate_over_applications(self, manager):
        for i in range(10):
            manager.observe_arrival("app_a", "deblur", i * 100.0)
            manager.observe_arrival("app_b", "deblur", 50.0 + i * 100.0)
        combined = manager.desired_warm_instances("deblur")
        assert combined >= 1


class TestPlanning:
    def test_plan_creates_starting_containers(self, manager, cluster):
        for i in range(10):
            manager.observe_arrival("app", "background_removal", i * 10.0)
        plans = manager.plan(cluster, now_ms=100.0)
        assert plans, "expected at least one prewarm plan for a hot function"
        for plan in plans:
            assert plan.function_name == "background_removal"
            assert plan.ready_at_ms > 100.0
            assert cluster.invoker(plan.invoker_id).has_any_container("background_removal", 100.0)

    def test_plan_does_not_duplicate_resident_containers(self, manager, cluster):
        for i in range(10):
            manager.observe_arrival("app", "deblur", i * 500.0)
        first = manager.plan(cluster, now_ms=100.0)
        second = manager.plan(cluster, now_ms=101.0)
        assert len(second) <= len(first)

    def test_disabled_manager_never_plans(self, small_store, cluster):
        manager = PrewarmManager(profile_store=small_store, enabled=False)
        for i in range(10):
            manager.observe_arrival("app", "deblur", i * 10.0)
        assert manager.plan(cluster, now_ms=50.0) == []

    def test_invalid_parameters_rejected(self, small_store):
        with pytest.raises(ValueError):
            PrewarmManager(profile_store=small_store, safety_factor=0.0)
        with pytest.raises(ValueError):
            PrewarmManager(profile_store=small_store, max_warm_per_function=0)


class TestPickInvoker:
    """Placement walk of :meth:`PrewarmManager._pick_invoker` — shared by the
    static prewarmer and the autoscaler's scale-up actuation."""

    def test_prefers_fewest_containers_then_most_free_vgpus(self, cluster):
        cluster.invoker(0).create_warm_container("deblur", 0.0)
        picked = PrewarmManager._pick_invoker(cluster, "deblur", 10.0)
        # Invoker 0 already hosts the function; an empty peer wins.
        assert picked != 0
        assert cluster.invoker(picked).container_count("deblur") == 0

    def test_skips_inactive_tombstones(self, cluster):
        # Tombstone every invoker but 2: the walk must land there even
        # though lower ids would otherwise win the tie on emptiness.
        for invoker_id in (0, 1, 3):
            cluster.apply_leave(invoker_id)
        assert PrewarmManager._pick_invoker(cluster, "deblur", 10.0) == 2

    def test_all_inactive_yields_none(self, cluster):
        for invoker_id in range(4):
            cluster.apply_leave(invoker_id)
        assert PrewarmManager._pick_invoker(cluster, "deblur", 10.0) is None


class TestProfileCacheDeterminism:
    """Regression pins for the REP004 fix in ``enable_profile_cache``.

    ``_by_function`` used to be built by iterating a set comprehension over
    the demand keys, inheriting PYTHONHASHSEED-dependent order.  Nothing
    downstream consumes that order *today*, but the byte-identity contract
    requires every internal collection a future reader might iterate to be
    deterministically ordered; these tests pin the sorted construction.
    """

    def _seed_arrivals(self, manager, names):
        for name in names:
            manager.observe_arrival("app", name, 0.0)
            manager.observe_arrival("app", name, 25.0)
            manager.observe_arrival("other_app", name, 10.0)

    def test_by_function_keys_are_sorted(self, manager):
        self._seed_arrivals(manager, ["deblur", "auth", "background_removal"])
        manager.enable_profile_cache()
        keys = list(manager._by_function)
        assert keys == sorted(keys)

    def test_by_function_order_independent_of_insertion_order(self, small_store):
        names = ["deblur", "auth", "background_removal", "resize"]
        forward = PrewarmManager(profile_store=small_store)
        backward = PrewarmManager(profile_store=small_store)
        self._seed_arrivals(forward, names)
        self._seed_arrivals(backward, list(reversed(names)))
        forward.enable_profile_cache()
        backward.enable_profile_cache()
        assert list(forward._by_function) == list(backward._by_function)
        for fn in forward._by_function:
            assert len(forward._by_function[fn]) == len(backward._by_function[fn])

    def test_cache_preserves_desired_instance_parity(self, small_store):
        """Fast-mode memos must not change the planner's answers."""
        names = ["deblur", "classification"]
        compat = PrewarmManager(profile_store=small_store)
        fast = PrewarmManager(profile_store=small_store)
        for m in (compat, fast):
            for i in range(6):
                for name in names:
                    m.observe_arrival("app", name, i * 40.0)
        fast.enable_profile_cache()
        for name in names:
            assert fast.desired_warm_instances(name) == compat.desired_warm_instances(name)
