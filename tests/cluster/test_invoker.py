"""Tests for the invoker (worker node) model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.container import Container, ContainerState
from repro.cluster.invoker import Invoker
from repro.profiles.configuration import Configuration


@pytest.fixture()
def invoker() -> Invoker:
    return Invoker(invoker_id=0, total_vcpus=16, total_vgpus=7)


class TestResourceAccounting:
    def test_initial_capacity(self, invoker):
        assert invoker.available_vcpus == 16
        assert invoker.available_vgpus == 7
        assert invoker.cpu_utilization == 0.0
        assert invoker.gpu_utilization == 0.0

    def test_reserve_and_release(self, invoker):
        cfg = Configuration(batch_size=2, vcpus=4, vgpus=3)
        assert invoker.can_fit(cfg)
        invoker.reserve(cfg)
        assert invoker.available_vcpus == 12
        assert invoker.available_vgpus == 4
        invoker.release(cfg)
        assert invoker.available_vcpus == 16
        assert invoker.available_vgpus == 7

    def test_cannot_reserve_beyond_cpu_capacity(self, invoker):
        invoker.reserve(Configuration(1, 16, 1))
        assert not invoker.can_fit(Configuration(1, 1, 1))
        with pytest.raises(RuntimeError):
            invoker.reserve(Configuration(1, 1, 1))

    def test_cannot_reserve_beyond_gpu_capacity(self, invoker):
        invoker.reserve(Configuration(1, 1, 7))
        with pytest.raises(RuntimeError):
            invoker.reserve(Configuration(1, 1, 1))

    def test_cannot_release_more_than_reserved(self, invoker):
        with pytest.raises(RuntimeError):
            invoker.release(Configuration(1, 2, 1))

    def test_cpu_failure_does_not_leak_gpu_reservation(self, invoker):
        """If the vCPU reservation fails the vGPUs must not stay allocated."""
        invoker.reserve(Configuration(1, 16, 1))
        with pytest.raises(RuntimeError):
            invoker.reserve(Configuration(1, 4, 2))
        assert invoker.available_vgpus == 6  # only the first reservation holds

    def test_fragmentation_score_prefers_tight_fit(self, invoker):
        small = Configuration(1, 2, 1)
        large = Configuration(1, 8, 4)
        assert invoker.fragmentation_score_after(large) < invoker.fragmentation_score_after(small)

    def test_remaining_after(self, invoker):
        rem_cpu, rem_gpu = invoker.remaining_after(Configuration(1, 10, 3))
        assert (rem_cpu, rem_gpu) == (6, 4)

    @given(
        st.lists(
            st.tuples(st.integers(1, 8), st.integers(1, 4)),
            min_size=1,
            max_size=60,
        )
    )
    def test_reservation_invariants(self, operations):
        """Property: reservations never exceed capacity, releases restore it."""
        invoker = Invoker(invoker_id=3, total_vcpus=16, total_vgpus=7)
        active: list[Configuration] = []
        for vcpus, vgpus in operations:
            cfg = Configuration(1, vcpus, vgpus)
            if invoker.can_fit(cfg):
                invoker.reserve(cfg)
                active.append(cfg)
            elif active:
                invoker.release(active.pop())
            assert 0 <= invoker.used_vcpus <= invoker.total_vcpus
            assert 0 <= invoker.used_vgpus <= invoker.total_vgpus
        for cfg in active:
            invoker.release(cfg)
        assert invoker.used_vcpus == 0 and invoker.used_vgpus == 0


class TestContainers:
    def test_create_warm_container_is_resident(self, invoker):
        invoker.create_warm_container("deblur", now_ms=0.0)
        assert invoker.has_warm_container("deblur", 0.0)
        assert invoker.has_any_container("deblur", 0.0)
        assert not invoker.has_warm_container("classification", 0.0)

    def test_resident_container_returns_busy_containers(self, invoker):
        container = invoker.create_warm_container("deblur", now_ms=0.0)
        container.assign_task()
        assert invoker.resident_container("deblur", 10.0) is container
        assert invoker.warm_idle_container("deblur", 10.0) is None

    def test_starting_container_counts_as_any_but_not_warm(self, invoker):
        container = Container(
            function_name="segmentation", invoker_id=0, state=ContainerState.STARTING, warm_at_ms=500.0
        )
        invoker.add_container(container)
        assert invoker.has_any_container("segmentation", 10.0)
        assert not invoker.has_warm_container("segmentation", 10.0)

    def test_add_container_checks_owner(self, invoker):
        container = Container(function_name="deblur", invoker_id=5)
        with pytest.raises(ValueError):
            invoker.add_container(container)

    def test_expire_containers(self, invoker):
        invoker.keep_alive_ms = 100.0
        invoker.create_warm_container("deblur", now_ms=0.0)
        assert invoker.expire_containers(50.0) == []
        expired = invoker.expire_containers(200.0)
        assert len(expired) == 1
        assert not invoker.has_warm_container("deblur", 200.0)

    def test_warm_function_names(self, invoker):
        invoker.create_warm_container("deblur", now_ms=0.0)
        invoker.create_warm_container("classification", now_ms=0.0)
        assert invoker.warm_function_names(0.0) == ["classification", "deblur"]
