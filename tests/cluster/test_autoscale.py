"""Unit tests for the adaptive feedback prewarm layer (specs, controllers,
registry, and the Autoscaler's attach/decide/actuate mechanics)."""

from __future__ import annotations

import dataclasses

import pytest

import repro.cluster.autoscale as autoscale_module
from repro.cluster.autoscale import (
    AUTOSCALE_SPECS,
    AutoscaleAction,
    AutoscalePolicy,
    AutoscaleSpec,
    AutoscaleState,
    Autoscaler,
    LearnedAgent,
    PIDController,
    ThresholdController,
    autoscale_spec_names,
    get_autoscale_spec,
    register_autoscale_spec,
    resolve_autoscale,
)
from repro.cluster.cluster import ClusterConfig
from repro.cluster.container import Container, ContainerState
from repro.cluster.events import PrewarmCompleteEvent
from repro.cluster.simulator import Simulation, SimulationConfig
from repro.experiments.runner import build_profile_store, build_requests, make_policy


@pytest.fixture(scope="module")
def store():
    return build_profile_store()


def make_state(**overrides) -> AutoscaleState:
    defaults = dict(
        now_ms=100.0,
        function_name="f",
        queue_depth=0,
        arrival_rate_per_s=0.0,
        residents=1,
        active_invokers=4,
    )
    defaults.update(overrides)
    return AutoscaleState(**defaults)


def build_simulation(store, *, num_invokers: int = 4, seed: int = 3) -> Simulation:
    return Simulation(
        policy=make_policy("ESG"),
        requests=build_requests("moderate-normal", 2, seed, store),
        profile_store=store,
        config=SimulationConfig(
            seed=seed, cluster=ClusterConfig(num_invokers=num_invokers)
        ),
        setting_name="moderate-normal",
    )


# ----------------------------------------------------------------------
# Spec validation and registry
# ----------------------------------------------------------------------
class TestSpecValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": ""},
            {"kind": "dqn"},
            {"decide_interval_ms": 0.0},
            {"min_residents": -1},
            {"max_residents": 0},
            {"min_residents": 5, "max_residents": 4},
            {"low_watermark": 3.0, "high_watermark": 3.0},
            {"step_up": 0},
            {"step_down": 0},
            {"low_rate_per_s": -1.0},
            {"down_patience": 0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"integral_clamp": -0.1},
            {"max_step": 0},
            {"setpoint": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, overrides):
        kwargs = {"name": "t", **overrides}
        with pytest.raises(ValueError):
            AutoscaleSpec(**kwargs)

    def test_build_controller_dispatches_on_kind(self):
        assert isinstance(
            AutoscaleSpec(name="a", kind="threshold").build_controller(),
            ThresholdController,
        )
        assert isinstance(
            AutoscaleSpec(name="b", kind="pid").build_controller(), PIDController
        )
        assert isinstance(
            AutoscaleSpec(name="c", kind="learned").build_controller(), LearnedAgent
        )

    def test_controllers_are_fresh_per_build(self):
        spec = AutoscaleSpec(name="fresh", kind="pid")
        assert spec.build_controller() is not spec.build_controller()


class TestRegistry:
    def test_builtins_are_registered(self):
        for name in (
            "threshold-default",
            "threshold-conservative",
            "pid-default",
            "learned-stub",
        ):
            assert get_autoscale_spec(name).name == name
        assert autoscale_spec_names() == sorted(AUTOSCALE_SPECS)

    def test_unknown_name_lists_known_specs(self):
        with pytest.raises(KeyError, match="known specs"):
            get_autoscale_spec("no-such-controller")

    def test_duplicate_registration_rejected(self):
        spec = get_autoscale_spec("pid-default")
        with pytest.raises(ValueError, match="already registered"):
            register_autoscale_spec(spec)
        # Explicit overwrite is the escape hatch and round-trips.
        assert register_autoscale_spec(spec, overwrite=True) is spec

    def test_resolve_forms(self):
        assert resolve_autoscale(None) is None
        by_name = resolve_autoscale("threshold-default")
        assert by_name is get_autoscale_spec("threshold-default")
        assert resolve_autoscale(by_name) is by_name
        with pytest.raises(TypeError):
            resolve_autoscale(42)


# ----------------------------------------------------------------------
# Controllers
# ----------------------------------------------------------------------
class TestThresholdController:
    def _controller(self, **overrides) -> ThresholdController:
        params = dict(
            high_watermark=3.0,
            low_watermark=0.0,
            step_up=2,
            step_down=1,
            low_rate_per_s=0.0,
            down_patience=3,
        )
        params.update(overrides)
        return ThresholdController(**params)

    def test_scales_up_at_high_watermark(self):
        action = self._controller().decide(make_state(queue_depth=3))
        assert action.delta == 2

    def test_holds_inside_the_band(self):
        controller = self._controller()
        for depth in (1, 2):
            assert controller.decide(make_state(queue_depth=depth)).delta == 0

    def test_scale_down_requires_consecutive_patience(self):
        controller = self._controller(down_patience=3)
        idle = make_state(queue_depth=0, arrival_rate_per_s=0.0)
        assert controller.decide(idle).delta == 0
        assert controller.decide(idle).delta == 0
        assert controller.decide(idle).delta == -1
        # The counter resets after firing: the next idle round starts over.
        assert controller.decide(idle).delta == 0

    def test_traffic_resets_patience(self):
        controller = self._controller(down_patience=2)
        idle = make_state(queue_depth=0, arrival_rate_per_s=0.0)
        busy = make_state(queue_depth=1)
        assert controller.decide(idle).delta == 0
        assert controller.decide(busy).delta == 0  # in band, resets the count
        assert controller.decide(idle).delta == 0  # count restarts at 1
        assert controller.decide(idle).delta == -1

    def test_arrival_rate_gates_scale_down(self):
        controller = self._controller(down_patience=1, low_rate_per_s=5.0)
        draining = make_state(queue_depth=0, arrival_rate_per_s=50.0)
        assert controller.decide(draining).delta == 0
        quiet = make_state(queue_depth=0, arrival_rate_per_s=2.0)
        assert controller.decide(quiet).delta == -1


class TestPIDController:
    def _controller(self, **overrides) -> PIDController:
        params = dict(
            kp=1.0,
            ki=0.5,
            kd=0.0,
            setpoint=1.0,
            ewma_alpha=1.0,
            integral_clamp=2.0,
            max_step=2,
        )
        params.update(overrides)
        return PIDController(**params)

    def test_first_sample_seeds_the_ewma(self):
        controller = self._controller(ewma_alpha=0.5)
        controller.decide(make_state(queue_depth=5))
        assert controller.smoothed == pytest.approx(4.0)  # raw error, unmixed

    def test_ewma_smooths_subsequent_samples(self):
        controller = self._controller(ewma_alpha=0.5)
        controller.decide(make_state(queue_depth=5))  # smoothed = 4.0
        controller.decide(make_state(queue_depth=1))  # raw 0.0 -> 0.5*0 + 0.5*4
        assert controller.smoothed == pytest.approx(2.0)

    def test_integral_clamps_both_ways(self):
        controller = self._controller(integral_clamp=2.0)
        for _ in range(10):
            controller.decide(make_state(queue_depth=9))
        assert controller.integral == pytest.approx(2.0)
        for _ in range(20):
            controller.decide(make_state(queue_depth=0))
        assert controller.integral == pytest.approx(-2.0)

    def test_delta_is_integer_and_step_clamped(self):
        controller = self._controller(kp=10.0, max_step=2)
        action = controller.decide(make_state(queue_depth=9))
        assert action.delta == 2
        action = controller.decide(make_state(queue_depth=0))
        assert action.delta == -2

    def test_small_control_rounds_to_hold(self):
        controller = self._controller(kp=0.1, ki=0.0)
        assert controller.decide(make_state(queue_depth=2)).delta == 0


class TestLearnedAgent:
    def test_greedy_backlog_bounded_by_max_step(self):
        agent = LearnedAgent(max_step=2)
        assert agent.decide(make_state(queue_depth=9, residents=1)).delta == 2
        assert agent.decide(make_state(queue_depth=2, residents=1)).delta == 1

    def test_idle_shrink_and_hold(self):
        agent = LearnedAgent(max_step=2)
        idle = make_state(queue_depth=0, arrival_rate_per_s=0.0, residents=2)
        assert agent.decide(idle).delta == -1
        empty = make_state(queue_depth=0, arrival_rate_per_s=0.0, residents=0)
        assert agent.decide(empty).delta == 0

    def test_replay_buffer_records_and_caps_fifo(self, monkeypatch):
        monkeypatch.setattr(autoscale_module, "LEARNED_BUFFER_CAP", 3)
        agent = LearnedAgent(max_step=1)
        for depth in range(5):
            state = make_state(queue_depth=depth)
            agent.record_transition(state, AutoscaleAction(delta=0))
        assert len(agent.transitions) == 3
        # Oldest entries dropped: depths 2, 3, 4 remain.
        assert [s.queue_depth for s, _ in agent.transitions] == [2, 3, 4]

    def test_base_policy_is_abstract_but_hook_is_optional(self):
        policy = AutoscalePolicy()
        with pytest.raises(NotImplementedError):
            policy.decide(make_state())
        policy.record_transition(make_state(), AutoscaleAction(delta=0))  # no-op


# ----------------------------------------------------------------------
# Autoscaler runtime
# ----------------------------------------------------------------------
class TestAutoscalerWiring:
    def test_attach_disables_static_prewarmer(self, store):
        simulation = build_simulation(store)
        assert simulation.controller.prewarmer.enabled
        autoscaler = Autoscaler(spec=get_autoscale_spec("threshold-default"))
        assert not autoscaler.attached
        assert autoscaler.attach(simulation) is autoscaler
        assert autoscaler.attached
        assert simulation.controller.prewarmer.enabled is False

    def test_double_attach_rejected(self, store):
        autoscaler = Autoscaler(spec=get_autoscale_spec("threshold-default"))
        autoscaler.attach(build_simulation(store))
        with pytest.raises(RuntimeError, match="exactly one simulation"):
            autoscaler.attach(build_simulation(store))


class TestActuation:
    def _attached(self, store, spec=None):
        simulation = build_simulation(store)
        spec = spec or get_autoscale_spec("threshold-default")
        return simulation, Autoscaler(spec=spec).attach(simulation)

    def test_scale_up_places_starting_containers_and_events(self, store):
        simulation, autoscaler = self._attached(store)
        fn = simulation.profile_store.function_names()[0]
        before = simulation.cluster.resident_container_count(fn)
        state = make_state(function_name=fn, queue_depth=9, residents=before)
        pushed: list = []
        simulation.controller.event_sink = pushed.append
        applied, targets = autoscaler._actuate(simulation, state, 2)
        assert applied == 2
        assert len(targets) == 2
        assert simulation.cluster.resident_container_count(fn) == before + 2
        assert [type(e) for e in pushed] == [PrewarmCompleteEvent, PrewarmCompleteEvent]
        cold_ms = simulation.profile_store.profile(fn).spec.cold_start_ms
        for event in pushed:
            assert event.container.state is ContainerState.STARTING
            assert event.time_ms == pytest.approx(state.now_ms + cold_ms)

    def test_scale_up_clamps_at_max_residents(self, store):
        spec = dataclasses.replace(
            get_autoscale_spec("threshold-default"), name="clamped", max_residents=1
        )
        simulation, autoscaler = self._attached(store, spec)
        fn = simulation.profile_store.function_names()[0]
        residents = simulation.cluster.resident_container_count(fn)
        state = make_state(function_name=fn, queue_depth=9, residents=residents)
        applied, targets = autoscaler._actuate(simulation, state, 5)
        assert applied == max(0, 1 - residents)
        assert len(targets) == applied

    def test_scale_down_retires_only_warm_idle_and_spares_starting(self, store):
        simulation, autoscaler = self._attached(store)
        fn = simulation.profile_store.function_names()[0]
        warm = [
            simulation.cluster.invoker(0).create_warm_container(fn, 0.0),
            simulation.cluster.invoker(1).create_warm_container(fn, 0.0),
        ]
        starting = Container(
            function_name=fn,
            invoker_id=2,
            state=ContainerState.STARTING,
            warm_at_ms=50.0,
        )
        simulation.cluster.invoker(2).add_container(starting)
        residents = simulation.cluster.resident_container_count(fn)
        assert residents == 3
        state = make_state(
            function_name=fn, now_ms=0.0, queue_depth=0, residents=residents
        )
        applied, targets = autoscaler._actuate(simulation, state, -residents)
        # Only the two warm idle containers are reclaimable: the in-flight
        # prewarm is never touched.
        assert applied == -2
        assert sorted(targets) == [0, 1]
        assert all(c.state is ContainerState.STOPPED for c in warm)
        assert starting.state is ContainerState.STARTING

    def test_scale_down_respects_min_residents_floor(self, store):
        spec = dataclasses.replace(
            get_autoscale_spec("threshold-default"), name="floored", min_residents=1
        )
        simulation, autoscaler = self._attached(store, spec)
        fn = simulation.profile_store.function_names()[0]
        for invoker_id in (0, 1):
            simulation.cluster.invoker(invoker_id).create_warm_container(fn, 0.0)
        residents = simulation.cluster.resident_container_count(fn)
        assert residents == 2
        applied, _targets = autoscaler._actuate(
            simulation,
            make_state(function_name=fn, now_ms=0.0, residents=residents),
            -10,
        )
        assert applied == -1  # the floor keeps one resident
        assert simulation.cluster.resident_container_count(fn) == 1

    def test_end_to_end_run_decides(self, store):
        simulation, autoscaler = self._attached(store)
        simulation.run()
        assert autoscaler.decisions > 0
        assert set(autoscaler.controllers) <= set(
            simulation.profile_store.function_names()
        )
