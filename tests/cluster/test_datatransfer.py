"""Tests for the inter-stage data transfer model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.datatransfer import DataTransferModel


class TestTransferLatency:
    def test_local_is_faster_than_remote(self):
        model = DataTransferModel()
        assert model.local_transfer_ms(2.5) < model.remote_transfer_ms(2.5)

    def test_zero_size_still_pays_fixed_latency(self):
        model = DataTransferModel(local_latency_ms=0.2, remote_latency_ms=8.0)
        assert model.local_transfer_ms(0.0) == pytest.approx(0.2)
        assert model.remote_transfer_ms(0.0) == pytest.approx(8.0)

    def test_latency_scales_with_size(self):
        model = DataTransferModel(remote_bandwidth_mb_per_s=100.0, remote_latency_ms=0.0)
        assert model.remote_transfer_ms(1.0) == pytest.approx(10.0)
        assert model.remote_transfer_ms(2.0) == pytest.approx(20.0)

    def test_dispatch_on_locality_flag(self):
        model = DataTransferModel()
        assert model.transfer_ms(1.0, local=True) == model.local_transfer_ms(1.0)
        assert model.transfer_ms(1.0, local=False) == model.remote_transfer_ms(1.0)

    def test_negative_size_rejected(self):
        model = DataTransferModel()
        with pytest.raises(ValueError):
            model.local_transfer_ms(-1.0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            DataTransferModel(local_bandwidth_mb_per_s=0.0)
        with pytest.raises(ValueError):
            DataTransferModel(remote_latency_ms=-1.0)

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_local_never_slower_than_remote(self, size_mb):
        model = DataTransferModel()
        assert model.local_transfer_ms(size_mb) <= model.remote_transfer_ms(size_mb)

    @given(st.floats(min_value=0.0, max_value=50.0), st.floats(min_value=0.0, max_value=50.0))
    def test_monotone_in_size(self, a, b):
        model = DataTransferModel()
        small, large = sorted((a, b))
        assert model.remote_transfer_ms(small) <= model.remote_transfer_ms(large)
