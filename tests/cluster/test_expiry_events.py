"""Event-driven container expiry: boundary, racing and staleness edges.

Indexed mode replaces the per-tick ``expire_containers`` scan with
:class:`~repro.cluster.events.ContainerExpireEvent` timers using lazy
cancellation.  These tests pin the edge semantics: expiry exactly at the
keep-alive boundary, busy->warm transitions racing a stale expiry event,
and whole-run equivalence with the scan path when containers actually
expire mid-run.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.container import Container, ContainerState
from repro.cluster.controller import ControllerConfig
from repro.cluster.events import ContainerExpireEvent, SchedulerTickEvent
from repro.cluster.simulator import EventLoop, Simulation, SimulationConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.profiles.profiler import ProfileStore


@pytest.fixture(scope="module")
def store() -> ProfileStore:
    return ProfileStore.build()


def warm_container(keep_alive_ms: float = 100.0) -> Container:
    cluster = ClusterState(config=ClusterConfig(num_invokers=1, keep_alive_ms=keep_alive_ms))
    return cluster.invoker(0).create_warm_container("classification", 0.0)


class TestExpiryBoundary:
    def test_expiry_exactly_at_the_keep_alive_boundary(self):
        container = warm_container(keep_alive_ms=100.0)
        event = ContainerExpireEvent(time_ms=container.expires_at_ms, container=container)
        assert event.time_ms == 100.0
        # At the boundary the container is already non-resident for queries
        # (scan semantics: ``now >= expires_at`` expires) ...
        assert container.is_warm_idle(99.999)
        assert not container.is_warm_idle(100.0)
        assert container.is_expired(100.0)
        # ... and the event firing at exactly that time stops it.
        event.apply(None)
        assert container.state is ContainerState.STOPPED

    def test_event_is_housekeeping(self):
        container = warm_container()
        event = ContainerExpireEvent(time_ms=container.expires_at_ms, container=container)
        assert event.housekeeping
        assert not SchedulerTickEvent(time_ms=0.0).housekeeping


class TestStaleExpiryEvents:
    def test_busy_transition_races_a_pending_expiry_event(self):
        container = warm_container(keep_alive_ms=100.0)
        stale = ContainerExpireEvent(time_ms=container.expires_at_ms, container=container)
        # A task grabs the container before the timer elapses: the armed
        # deadline is cleared, so the stale event must be a no-op.
        container.assign_task()
        stale.apply(None)
        assert container.state is ContainerState.BUSY
        # busy -> warm re-arms a fresh deadline relative to the release time.
        container.release_task(40.0, 100.0)
        assert container.expires_at_ms == 140.0
        stale.apply(None)  # still stale: 100.0 != 140.0
        assert container.state is ContainerState.WARM
        fresh = ContainerExpireEvent(time_ms=container.expires_at_ms, container=container)
        fresh.apply(None)
        assert container.state is ContainerState.STOPPED

    def test_rearmed_keep_alive_outlives_the_original_deadline(self):
        container = warm_container(keep_alive_ms=100.0)
        stale = ContainerExpireEvent(time_ms=container.expires_at_ms, container=container)
        container.mark_warm(50.0, 100.0)  # re-armed: expires at 150 now
        stale.apply(None)
        assert container.state is ContainerState.WARM

    def test_event_on_stopped_container_is_a_no_op(self):
        container = warm_container(keep_alive_ms=100.0)
        event = ContainerExpireEvent(time_ms=container.expires_at_ms, container=container)
        container.mark_stopped()
        event.apply(None)  # no raise, no resurrection
        assert container.state is ContainerState.STOPPED


class TestHousekeepingEventLoop:
    def test_housekeeping_events_do_not_keep_the_loop_alive(self):
        loop = EventLoop()
        container = warm_container()
        loop.push(ContainerExpireEvent(time_ms=600.0, container=container))
        assert not loop.has_real
        assert not loop.empty
        loop.push(SchedulerTickEvent(time_ms=5.0))
        assert loop.has_real
        assert loop.peek_real_time() == 5.0
        assert loop.pop().time_ms == 5.0  # global order: tick first
        assert not loop.has_real

    def test_pop_interleaves_housekeeping_in_time_order(self):
        loop = EventLoop()
        container = warm_container()
        loop.push(SchedulerTickEvent(time_ms=10.0))
        loop.push(ContainerExpireEvent(time_ms=4.0, container=container))
        assert loop.peek_time() == 4.0
        assert loop.peek_real_time() == 10.0
        assert isinstance(loop.pop(), ContainerExpireEvent)
        assert isinstance(loop.pop(), SchedulerTickEvent)


class TestWholeRunEquivalence:
    """Runs whose containers expire mid-simulation: event path == scan path."""

    def _config(self, index_mode: str, keep_alive_ms: float) -> ExperimentConfig:
        return ExperimentConfig(
            num_requests=12,
            cluster=ClusterConfig(keep_alive_ms=keep_alive_ms, index_mode=index_mode),
            controller=ControllerConfig(initial_warm="home"),
        )

    def test_short_keep_alive_runs_are_byte_identical(self, store):
        # 80 ms keep-alive is far below the inter-arrival gaps, so initial
        # warm containers expire mid-run and later stages pay cold starts —
        # exercising expiry-driven state divergence if any existed.
        indexed = run_experiment(
            "ESG", "moderate-normal", config=self._config("indexed", 80.0), profile_store=store
        ).summary
        scan = run_experiment(
            "ESG", "moderate-normal", config=self._config("scan", 80.0), profile_store=store
        ).summary
        assert indexed == scan
        assert indexed.cold_starts > 0  # expiry genuinely happened

    def test_keep_alive_equal_to_tick_interval_stays_identical(self, store):
        # Degenerate timing: keep-alive == the 2 ms tick interval, so expiry
        # deadlines land exactly on tick timestamps.  The controller's
        # tick-time expiry drain must make the result independent of how
        # same-timestamp events interleave in the simulation heap.
        indexed = run_experiment(
            "ESG", "moderate-normal", config=self._config("indexed", 2.0), profile_store=store
        ).summary
        scan = run_experiment(
            "ESG", "moderate-normal", config=self._config("scan", 2.0), profile_store=store
        ).summary
        assert indexed == scan

    def test_max_events_cap_binds_on_productive_events_only(self, store):
        # Housekeeping expiry events exist only in indexed mode; if they
        # consumed the max_events budget the two paths would truncate at
        # different simulation points.  Drive the simulator directly so we
        # can pin max_events.
        from repro.experiments.runner import build_requests, make_policy

        def run_capped(index_mode: str):
            sim = Simulation(
                policy=make_policy("ESG"),
                requests=build_requests("moderate-normal", 8, 3, store),
                profile_store=store,
                config=SimulationConfig(
                    cluster=ClusterConfig(keep_alive_ms=80.0, index_mode=index_mode),
                    controller=ControllerConfig(initial_warm="home"),
                    max_events=120,
                ),
                setting_name="moderate-normal",
            )
            summary = sim.run()
            return summary, sim.processed_events

        indexed_summary, indexed_count = run_capped("indexed")
        scan_summary, scan_count = run_capped("scan")
        assert indexed_count == scan_count
        assert indexed_summary == scan_summary
        assert indexed_summary.truncated  # the cap genuinely bound

    def test_expiry_timers_do_not_trip_the_horizon(self, store):
        # Horizon far below the keep-alive: pending expiry timers beyond the
        # horizon must not mark a drained run truncated (scan mode has no
        # such events, so parity requires ignoring them).
        config = ExperimentConfig(
            num_requests=4,
            cluster=ClusterConfig(keep_alive_ms=600_000.0),
            controller=ControllerConfig(initial_warm="all"),
            max_time_ms=50_000.0,
        )
        summary = run_experiment("ESG", "moderate-normal", config=config, profile_store=store).summary
        assert summary.num_completed == summary.num_requests
        assert not summary.truncated


class TestIndexedSimulationExpires(object):
    def test_containers_actually_stop_during_an_indexed_run(self, store):
        from repro.experiments.runner import build_requests, make_policy

        requests = build_requests("moderate-normal", 10, 5, store)
        sim = Simulation(
            policy=make_policy("ESG"),
            requests=requests,
            profile_store=store,
            config=SimulationConfig(
                cluster=ClusterConfig(keep_alive_ms=60.0),
                controller=ControllerConfig(initial_warm="all"),
            ),
            setting_name="moderate-normal",
        )
        sim.run()
        stopped = sum(
            1
            for invoker in sim.cluster
            for containers in invoker._containers.values()
            for c in containers
            if c.state is ContainerState.STOPPED
        )
        assert stopped > 0
