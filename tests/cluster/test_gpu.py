"""Tests for the MIG-style GPU device model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.gpu import GpuDevice


class TestAllocation:
    def test_initial_state(self):
        gpu = GpuDevice(device_id=0, total_vgpus=7)
        assert gpu.available_vgpus == 7
        assert gpu.used_vgpus == 0
        assert gpu.utilization == 0.0

    def test_allocate_and_release(self):
        gpu = GpuDevice(device_id=0, total_vgpus=7)
        gpu.allocate(3)
        assert gpu.used_vgpus == 3
        assert gpu.available_vgpus == 4
        gpu.release(3)
        assert gpu.used_vgpus == 0

    def test_cannot_over_allocate(self):
        gpu = GpuDevice(device_id=0, total_vgpus=7)
        gpu.allocate(5)
        assert not gpu.can_allocate(3)
        with pytest.raises(RuntimeError):
            gpu.allocate(3)

    def test_cannot_over_release(self):
        gpu = GpuDevice(device_id=0, total_vgpus=7)
        gpu.allocate(2)
        with pytest.raises(RuntimeError):
            gpu.release(3)

    def test_invalid_arguments(self):
        gpu = GpuDevice(device_id=0, total_vgpus=7)
        with pytest.raises(ValueError):
            gpu.allocate(0)
        with pytest.raises(ValueError):
            gpu.release(-1)
        with pytest.raises(ValueError):
            GpuDevice(device_id=0, total_vgpus=0)

    def test_utilization_fraction(self):
        gpu = GpuDevice(device_id=0, total_vgpus=4)
        gpu.allocate(1)
        assert gpu.utilization == 0.25


class TestAllocationInvariant:
    @given(st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=50))
    def test_used_never_exceeds_total(self, requests):
        """Property: interleaved allocations/releases never exceed capacity."""
        gpu = GpuDevice(device_id=1, total_vgpus=7)
        active: list[int] = []
        for req in requests:
            if gpu.can_allocate(req):
                gpu.allocate(req)
                active.append(req)
            elif active:
                gpu.release(active.pop())
            assert 0 <= gpu.used_vgpus <= gpu.total_vgpus
            assert gpu.used_vgpus == sum(active)
