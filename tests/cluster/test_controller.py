"""Tests for the controller and the end-to-end simulation loop.

A deterministic fixed-configuration policy exercises the controller's
mechanics (queue management, dispatch, cold starts, resource release,
recheck list) without depending on the ESG search.
"""

from __future__ import annotations

import pytest

from repro.cluster.controller import ControllerConfig
from repro.cluster.cluster import ClusterConfig
from repro.cluster.policy_api import SchedulingDecision, SchedulingPolicy
from repro.cluster.simulator import Simulation, SimulationConfig
from repro.profiles.configuration import Configuration
from repro.profiles.profiler import ProfileStore
from repro.workloads.applications import image_classification
from repro.workloads.request import Request


class FixedConfigPolicy(SchedulingPolicy):
    """Always proposes the same configuration (default: the minimum)."""

    name = "fixed"

    def __init__(self, config: Configuration | None = None):
        super().__init__()
        self._config = config
        self.plan_calls = 0

    def plan(self, queue, now_ms):
        self.plan_calls += 1
        config = self._config or self.context.config_space.minimum
        return SchedulingDecision(candidates=[config])


class RefusingPolicy(SchedulingPolicy):
    """Proposes a configuration no invoker can ever host."""

    name = "refusing"

    def plan(self, queue, now_ms):
        return SchedulingDecision(candidates=[Configuration(1, 64, 7)])

    def select_invoker(self, config, queue, now_ms):
        return None


def make_requests(n: int, spacing_ms: float = 50.0, slo_ms: float = 2000.0) -> list[Request]:
    return [
        Request(
            request_id=i,
            workflow=image_classification(),
            arrival_ms=1.0 + i * spacing_ms,
            slo_ms=slo_ms,
        )
        for i in range(n)
    ]


def build_simulation(
    policy, requests, store, *, initial_warm="all", noise=0.0, cluster=None, count_overhead=True
):
    return Simulation(
        policy=policy,
        requests=requests,
        profile_store=store,
        config=SimulationConfig(
            seed=7,
            noise_sigma=noise,
            cluster=cluster or ClusterConfig(num_invokers=4),
            controller=ControllerConfig(
                initial_warm=initial_warm, count_overhead_in_latency=count_overhead
            ),
        ),
        setting_name="test",
    )


@pytest.fixture(scope="module")
def store() -> ProfileStore:
    return ProfileStore.build()


class TestEndToEndMechanics:
    def test_all_requests_complete(self, store):
        requests = make_requests(5)
        sim = build_simulation(FixedConfigPolicy(), requests, store)
        summary = sim.run()
        assert summary.num_requests == 5
        assert summary.num_completed == 5
        assert all(r.is_complete for r in requests)

    def test_stage_ordering_respected(self, store):
        requests = make_requests(3)
        sim = build_simulation(FixedConfigPolicy(), requests, store)
        sim.run()
        for request in requests:
            s1 = request.stage_completion_ms["s1"]
            s2 = request.stage_completion_ms["s2"]
            s3 = request.stage_completion_ms["s3"]
            assert s1 < s2 < s3
            assert request.completed_ms == s3

    def test_latency_accounts_for_execution(self, store):
        requests = make_requests(1)
        sim = build_simulation(FixedConfigPolicy(), requests, store)
        sim.run()
        base = store.minimum_config_latency_ms(requests[0].workflow.function_names())
        assert requests[0].latency_ms >= base  # execution plus transfers and ticks

    def test_resources_fully_released_at_end(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(4), store)
        sim.run()
        for invoker in sim.cluster:
            assert invoker.used_vcpus == 0
            assert invoker.used_vgpus == 0

    def test_cost_positive_and_matches_tasks(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(3), store)
        summary = sim.run()
        assert summary.total_cost_cents > 0
        assert summary.total_cost_cents == pytest.approx(
            sum(t.cost_cents for t in sim.metrics.tasks)
        )

    def test_warm_cluster_has_no_cold_starts(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(3), store, initial_warm="all")
        summary = sim.run()
        assert summary.cold_starts == 0

    def test_cold_cluster_pays_cold_starts(self, store):
        sim = build_simulation(
            FixedConfigPolicy(), make_requests(2, slo_ms=100000.0), store, initial_warm="none"
        )
        summary = sim.run()
        assert summary.cold_starts > 0
        # The function stays resident afterwards, so there are at most as
        # many cold starts as (function, node) pairs actually used.
        assert summary.cold_starts <= 3 * len(sim.cluster)

    def test_batching_groups_jobs(self, store):
        # Ten requests arriving (almost) simultaneously with a batch-4 policy
        # must be grouped into fewer, larger tasks at the first stage.
        requests = make_requests(10, spacing_ms=0.1, slo_ms=20000.0)
        policy = FixedConfigPolicy(Configuration(4, 2, 2))
        sim = build_simulation(policy, requests, store)
        sim.run()
        s1_tasks = [t for t in sim.metrics.tasks if t.stage_id == "s1"]
        assert any(t.batch_size > 1 for t in s1_tasks)
        assert len(s1_tasks) < 10

    def test_local_transfer_when_stages_colocate(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(2), store)
        summary = sim.run()
        assert summary.local_transfers + summary.remote_transfers > 0

    def test_deterministic_given_seed(self, store):
        """With measured wall-clock overhead excluded, a run is fully reproducible."""

        def run_once():
            sim = build_simulation(
                FixedConfigPolicy(), make_requests(4), store, noise=0.05, count_overhead=False
            )
            summary = sim.run()
            return summary.total_cost_cents, summary.mean_latency_ms

        assert run_once() == run_once()


class TestRecheckAndForcedDispatch:
    def test_refusing_policy_triggers_forced_min_dispatch(self, store):
        requests = make_requests(1, slo_ms=100000.0)
        sim = build_simulation(RefusingPolicy(), requests, store)
        summary = sim.run()
        assert summary.forced_min_dispatches > 0
        assert requests[0].is_complete

    def test_overhead_recorded_per_plan_call(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(2), store)
        summary = sim.run()
        assert len(sim.metrics.overhead_ms_samples) >= 6  # at least one per stage dispatch


class TestSimulationGuards:
    def test_empty_request_list_rejected(self, store):
        with pytest.raises(ValueError):
            Simulation(policy=FixedConfigPolicy(), requests=[], profile_store=store)

    def test_max_events_stops_run(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(3), store)
        sim.config = SimulationConfig(max_events=2, cluster=ClusterConfig(num_invokers=4))
        sim.run()
        assert sim.processed_events <= 2
