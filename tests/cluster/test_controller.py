"""Tests for the controller and the end-to-end simulation loop.

A deterministic fixed-configuration policy exercises the controller's
mechanics (queue management, dispatch, cold starts, resource release,
recheck list) without depending on the ESG search.
"""

from __future__ import annotations

import pytest

from repro.cluster.controller import ControllerConfig
from repro.cluster.cluster import ClusterConfig
from repro.cluster.policy_api import SchedulingDecision, SchedulingPolicy
from repro.cluster.simulator import Simulation, SimulationConfig
from repro.profiles.configuration import Configuration
from repro.profiles.profiler import ProfileStore
from repro.workloads.applications import image_classification
from repro.workloads.request import Request


class FixedConfigPolicy(SchedulingPolicy):
    """Always proposes the same configuration (default: the minimum)."""

    name = "fixed"

    def __init__(self, config: Configuration | None = None):
        super().__init__()
        self._config = config
        self.plan_calls = 0

    def plan(self, queue, now_ms):
        self.plan_calls += 1
        config = self._config or self.context.config_space.minimum
        return SchedulingDecision(candidates=[config])


class RefusingPolicy(SchedulingPolicy):
    """Proposes a configuration no invoker can ever host."""

    name = "refusing"

    def plan(self, queue, now_ms):
        return SchedulingDecision(candidates=[Configuration(1, 64, 7)])

    def select_invoker(self, config, queue, now_ms):
        return None


def make_requests(n: int, spacing_ms: float = 50.0, slo_ms: float = 2000.0) -> list[Request]:
    return [
        Request(
            request_id=i,
            workflow=image_classification(),
            arrival_ms=1.0 + i * spacing_ms,
            slo_ms=slo_ms,
        )
        for i in range(n)
    ]


def build_simulation(
    policy, requests, store, *, initial_warm="all", noise=0.0, cluster=None, count_overhead=True
):
    return Simulation(
        policy=policy,
        requests=requests,
        profile_store=store,
        config=SimulationConfig(
            seed=7,
            noise_sigma=noise,
            cluster=cluster or ClusterConfig(num_invokers=4),
            controller=ControllerConfig(
                initial_warm=initial_warm, count_overhead_in_latency=count_overhead
            ),
        ),
        setting_name="test",
    )


@pytest.fixture(scope="module")
def store() -> ProfileStore:
    return ProfileStore.build()


class TestEndToEndMechanics:
    def test_all_requests_complete(self, store):
        requests = make_requests(5)
        sim = build_simulation(FixedConfigPolicy(), requests, store)
        summary = sim.run()
        assert summary.num_requests == 5
        assert summary.num_completed == 5
        assert all(r.is_complete for r in requests)

    def test_stage_ordering_respected(self, store):
        requests = make_requests(3)
        sim = build_simulation(FixedConfigPolicy(), requests, store)
        sim.run()
        for request in requests:
            s1 = request.stage_completion_ms["s1"]
            s2 = request.stage_completion_ms["s2"]
            s3 = request.stage_completion_ms["s3"]
            assert s1 < s2 < s3
            assert request.completed_ms == s3

    def test_latency_accounts_for_execution(self, store):
        requests = make_requests(1)
        sim = build_simulation(FixedConfigPolicy(), requests, store)
        sim.run()
        base = store.minimum_config_latency_ms(requests[0].workflow.function_names())
        assert requests[0].latency_ms >= base  # execution plus transfers and ticks

    def test_resources_fully_released_at_end(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(4), store)
        sim.run()
        for invoker in sim.cluster:
            assert invoker.used_vcpus == 0
            assert invoker.used_vgpus == 0

    def test_cost_positive_and_matches_tasks(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(3), store)
        summary = sim.run()
        assert summary.total_cost_cents > 0
        assert summary.total_cost_cents == pytest.approx(
            sum(t.cost_cents for t in sim.metrics.tasks)
        )

    def test_warm_cluster_has_no_cold_starts(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(3), store, initial_warm="all")
        summary = sim.run()
        assert summary.cold_starts == 0

    def test_cold_cluster_pays_cold_starts(self, store):
        sim = build_simulation(
            FixedConfigPolicy(), make_requests(2, slo_ms=100000.0), store, initial_warm="none"
        )
        summary = sim.run()
        assert summary.cold_starts > 0
        # The function stays resident afterwards, so there are at most as
        # many cold starts as (function, node) pairs actually used.
        assert summary.cold_starts <= 3 * len(sim.cluster)

    def test_batching_groups_jobs(self, store):
        # Ten requests arriving (almost) simultaneously with a batch-4 policy
        # must be grouped into fewer, larger tasks at the first stage.
        requests = make_requests(10, spacing_ms=0.1, slo_ms=20000.0)
        policy = FixedConfigPolicy(Configuration(4, 2, 2))
        sim = build_simulation(policy, requests, store)
        sim.run()
        s1_tasks = [t for t in sim.metrics.tasks if t.stage_id == "s1"]
        assert any(t.batch_size > 1 for t in s1_tasks)
        assert len(s1_tasks) < 10

    def test_local_transfer_when_stages_colocate(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(2), store)
        summary = sim.run()
        assert summary.local_transfers + summary.remote_transfers > 0

    def test_deterministic_given_seed(self, store):
        """With measured wall-clock overhead excluded, a run is fully reproducible."""

        def run_once():
            sim = build_simulation(
                FixedConfigPolicy(), make_requests(4), store, noise=0.05, count_overhead=False
            )
            summary = sim.run()
            return summary.total_cost_cents, summary.mean_latency_ms

        assert run_once() == run_once()


class TestRecheckAndForcedDispatch:
    def test_refusing_policy_triggers_forced_min_dispatch(self, store):
        requests = make_requests(1, slo_ms=100000.0)
        sim = build_simulation(RefusingPolicy(), requests, store)
        summary = sim.run()
        assert summary.forced_min_dispatches > 0
        assert requests[0].is_complete

    def test_overhead_recorded_per_plan_call(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(2), store)
        summary = sim.run()
        assert len(sim.metrics.overhead_ms_samples) >= 6  # at least one per stage dispatch


def _many_app_requests(num_apps: int, slo_ms: float = 500_000.0) -> list[Request]:
    from repro.workloads.dag import Workflow

    requests = []
    for i in range(num_apps):
        workflow = Workflow(name=f"app-{i:04d}")
        workflow.add_stage("s1", "classification")
        requests.append(
            Request(
                request_id=i,
                workflow=workflow,
                arrival_ms=1.0 + 0.01 * i,
                slo_ms=slo_ms,
            )
        )
    return requests


def _standalone_controller(store, policy, index_mode: str, num_invokers: int = 1):
    """A controller wired up outside a Simulation (events collected to a list)."""
    from repro.cluster.cluster import ClusterState
    from repro.cluster.controller import Controller
    from repro.cluster.metrics import MetricsCollector
    from repro.cluster.policy_api import SchedulingContext
    from repro.profiles.perf_model import AnalyticalPerformanceModel

    cluster = ClusterState(
        config=ClusterConfig(num_invokers=num_invokers, index_mode=index_mode)
    )
    events: list = []
    controller = Controller(
        policy=policy,
        cluster=cluster,
        profile_store=store,
        runtime_perf_model=AnalyticalPerformanceModel(),
        pricing=store.pricing,
        metrics=MetricsCollector(policy_name=policy.name, setting_name="test"),
        event_sink=events.append,
    )
    policy.bind(
        SchedulingContext(
            profile_store=store,
            cluster=cluster,
            config_space=store.space,
            pricing=store.pricing,
            workflows={},
        )
    )
    return controller, events


class TestManyQueues:
    """Recheck-list and dirty-set behaviour with hundreds of AFW queues."""

    def test_hundreds_of_queues_park_in_recheck_and_force_dispatch(self, store):
        # 300 single-stage apps, a policy whose plan never fits anywhere:
        # every queue must park in the recheck list, age through
        # recheck_rounds_before_min rounds, then drain via forced minimum
        # dispatches — with the dirty-set bookkeeping settling to empty.
        policy = RefusingPolicy()
        controller, events = _standalone_controller(store, policy, "indexed", num_invokers=4)
        for request in _many_app_requests(300):
            controller.on_request_arrival(request, now_ms=1.0)
        assert controller.pending_jobs() == 300
        assert len(controller._nonempty) == 300

        controller.run_scheduling_pass(now_ms=2.0)
        assert len(controller._recheck) > 0  # most queues parked waiting
        total_completions = 0
        rounds = 0
        while controller.has_pending_work() and rounds < 60:
            now = 3.0 + rounds
            controller.run_scheduling_pass(now_ms=now)
            # Stand in for the event loop: complete dispatched tasks so their
            # resources free up for the remaining parked queues (completions
            # also arm keep-alive expiry timers, which we ignore here).
            from repro.cluster.events import TaskCompletionEvent

            completions = [e for e in events if isinstance(e, TaskCompletionEvent)]
            total_completions += len(completions)
            for event in completions:
                controller.on_task_completion(event.task, now + 0.5)
            events.clear()
            rounds += 1
        assert controller.pending_jobs() == 0
        assert controller._nonempty == set()
        assert controller._recheck == []
        assert controller.metrics.forced_min_dispatches == 300
        assert total_completions == 300  # one completion event per forced dispatch

    def test_recheck_storm_is_byte_identical_to_scan_mode(self, store):
        class DeterministicFixedPolicy(FixedConfigPolicy):
            # Report a modeled overhead so the summary carries no wall-clock
            # noise (measured overhead differs even between two scan runs).
            def plan(self, queue, now_ms):
                decision = super().plan(queue, now_ms)
                decision.reported_overhead_ms = 0.0
                return decision

        def run(index_mode: str):
            sim = build_simulation(
                DeterministicFixedPolicy(Configuration(1, 8, 4)),
                _many_app_requests(36),
                store,
                cluster=ClusterConfig(num_invokers=1, index_mode=index_mode),
            )
            summary = sim.run()
            order = [(t.app_name, t.dispatch_ms, t.invoker_id) for t in sim.metrics.tasks]
            return summary, order

        indexed_summary, indexed_order = run("indexed")
        scan_summary, scan_order = run("scan")
        assert indexed_summary == scan_summary
        assert indexed_order == scan_order
        assert indexed_summary.forced_min_dispatches > 0  # storm actually happened

    def test_pending_jobs_counter_and_dirty_set_follow_queue_mutations(self, store):
        from repro.workloads.request import Job

        controller, _ = _standalone_controller(store, RefusingPolicy(), "indexed")
        requests = _many_app_requests(5)
        for request in requests:
            controller.register_workflow(request.workflow)
        queue = controller.queue_for(requests[0].app_name, "s1")
        assert controller.pending_jobs() == 0
        queue.push(Job(request=requests[0], stage_id="s1", ready_ms=0.0))
        queue.push(Job(request=requests[0], stage_id="s1", ready_ms=0.0))
        assert controller.pending_jobs() == 2
        assert queue.key in controller._nonempty
        queue.pop_batch(1)
        assert controller.pending_jobs() == 1
        assert queue.key in controller._nonempty
        queue.pop_batch(1)
        assert controller.pending_jobs() == 0
        assert queue.key not in controller._nonempty
        assert not controller.has_pending_work()


class TestSimulationGuards:
    def test_empty_request_list_rejected(self, store):
        with pytest.raises(ValueError):
            Simulation(policy=FixedConfigPolicy(), requests=[], profile_store=store)

    def test_max_events_stops_run(self, store):
        sim = build_simulation(FixedConfigPolicy(), make_requests(3), store)
        sim.config = SimulationConfig(max_events=2, cluster=ClusterConfig(num_invokers=4))
        sim.run()
        assert sim.processed_events <= 2
