"""Tests for the AFW queues and the scheduling policy interface."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.datatransfer import DataTransferModel
from repro.cluster.policy_api import (
    AFWQueue,
    SchedulingContext,
    SchedulingDecision,
    SchedulingPolicy,
)
from repro.profiles.configuration import Configuration
from repro.workloads.applications import image_classification
from repro.workloads.request import Job, Request


def make_queue(stage_id: str = "s1") -> AFWQueue:
    wf = image_classification()
    return AFWQueue(
        app_name=wf.name,
        stage_id=stage_id,
        function_name=wf.function_of(stage_id),
        workflow=wf,
    )


def make_job(queue: AFWQueue, req_id: int, arrival: float = 0.0, slo: float = 1000.0) -> Job:
    request = Request(
        request_id=req_id, workflow=queue.workflow, arrival_ms=arrival, slo_ms=slo
    )
    return Job(request=request, stage_id=queue.stage_id, ready_ms=arrival)


class TestAFWQueue:
    def test_push_and_pop_batch_fifo(self):
        queue = make_queue()
        jobs = [make_job(queue, i, arrival=float(i)) for i in range(4)]
        for job in jobs:
            queue.push(job)
        assert len(queue) == 4
        popped = queue.pop_batch(2)
        assert popped == jobs[:2]
        assert len(queue) == 2

    def test_push_wrong_stage_rejected(self):
        queue = make_queue("s1")
        other = make_queue("s2")
        job = make_job(other, 0)
        with pytest.raises(ValueError):
            queue.push(job)

    def test_pop_more_than_available_rejected(self):
        queue = make_queue()
        queue.push(make_job(queue, 0))
        with pytest.raises(ValueError):
            queue.pop_batch(2)
        with pytest.raises(ValueError):
            queue.pop_batch(0)

    def test_oldest_job_and_waiting(self):
        queue = make_queue()
        queue.push(make_job(queue, 0, arrival=10.0))
        queue.push(make_job(queue, 1, arrival=30.0))
        assert queue.oldest_job().request.request_id == 0
        assert queue.max_waiting_ms(50.0) == pytest.approx(40.0)

    def test_most_urgent_request(self):
        queue = make_queue()
        queue.push(make_job(queue, 0, arrival=0.0, slo=5000.0))
        queue.push(make_job(queue, 1, arrival=10.0, slo=100.0))
        assert queue.most_urgent_request(50.0).request_id == 1
        assert queue.min_remaining_budget_ms(50.0) == pytest.approx(60.0)

    def test_empty_queue_accessors_raise(self):
        queue = make_queue()
        assert queue.is_empty
        assert queue.max_waiting_ms(10.0) == 0.0
        with pytest.raises(IndexError):
            queue.oldest_job()
        with pytest.raises(IndexError):
            queue.most_urgent_request(10.0)

    def test_snapshot_is_immutable_copy(self):
        queue = make_queue()
        queue.push(make_job(queue, 0))
        snapshot = queue.jobs_snapshot()
        assert isinstance(snapshot, tuple)
        assert len(snapshot) == 1

    def test_key(self):
        queue = make_queue("s2")
        assert queue.key == ("image_classification", "s2")


class TestSchedulingDecision:
    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            SchedulingDecision(candidates=[])

    def test_best_is_first_candidate(self):
        a, b = Configuration(1, 1, 1), Configuration(2, 2, 2)
        assert SchedulingDecision(candidates=[a, b]).best is a


class _MinimalPolicy(SchedulingPolicy):
    """Always proposes the minimum configuration."""

    name = "minimal"

    def plan(self, queue, now_ms):
        return SchedulingDecision(candidates=[self.context.config_space.minimum])


@pytest.fixture()
def bound_policy(small_store):
    cluster = ClusterState(config=ClusterConfig(num_invokers=4))
    context = SchedulingContext(
        profile_store=small_store,
        cluster=cluster,
        config_space=small_store.space,
        pricing=small_store.pricing,
        workflows={"image_classification": image_classification()},
        transfer_model=DataTransferModel(),
    )
    policy = _MinimalPolicy()
    policy.bind(context)
    return policy


class TestSchedulingPolicy:
    def test_unbound_policy_raises(self):
        policy = _MinimalPolicy()
        with pytest.raises(RuntimeError):
            _ = policy.context

    def test_default_select_invoker_prefers_home(self, bound_policy):
        queue = make_queue()
        queue.push(make_job(queue, 0))
        cluster = bound_policy.context.cluster
        home = cluster.home_invoker_id(queue.app_name, queue.function_name)
        chosen = bound_policy.select_invoker(Configuration(1, 1, 1), queue, 0.0)
        assert chosen == home

    def test_default_select_invoker_falls_back_when_home_full(self, bound_policy):
        queue = make_queue()
        queue.push(make_job(queue, 0))
        cluster = bound_policy.context.cluster
        home = cluster.home_invoker_id(queue.app_name, queue.function_name)
        cluster.invoker(home).reserve(Configuration(1, 16, 7))
        chosen = bound_policy.select_invoker(Configuration(1, 1, 1), queue, 0.0)
        assert chosen is not None and chosen != home

    def test_default_select_invoker_none_when_cluster_full(self, bound_policy):
        queue = make_queue()
        queue.push(make_job(queue, 0))
        for invoker in bound_policy.context.cluster:
            invoker.reserve(Configuration(1, 16, 7))
        assert bound_policy.select_invoker(Configuration(1, 1, 1), queue, 0.0) is None

    def test_capability_flags_default_true(self, bound_policy):
        assert bound_policy.uses_gpu_sharing
        assert bound_policy.uses_batching
