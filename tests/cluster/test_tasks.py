"""Tests for the task records."""

from __future__ import annotations

import pytest

from repro.cluster.tasks import Task
from repro.profiles.configuration import Configuration
from repro.workloads.applications import image_classification
from repro.workloads.request import Job, Request


def make_jobs(n: int, ready_ms: float = 10.0) -> list[Job]:
    jobs = []
    for i in range(n):
        request = Request(
            request_id=i, workflow=image_classification(), arrival_ms=0.0, slo_ms=1000.0
        )
        jobs.append(Job(request=request, stage_id="s1", ready_ms=ready_ms))
    return jobs


def make_task(**kwargs) -> Task:
    defaults = dict(
        app_name="image_classification",
        stage_id="s1",
        function_name="super_resolution",
        jobs=make_jobs(2),
        config=Configuration(2, 2, 1),
        invoker_id=3,
        dispatch_ms=100.0,
        overhead_ms=5.0,
        cold_start_ms=0.0,
        transfer_ms=10.0,
        exec_ms=85.0,
    )
    defaults.update(kwargs)
    return Task(**defaults)


class TestTask:
    def test_timing_breakdown(self):
        task = make_task()
        assert task.start_ms == 105.0
        assert task.duration_ms == 95.0
        assert task.finish_ms == 200.0

    def test_batch_size_is_number_of_jobs(self):
        assert make_task().batch_size == 2

    def test_jobs_cannot_exceed_config_batch(self):
        with pytest.raises(ValueError):
            make_task(jobs=make_jobs(3), config=Configuration(2, 2, 1))

    def test_task_requires_jobs(self):
        with pytest.raises(ValueError):
            make_task(jobs=[])

    def test_cold_start_flag(self):
        assert not make_task().was_cold_start
        assert make_task(cold_start_ms=3500.0).was_cold_start

    def test_cost_per_job(self):
        task = make_task()
        task.cost_cents = 1.0
        assert task.cost_per_job_cents == pytest.approx(0.5)

    def test_waiting_time_is_mean_over_jobs(self):
        task = make_task(jobs=make_jobs(2, ready_ms=40.0), dispatch_ms=100.0)
        assert task.waiting_ms() == pytest.approx(60.0)

    def test_task_ids_unique(self):
        assert make_task().task_id != make_task().task_id
