"""Tests for the metrics collector and run summaries."""

from __future__ import annotations

import pytest

from repro.cluster.metrics import MetricsCollector
from repro.cluster.tasks import Task
from repro.profiles.configuration import Configuration
from repro.workloads.applications import depth_recognition, image_classification
from repro.workloads.request import Job, Request


def make_completed_request(req_id: int, latency_ms: float, slo_ms: float = 500.0, app=None) -> Request:
    workflow = app or image_classification()
    request = Request(request_id=req_id, workflow=workflow, arrival_ms=0.0, slo_ms=slo_ms)
    t = 0.0
    per_stage = latency_ms / workflow.num_stages
    for sid in workflow.topological_order():
        t += per_stage
        request.record_stage_completion(sid, t, invoker_id=0)
    return request


def make_task(request: Request, cost: float = 1.0, cold: float = 0.0, vgpus: int = 1) -> Task:
    job = Job(request=request, stage_id="s1", ready_ms=0.0)
    task = Task(
        app_name=request.app_name,
        stage_id="s1",
        function_name="super_resolution",
        jobs=[job],
        config=Configuration(1, 1, vgpus),
        invoker_id=0,
        dispatch_ms=10.0,
        cold_start_ms=cold,
        transfer_ms=0.0,
        exec_ms=100.0,
    )
    task.cost_cents = cost
    return task


class TestSloHitRate:
    def test_hit_rate_counts_unfinished_as_misses(self):
        metrics = MetricsCollector()
        metrics.register_request(make_completed_request(0, 400.0))  # hit
        metrics.register_request(make_completed_request(1, 600.0))  # miss
        unfinished = Request(
            request_id=2, workflow=image_classification(), arrival_ms=0.0, slo_ms=500.0
        )
        metrics.register_request(unfinished)
        assert metrics.slo_hit_rate() == pytest.approx(1 / 3)

    def test_per_app_hit_rate(self):
        metrics = MetricsCollector()
        metrics.register_request(make_completed_request(0, 400.0))
        metrics.register_request(make_completed_request(1, 900.0, app=depth_recognition()))
        assert metrics.slo_hit_rate("image_classification") == 1.0
        assert metrics.slo_hit_rate("depth_recognition") == 0.0

    def test_empty_collector_rates_are_zero(self):
        metrics = MetricsCollector()
        assert metrics.slo_hit_rate() == 0.0
        assert metrics.cost_per_request_cents() == 0.0
        assert metrics.plan_miss_rate() == 0.0


class TestCostAndTasks:
    def test_total_cost_sums_task_costs(self):
        metrics = MetricsCollector()
        request = make_completed_request(0, 400.0)
        metrics.register_request(request)
        metrics.record_task(make_task(request, cost=1.5))
        metrics.record_task(make_task(request, cost=2.5))
        assert metrics.total_cost_cents() == pytest.approx(4.0)
        assert metrics.cost_per_request_cents() == pytest.approx(4.0)

    def test_cold_and_warm_start_counters(self):
        metrics = MetricsCollector()
        request = make_completed_request(0, 400.0)
        metrics.record_task(make_task(request, cold=0.0))
        metrics.record_task(make_task(request, cold=1000.0))
        assert metrics.warm_starts == 1
        assert metrics.cold_starts == 1

    def test_vgpu_time_accumulates(self):
        metrics = MetricsCollector()
        request = make_completed_request(0, 400.0)
        metrics.record_task(make_task(request, vgpus=2))
        assert metrics.total_vgpu_ms() == pytest.approx(2 * 100.0)

    def test_latencies_sorted_by_completion(self):
        metrics = MetricsCollector()
        metrics.register_request(make_completed_request(0, 300.0))
        metrics.register_request(make_completed_request(1, 200.0))
        assert metrics.latencies_ms() == [200.0, 300.0]


class TestPlanAndTransfers:
    def test_plan_miss_rate(self):
        metrics = MetricsCollector()
        metrics.record_plan_attempt(miss=True)
        metrics.record_plan_attempt(miss=False)
        metrics.record_plan_attempt(miss=True)
        assert metrics.plan_miss_rate() == pytest.approx(2 / 3)

    def test_transfer_counters(self):
        metrics = MetricsCollector()
        metrics.record_transfer(local=True)
        metrics.record_transfer(local=False)
        metrics.record_transfer(local=True)
        assert metrics.local_transfers == 2
        assert metrics.remote_transfers == 1

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().record_overhead(-1.0)


class TestSummary:
    def test_summary_aggregates(self):
        metrics = MetricsCollector(policy_name="ESG", setting_name="strict-light")
        request_hit = make_completed_request(0, 400.0)
        request_miss = make_completed_request(1, 700.0)
        metrics.register_request(request_hit)
        metrics.register_request(request_miss)
        metrics.record_task(make_task(request_hit, cost=1.0))
        metrics.record_overhead(5.0)
        metrics.record_plan_attempt(miss=True)
        summary = metrics.summary()
        assert summary.policy == "ESG"
        assert summary.setting == "strict-light"
        assert summary.num_requests == 2
        assert summary.num_completed == 2
        assert summary.slo_hit_rate == pytest.approx(0.5)
        assert summary.total_cost_cents == pytest.approx(1.0)
        assert summary.plan_miss_rate == 1.0
        assert summary.mean_overhead_ms == pytest.approx(5.0)
        assert "image_classification" in summary.per_app_slo_hit_rate

    def test_summary_as_dict_round_trip(self):
        metrics = MetricsCollector(policy_name="X", setting_name="s")
        metrics.register_request(make_completed_request(0, 100.0))
        data = metrics.summary().as_dict()
        assert data["policy"] == "X"
        assert data["num_requests"] == 1
