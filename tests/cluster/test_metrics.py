"""Tests for the metrics collector and run summaries."""

from __future__ import annotations

import random

import pytest

from repro.cluster.metrics import (
    MetricsCollector,
    MetricsConfig,
    charged_cost_cents,
    charged_duration_ms,
)
from repro.cluster.tasks import Task
from repro.profiles.configuration import Configuration
from repro.workloads.applications import depth_recognition, image_classification
from repro.workloads.request import Job, Request


def make_completed_request(req_id: int, latency_ms: float, slo_ms: float = 500.0, app=None) -> Request:
    workflow = app or image_classification()
    request = Request(request_id=req_id, workflow=workflow, arrival_ms=0.0, slo_ms=slo_ms)
    t = 0.0
    per_stage = latency_ms / workflow.num_stages
    for sid in workflow.topological_order():
        t += per_stage
        request.record_stage_completion(sid, t, invoker_id=0)
    return request


def make_task(request: Request, cost: float = 1.0, cold: float = 0.0, vgpus: int = 1) -> Task:
    job = Job(request=request, stage_id="s1", ready_ms=0.0)
    task = Task(
        app_name=request.app_name,
        stage_id="s1",
        function_name="super_resolution",
        jobs=[job],
        config=Configuration(1, 1, vgpus),
        invoker_id=0,
        dispatch_ms=10.0,
        cold_start_ms=cold,
        transfer_ms=0.0,
        exec_ms=100.0,
    )
    task.cost_cents = cost
    return task


class TestSloHitRate:
    def test_hit_rate_counts_unfinished_as_misses(self):
        metrics = MetricsCollector()
        metrics.register_request(make_completed_request(0, 400.0))  # hit
        metrics.register_request(make_completed_request(1, 600.0))  # miss
        unfinished = Request(
            request_id=2, workflow=image_classification(), arrival_ms=0.0, slo_ms=500.0
        )
        metrics.register_request(unfinished)
        assert metrics.slo_hit_rate() == pytest.approx(1 / 3)

    def test_per_app_hit_rate(self):
        metrics = MetricsCollector()
        metrics.register_request(make_completed_request(0, 400.0))
        metrics.register_request(make_completed_request(1, 900.0, app=depth_recognition()))
        assert metrics.slo_hit_rate("image_classification") == 1.0
        assert metrics.slo_hit_rate("depth_recognition") == 0.0

    def test_empty_collector_rates_are_zero(self):
        metrics = MetricsCollector()
        assert metrics.slo_hit_rate() == 0.0
        assert metrics.cost_per_request_cents() == 0.0
        assert metrics.plan_miss_rate() == 0.0


class TestCostAndTasks:
    def test_total_cost_sums_task_costs(self):
        metrics = MetricsCollector()
        request = make_completed_request(0, 400.0)
        metrics.register_request(request)
        metrics.record_task(make_task(request, cost=1.5))
        metrics.record_task(make_task(request, cost=2.5))
        assert metrics.total_cost_cents() == pytest.approx(4.0)
        assert metrics.cost_per_request_cents() == pytest.approx(4.0)

    def test_cold_and_warm_start_counters(self):
        metrics = MetricsCollector()
        request = make_completed_request(0, 400.0)
        metrics.record_task(make_task(request, cold=0.0))
        metrics.record_task(make_task(request, cold=1000.0))
        assert metrics.warm_starts == 1
        assert metrics.cold_starts == 1

    def test_vgpu_time_accumulates(self):
        metrics = MetricsCollector()
        request = make_completed_request(0, 400.0)
        metrics.record_task(make_task(request, vgpus=2))
        assert metrics.total_vgpu_ms() == pytest.approx(2 * 100.0)

    def test_latencies_sorted_by_completion(self):
        metrics = MetricsCollector()
        metrics.register_request(make_completed_request(0, 300.0))
        metrics.register_request(make_completed_request(1, 200.0))
        assert metrics.latencies_ms() == [200.0, 300.0]


class TestPlanAndTransfers:
    def test_plan_miss_rate(self):
        metrics = MetricsCollector()
        metrics.record_plan_attempt(miss=True)
        metrics.record_plan_attempt(miss=False)
        metrics.record_plan_attempt(miss=True)
        assert metrics.plan_miss_rate() == pytest.approx(2 / 3)

    def test_transfer_counters(self):
        metrics = MetricsCollector()
        metrics.record_transfer(local=True)
        metrics.record_transfer(local=False)
        metrics.record_transfer(local=True)
        assert metrics.local_transfers == 2
        assert metrics.remote_transfers == 1

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().record_overhead(-1.0)


class TestSummary:
    def test_summary_aggregates(self):
        metrics = MetricsCollector(policy_name="ESG", setting_name="strict-light")
        request_hit = make_completed_request(0, 400.0)
        request_miss = make_completed_request(1, 700.0)
        metrics.register_request(request_hit)
        metrics.register_request(request_miss)
        metrics.record_task(make_task(request_hit, cost=1.0))
        metrics.record_overhead(5.0)
        metrics.record_plan_attempt(miss=True)
        summary = metrics.summary()
        assert summary.policy == "ESG"
        assert summary.setting == "strict-light"
        assert summary.num_requests == 2
        assert summary.num_completed == 2
        assert summary.slo_hit_rate == pytest.approx(0.5)
        assert summary.total_cost_cents == pytest.approx(1.0)
        assert summary.plan_miss_rate == 1.0
        assert summary.mean_overhead_ms == pytest.approx(5.0)
        assert "image_classification" in summary.per_app_slo_hit_rate

    def test_summary_as_dict_round_trip(self):
        metrics = MetricsCollector(policy_name="X", setting_name="s")
        metrics.register_request(make_completed_request(0, 100.0))
        data = metrics.summary().as_dict()
        assert data["policy"] == "X"
        assert data["num_requests"] == 1


STREAMING = MetricsConfig(mode="streaming")


def streaming_collector(**kwargs) -> MetricsCollector:
    return MetricsCollector(config=STREAMING, **kwargs)


class TestMetricsConfig:
    def test_default_mode_is_retained(self):
        assert MetricsConfig().mode == "retained"
        assert not MetricsCollector().is_streaming

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics mode"):
            MetricsConfig(mode="compressed")


class TestStreamingMode:
    def test_retains_no_objects(self):
        metrics = streaming_collector()
        request = make_completed_request(0, 400.0)
        metrics.register_request(request)
        metrics.record_task(make_task(request))
        assert metrics.requests == []
        assert metrics.tasks == []
        with pytest.raises(RuntimeError, match="does not retain"):
            metrics.completed_requests()

    def test_register_folds_already_completed_requests(self):
        metrics = streaming_collector()
        metrics.register_request(make_completed_request(0, 400.0))  # hit
        metrics.register_request(make_completed_request(1, 600.0))  # miss
        assert metrics.num_requests() == 2
        assert metrics.num_completed() == 2
        assert metrics.slo_hit_rate() == pytest.approx(0.5)

    def test_double_fold_is_rejected(self):
        """A request registered pre-completed must not also be notified via
        record_completion — that would corrupt rates (slo_hit_rate > 1)."""
        metrics = streaming_collector()
        request = make_completed_request(0, 400.0)
        metrics.register_request(request)  # folds immediately
        with pytest.raises(ValueError, match="recorded only once"):
            metrics.record_completion(request)
        assert metrics.slo_hit_rate() == 1.0

    def test_completion_of_unregistered_request_is_rejected(self):
        metrics = streaming_collector()
        with pytest.raises(ValueError, match="registered"):
            metrics.record_completion(make_completed_request(0, 400.0))

    def test_placeholder_refuses_recording(self):
        summary = MetricsCollector(policy_name="p", setting_name="s").summary()
        placeholder = MetricsCollector.placeholder_from_summary(summary)
        with pytest.raises(RuntimeError, match="summary_only placeholder"):
            placeholder.register_request(make_completed_request(0, 100.0))
        with pytest.raises(RuntimeError, match="summary_only placeholder"):
            placeholder.record_overhead(1.0)

    def test_record_completion_requires_a_completed_request(self):
        metrics = streaming_collector()
        unfinished = Request(
            request_id=0, workflow=image_classification(), arrival_ms=0.0, slo_ms=500.0
        )
        metrics.register_request(unfinished)
        with pytest.raises(ValueError, match="has not completed"):
            metrics.record_completion(unfinished)
        assert metrics.num_completed() == 0

    def test_incremental_completion_flow(self):
        metrics = streaming_collector()
        request = Request(
            request_id=7, workflow=image_classification(), arrival_ms=10.0, slo_ms=500.0
        )
        metrics.register_request(request)
        assert metrics.slo_hit_rate() == 0.0
        t = 10.0
        for sid in request.workflow.topological_order():
            t += 50.0
            request.record_stage_completion(sid, t, invoker_id=0)
        metrics.record_completion(request)
        assert metrics.num_completed() == 1
        assert metrics.latencies_ms() == [t - 10.0]
        assert metrics.latency_running_stats().count == 1

    def test_latencies_in_canonical_completion_order(self):
        metrics = streaming_collector()
        # Fold in reverse completion order: the buffers must re-order.
        metrics.register_request(make_completed_request(0, 300.0))
        metrics.register_request(make_completed_request(1, 200.0))
        assert metrics.latencies_ms() == [200.0, 300.0]

    def test_per_app_accumulators(self):
        metrics = streaming_collector()
        metrics.register_request(make_completed_request(0, 400.0))
        metrics.register_request(make_completed_request(1, 900.0, app=depth_recognition()))
        assert metrics.app_names() == ["depth_recognition", "image_classification"]
        assert metrics.slo_hit_rate("image_classification") == 1.0
        assert metrics.slo_hit_rate("depth_recognition") == 0.0
        assert metrics.latencies_ms("depth_recognition") == [900.0]

    def test_overhead_buffer_is_compact_but_summarizable(self):
        metrics = streaming_collector()
        metrics.record_overhead(5.0)
        metrics.record_overhead(15.0)
        assert list(metrics.overhead_ms_samples) == [5.0, 15.0]
        assert metrics.overhead_summary().mean == pytest.approx(10.0)

    def test_unknown_app_queries_are_empty(self):
        metrics = streaming_collector()
        assert metrics.slo_hit_rate("nope") == 0.0
        assert metrics.latencies_ms("nope") == []
        assert metrics.total_cost_cents("nope") == 0.0
        assert metrics.num_requests("nope") == 0


class TestHorizonClamp:
    """Regression: truncated runs must not overcharge resource-time.

    A task dispatched before the horizon whose ``finish_ms`` lands past
    ``max_time_ms`` used to contribute its full cost/vGPU-ms/vCPU-ms.
    """

    def straddling_task(self) -> Task:
        request = make_completed_request(0, 400.0)
        # dispatch 10, exec 100 -> holds [10, 110).
        return make_task(request, cost=2.0, vgpus=2)

    @pytest.mark.parametrize("config", [MetricsConfig(), STREAMING])
    def test_straddling_task_charged_pro_rata(self, config):
        metrics = MetricsCollector(config=config, horizon_ms=60.0)
        metrics.record_task(self.straddling_task())
        # 50 of the 100 held ms fall inside the horizon.
        assert metrics.total_vgpu_ms() == pytest.approx(2 * 50.0)
        assert metrics.total_vcpu_ms() == pytest.approx(1 * 50.0)
        assert metrics.total_cost_cents() == pytest.approx(1.0)

    @pytest.mark.parametrize("config", [MetricsConfig(), STREAMING])
    def test_task_inside_horizon_fully_charged(self, config):
        metrics = MetricsCollector(config=config, horizon_ms=500.0)
        metrics.record_task(self.straddling_task())
        assert metrics.total_vgpu_ms() == pytest.approx(2 * 100.0)
        assert metrics.total_cost_cents() == pytest.approx(2.0)

    @pytest.mark.parametrize("config", [MetricsConfig(), STREAMING])
    def test_task_entirely_past_horizon_charged_nothing(self, config):
        metrics = MetricsCollector(config=config, horizon_ms=5.0)
        metrics.record_task(self.straddling_task())
        assert metrics.total_vgpu_ms() == 0.0
        assert metrics.total_cost_cents() == 0.0

    def test_default_horizon_is_unbounded(self):
        metrics = MetricsCollector()
        metrics.record_task(self.straddling_task())
        assert metrics.total_cost_cents() == pytest.approx(2.0)

    def test_charged_helpers_agree_with_unclamped_task(self):
        task = self.straddling_task()
        assert charged_duration_ms(task, float("inf")) == task.duration_ms
        assert charged_cost_cents(task, float("inf")) == task.cost_cents


class TestPlaceholder:
    def test_placeholder_carries_summary_flags_and_counters(self):
        metrics = MetricsCollector(policy_name="ESG", setting_name="s", truncated=True)
        metrics.register_request(make_completed_request(0, 100.0))
        metrics.record_task(make_task(make_completed_request(1, 100.0), cold=5.0))
        metrics.record_plan_attempt(miss=True)
        metrics.record_transfer(local=False)
        summary = metrics.summary()

        placeholder = MetricsCollector.placeholder_from_summary(summary)
        assert placeholder.placeholder
        assert placeholder.truncated is summary.truncated is True
        assert placeholder.policy_name == "ESG"
        assert placeholder.plan_attempts == summary.plan_attempts == 1
        assert placeholder.plan_misses == 1
        assert placeholder.cold_starts == 1
        assert placeholder.remote_transfers == 1

    def test_regular_collectors_are_not_placeholders(self):
        assert not MetricsCollector().placeholder

    def test_placeholder_refuses_derived_metrics(self):
        summary = MetricsCollector(policy_name="p", setting_name="s").summary()
        placeholder = MetricsCollector.placeholder_from_summary(summary)
        for query in (
            placeholder.summary,
            placeholder.num_requests,
            placeholder.slo_hit_rate,
            placeholder.latencies_ms,
            placeholder.total_cost_cents,
            placeholder.app_names,
            placeholder.total_vgpu_ms,
            placeholder.waiting_ms_samples,
        ):
            with pytest.raises(RuntimeError, match="summary_only placeholder"):
                query()
        # Direct reads of the observation containers fail just as loudly.
        for container in (
            placeholder.requests,
            placeholder.tasks,
            placeholder.overhead_ms_samples,
        ):
            with pytest.raises(RuntimeError, match="summary_only placeholder"):
                len(container)
            with pytest.raises(RuntimeError, match="summary_only placeholder"):
                list(container)
        # Carried counters stay directly readable.
        assert placeholder.plan_miss_rate() == summary.plan_miss_rate


class TestRecordOrderFuzz:
    """Randomized record-order fuzz on the per-app accumulators.

    Feeds the same observations to a retained and a streaming collector with
    completions folded in a random order (and deliberate completed_ms ties),
    then requires byte-identical summaries.
    """

    APPS = (image_classification, depth_recognition)

    def build_observations(self, rng: random.Random, n: int):
        requests, tasks = [], []
        for i in range(n):
            workflow = self.APPS[rng.randrange(len(self.APPS))]()
            request = Request(
                request_id=i,
                workflow=workflow,
                arrival_ms=rng.uniform(0.0, 50.0),
                slo_ms=rng.choice([200.0, 500.0]),
            )
            if rng.random() < 0.85:  # some requests never finish
                t = request.arrival_ms
                for sid in workflow.topological_order():
                    # Coarse grid => frequent completed_ms ties across requests.
                    t += rng.choice([50.0, 100.0, 150.0])
                    request.record_stage_completion(sid, t, invoker_id=0)
            requests.append(request)
            if rng.random() < 0.7:
                task = make_task(request, cost=rng.uniform(0.5, 3.0), vgpus=rng.choice([1, 2]))
                task.dispatch_ms = rng.uniform(0.0, 80.0)
                tasks.append(task)
        return requests, tasks

    @pytest.mark.parametrize("seed", range(5))
    def test_fuzzed_interleavings_stay_byte_identical(self, seed):
        rng = random.Random(seed)
        requests, tasks = self.build_observations(rng, n=60)
        horizon = rng.choice([float("inf"), 120.0])

        retained = MetricsCollector(policy_name="p", setting_name="s", horizon_ms=horizon)
        streaming = streaming_collector(
            policy_name="p", setting_name="s", horizon_ms=horizon
        )

        # Identical registration and task-record order for both collectors...
        for request in requests:
            retained.register_request(request)
        for task in tasks:
            retained.record_task(task)
        completed = [r for r in requests if r.is_complete]
        rng.shuffle(completed)  # ...but a scrambled completion-event order.
        incomplete = [r for r in requests if not r.is_complete]
        for request in incomplete:
            streaming.register_request(request)
        for request in completed:
            streaming.register_request(request)
        for task in tasks:
            streaming.record_task(task)
        for sample in (0.5, 1.5, 2.5):
            retained.record_overhead(sample)
            streaming.record_overhead(sample)

        assert retained.summary() == streaming.summary()
