"""Parity tests: indexed cluster queries vs. the scan-based reference path.

The indexes (free-capacity buckets, per-function warm index, counters) must
answer every cluster-wide query byte-identically to the original linear
scans — under arbitrary interleavings of reservations, releases and
container lifecycle transitions.  These tests drive an indexed and a
scan-mode cluster through identical operation sequences and compare every
query after every step.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.container import Container, ContainerState
from repro.profiles.configuration import Configuration


def make_pair(num_invokers: int = 8, keep_alive_ms: float = 100.0):
    indexed = ClusterState(
        config=ClusterConfig(
            num_invokers=num_invokers, keep_alive_ms=keep_alive_ms, index_mode="indexed"
        )
    )
    scan = ClusterState(
        config=ClusterConfig(
            num_invokers=num_invokers, keep_alive_ms=keep_alive_ms, index_mode="scan"
        )
    )
    return indexed, scan


QUERY_CONFIGS = [
    Configuration(1, 1, 1),
    Configuration(1, 4, 2),
    Configuration(1, 8, 4),
    Configuration(1, 16, 7),
]


def assert_query_parity(indexed: ClusterState, scan: ClusterState, now_ms: float) -> None:
    for cfg in QUERY_CONFIGS:
        assert [i.invoker_id for i in indexed.invokers_that_fit(cfg)] == [
            i.invoker_id for i in scan.invokers_that_fit(cfg)
        ]
        a = indexed.most_available_invoker(cfg)
        b = scan.most_available_invoker(cfg)
        assert (a.invoker_id if a else None) == (b.invoker_id if b else None)
        frag_key = lambda cpu, gpu: (gpu - cfg.vgpus, cpu - cfg.vcpus)  # noqa: E731
        a = indexed.best_fitting_invoker(cfg, key=frag_key)
        b = scan.best_fitting_invoker(cfg, key=frag_key)
        assert (a.invoker_id if a else None) == (b.invoker_id if b else None)
    for fn in ("classification", "deblur"):
        assert [i.invoker_id for i in indexed.warm_invokers_for(fn, now_ms)] == [
            i.invoker_id for i in scan.warm_invokers_for(fn, now_ms)
        ]
        assert indexed.has_warm_invoker(fn, now_ms) == scan.has_warm_invoker(fn, now_ms)
        assert indexed.resident_container_count(fn) == scan.resident_container_count(fn)
    assert indexed.total_available_vcpus() == scan.total_available_vcpus()
    assert indexed.total_available_vgpus() == scan.total_available_vgpus()
    assert indexed.cpu_utilization() == scan.cpu_utilization()
    assert indexed.gpu_utilization() == scan.gpu_utilization()


class TestIndexParityUnderRandomOperations:
    def test_randomised_lifecycle_and_capacity_parity(self):
        rng = random.Random(1234)
        indexed, scan = make_pair()
        reserved: list[Configuration] = []
        containers: list[tuple[Container, Container]] = []
        now = 0.0

        for step in range(400):
            now += rng.uniform(0.0, 30.0)
            op = rng.random()
            inv = rng.randrange(len(indexed))
            if op < 0.30:
                cfg = Configuration(1, rng.randint(1, 4), rng.randint(1, 3))
                if indexed.invoker(inv).can_fit(cfg):
                    indexed.invoker(inv).reserve(cfg)
                    scan.invoker(inv).reserve(cfg)
                    reserved.append((inv, cfg))
            elif op < 0.50 and reserved:
                inv, cfg = reserved.pop(rng.randrange(len(reserved)))
                indexed.invoker(inv).release(cfg)
                scan.invoker(inv).release(cfg)
            elif op < 0.65:
                fn = rng.choice(("classification", "deblur"))
                a = indexed.invoker(inv).create_warm_container(fn, now)
                b = scan.invoker(inv).create_warm_container(fn, now)
                containers.append((a, b))
            elif op < 0.80 and containers:
                a, b = rng.choice(containers)
                if a.state == ContainerState.WARM and a.is_warm_idle(now):
                    a.assign_task()
                    b.assign_task()
            elif op < 0.90 and containers:
                a, b = rng.choice(containers)
                if a.active_tasks > 0:
                    a.release_task(now, 100.0)
                    b.release_task(now, 100.0)
            else:
                assert indexed.expire_containers(now) == scan.expire_containers(now)
            assert_query_parity(indexed, scan, now)

    def test_direct_gpu_mutation_keeps_capacity_index_fresh(self):
        indexed, scan = make_pair(num_invokers=4)
        # Bypass Invoker.reserve entirely: the GPU's change hook must still
        # keep the bucket index consistent.
        indexed.invoker(2).gpu.allocate(5)
        scan.invoker(2).gpu.allocate(5)
        assert_query_parity(indexed, scan, 0.0)
        indexed.invoker(2).gpu.release(3)
        scan.invoker(2).gpu.release(3)
        assert_query_parity(indexed, scan, 0.0)


class TestIndexBackedReturnTypes:
    """Satellite: cluster queries serve tuples from indexes, not fresh lists."""

    def test_fit_and_warm_queries_return_tuples(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=3))
        cluster.invoker(1).create_warm_container("deblur", 0.0)
        assert isinstance(cluster.invokers_that_fit(Configuration(1, 1, 1)), tuple)
        assert isinstance(cluster.warm_invokers_for("deblur", 0.0), tuple)
        # Scan mode keeps the same (immutable) contract.
        scan = ClusterState(config=ClusterConfig(num_invokers=3, index_mode="scan"))
        assert isinstance(scan.invokers_that_fit(Configuration(1, 1, 1)), tuple)
        assert isinstance(scan.warm_invokers_for("deblur", 0.0), tuple)

    def test_empty_warm_index_returns_empty_tuple(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=2))
        assert cluster.warm_invokers_for("nothing-warm", 0.0) == ()
        assert not cluster.has_warm_invoker("nothing-warm", 0.0)


class TestIndexedCounters:
    def test_live_and_resident_counts_follow_lifecycle(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=2, keep_alive_ms=50.0))
        inv = cluster.invoker(0)
        assert cluster.resident_container_count("classification") == 0
        container = inv.create_warm_container("classification", 0.0)
        assert cluster.resident_container_count("classification") == 1
        assert inv.resident_candidate_count("classification") == 1
        container.assign_task()
        assert cluster.resident_container_count("classification") == 1  # busy still counts
        container.release_task(10.0, 50.0)
        container.mark_stopped()
        assert cluster.resident_container_count("classification") == 0
        assert inv.resident_candidate_count("classification") == 0
        assert inv.container_count("classification") == 0

    def test_starting_container_counts_as_live_not_warm(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=2))
        inv = cluster.invoker(1)
        starting = Container(
            function_name="deblur", invoker_id=1, state=ContainerState.STARTING, warm_at_ms=500.0
        )
        inv.add_container(starting)
        assert cluster.resident_container_count("deblur") == 1
        assert not cluster.has_warm_invoker("deblur", 0.0)
        starting.mark_warm(500.0, 1000.0)
        assert cluster.has_warm_invoker("deblur", 600.0)

    def test_capacity_bucket_heaps_stay_bounded_under_churn(self):
        # Long runs reserve/release constantly; stale heap entries must be
        # rebuilt away, not accumulate for the lifetime of the run.
        cluster = ClusterState(config=ClusterConfig(num_invokers=4))
        cfg = Configuration(1, 2, 1)
        for _ in range(500):
            cluster.invoker(1).reserve(cfg)
            cluster.invoker(1).release(cfg)
        total_heap_entries = sum(len(h) for h in cluster._capacity._heaps.values())
        assert total_heap_entries <= 60  # O(invokers + stale slack), not O(churn)
        best = cluster.most_available_invoker(cfg)
        assert best is not None and best.invoker_id == 0

    def test_capacity_counters_track_reservations(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=3))
        cluster.invoker(0).reserve(Configuration(1, 8, 3))
        cluster.invoker(1).reserve(Configuration(1, 2, 1))
        assert cluster.total_available_vcpus() == 3 * 16 - 10
        assert cluster.total_available_vgpus() == 3 * 7 - 4
        cluster.invoker(0).release(Configuration(1, 8, 3))
        assert cluster.total_available_vcpus() == 3 * 16 - 2
        assert cluster.total_available_vgpus() == 3 * 7 - 1


class TestInvalidIndexMode:
    def test_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(index_mode="magic")
