"""Tests for the cluster state and home-invoker hashing."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.profiles.configuration import Configuration


class TestClusterConfig:
    def test_defaults_match_table2(self):
        config = ClusterConfig()
        assert config.num_invokers == 16
        assert config.vcpus_per_invoker == 16
        assert config.vgpus_per_invoker == 7
        assert config.total_vcpus == 256
        assert config.total_vgpus == 112

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_invokers=0)
        with pytest.raises(ValueError):
            ClusterConfig(vgpus_per_invoker=-1)


class TestClusterState:
    def test_builds_requested_invokers(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=4))
        assert len(cluster) == 4
        assert [inv.invoker_id for inv in cluster] == [0, 1, 2, 3]

    def test_invoker_lookup_bounds(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=2))
        assert cluster.invoker(1).invoker_id == 1
        with pytest.raises(KeyError):
            cluster.invoker(5)
        with pytest.raises(KeyError):
            cluster.invoker(-1)

    def test_home_invoker_is_deterministic_and_in_range(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=8))
        first = cluster.home_invoker_id("app", "deblur")
        assert first == cluster.home_invoker_id("app", "deblur")
        assert 0 <= first < 8

    def test_home_invoker_differs_per_application(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=16))
        homes = {
            cluster.home_invoker_id(app, "deblur")
            for app in ("a", "b", "c", "d", "e", "f", "g", "h")
        }
        assert len(homes) > 1  # hashing spreads applications over nodes

    def test_invokers_that_fit(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=3))
        cfg = Configuration(1, 8, 4)
        cluster.invoker(0).reserve(Configuration(1, 16, 1))
        fitting = cluster.invokers_that_fit(cfg)
        assert [inv.invoker_id for inv in fitting] == [1, 2]

    def test_most_available_invoker_prefers_free_nodes(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=3))
        cluster.invoker(0).reserve(Configuration(1, 8, 5))
        cluster.invoker(1).reserve(Configuration(1, 2, 1))
        best = cluster.most_available_invoker(Configuration(1, 1, 1))
        assert best.invoker_id == 2

    def test_most_available_invoker_none_when_full(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=1))
        cluster.invoker(0).reserve(Configuration(1, 16, 7))
        assert cluster.most_available_invoker(Configuration(1, 1, 1)) is None

    def test_warm_invokers_for(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=3))
        cluster.invoker(1).create_warm_container("deblur", 0.0)
        warm = cluster.warm_invokers_for("deblur", 0.0)
        assert [inv.invoker_id for inv in warm] == [1]

    def test_utilization_aggregates(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=2))
        assert cluster.cpu_utilization() == 0.0
        cluster.invoker(0).reserve(Configuration(1, 16, 7))
        assert cluster.cpu_utilization() == pytest.approx(0.5)
        assert cluster.gpu_utilization() == pytest.approx(0.5)
        assert cluster.total_available_vgpus() == 7

    def test_expire_containers_counts(self):
        cluster = ClusterState(config=ClusterConfig(num_invokers=2, keep_alive_ms=100.0))
        cluster.invoker(0).create_warm_container("deblur", 0.0)
        cluster.invoker(1).create_warm_container("deblur", 0.0)
        assert cluster.expire_containers(50.0) == 0
        assert cluster.expire_containers(150.0) == 2
