"""Shared fixtures for the test suite.

Fixtures that are expensive to build (profile stores over larger
configuration spaces) are session-scoped; tests must treat them as
read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.profiles.configuration import ConfigurationSpace
from repro.profiles.perf_model import AnalyticalPerformanceModel
from repro.profiles.pricing import PricingModel
from repro.profiles.profiler import ProfileStore
from repro.workloads.applications import build_paper_applications
from repro.workloads.dag import Workflow


@pytest.fixture(scope="session")
def small_space() -> ConfigurationSpace:
    """A compact configuration space (18 configs) for fast unit tests."""
    return ConfigurationSpace.small()


@pytest.fixture(scope="session")
def small_store(small_space: ConfigurationSpace) -> ProfileStore:
    """Profiles of all six functions over the small space."""
    return ProfileStore.build(space=small_space)


@pytest.fixture(scope="session")
def default_store() -> ProfileStore:
    """Profiles over the default configuration space (80 configs)."""
    return ProfileStore.build()


@pytest.fixture(scope="session")
def perf_model() -> AnalyticalPerformanceModel:
    """The deterministic performance model with default parameters."""
    return AnalyticalPerformanceModel()


@pytest.fixture(scope="session")
def pricing() -> PricingModel:
    """The paper's AWS-derived pricing model."""
    return PricingModel()


@pytest.fixture(scope="session")
def paper_apps() -> list[Workflow]:
    """The four applications of the paper's evaluation."""
    return build_paper_applications()


@pytest.fixture()
def rng() -> np.random.Generator:
    """A seeded random generator for per-test randomness."""
    return np.random.default_rng(1234)


@pytest.fixture()
def diamond_workflow() -> Workflow:
    """A DAG with a split and a join (for dominator/grouping tests)."""
    wf = Workflow("diamond")
    wf.add_stage("a", "super_resolution")
    wf.add_stage("b", "deblur")
    wf.add_stage("c", "segmentation")
    wf.add_stage("d", "classification")
    wf.add_edge("a", "b")
    wf.add_edge("a", "c")
    wf.add_edge("b", "d")
    wf.add_edge("c", "d")
    wf.validate()
    return wf
