#!/usr/bin/env python3
"""Tour the scenario registry: one scheduler against every kind of demand.

Lists the registered scenarios, then runs ESG and INFless on a sampler of
them — paper-faithful Azure arrivals, Poisson, MMPP-style bursts, diurnal
drift, trace replay and a horizon-bounded overload spike — and prints how
each scheduler's SLO hit rate and cost hold up as the demand model changes.

Usage::

    python examples/scenario_tour.py [num_requests] [n_jobs]
"""

from __future__ import annotations

import sys

from repro.experiments import ExperimentConfig, run_scenario_matrix
from repro.experiments.scenario_sweep import render_scenario_list
from repro.workloads import scenario_names

TOUR = (
    "paper-moderate-normal",
    "poisson-normal",
    "bursty-onoff-heavy",
    "diurnal-normal",
    "trace-replay-azure",
    "mixed-dags-normal",
    "overload-spike",
)


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    print(render_scenario_list())

    tour = [name for name in TOUR if name in scenario_names()]
    policies = ("ESG", "INFless")
    print(
        f"\nRunning {len(policies)} schedulers x {len(tour)} scenarios "
        f"({num_requests} requests each, {n_jobs} worker processes)...\n"
    )
    results = run_scenario_matrix(
        tour, policies, config=ExperimentConfig(num_requests=num_requests, seed=42), n_jobs=n_jobs
    )

    print(f"{'scenario':<24} {'policy':<10} {'SLO hit':>8} {'cost (c)':>9} {'truncated':>10}")
    for scenario in tour:
        for policy in policies:
            summary = results[(scenario, policy)].summary
            print(
                f"{scenario:<24} {policy:<10} {summary.slo_hit_rate:>7.1%} "
                f"{summary.total_cost_cents:>9.2f} {str(summary.truncated):>10}"
            )

    print(
        "\nThe paper's ordering (ESG meets the SLO cheaper than INFless) holds on"
        "\nthe smooth scenarios; the bursty and overload ones show where every"
        "\nscheduler starts missing deadlines — exactly the territory the paper"
        "\nnever mapped."
    )


if __name__ == "__main__":
    main()
