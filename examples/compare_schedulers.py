#!/usr/bin/env python3
"""Compare all five schedulers on the paper's three workload settings.

This is a scaled-down version of the paper's Figure 6 experiment: every
scheduler sees exactly the same request stream per setting, and the script
prints the SLO hit rate, the total cost (normalised to ESG) and the
pre-planned configuration miss rate of the static planners.  The sweep
(15 independent runs) executes through the parallel experiment engine —
pass a worker count as the second argument to fan it out.

Usage::

    python examples/compare_schedulers.py [num_requests] [n_jobs]
"""

from __future__ import annotations

import sys

from repro.experiments.end_to_end import figure6_rows, run_end_to_end
from repro.experiments.runner import DEFAULT_POLICIES, ExperimentConfig


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    config = ExperimentConfig(num_requests=num_requests, seed=42)

    print(
        f"Running {len(DEFAULT_POLICIES)} schedulers x 3 settings "
        f"({num_requests} requests each, {n_jobs} worker processes)...\n"
    )
    results = run_end_to_end(DEFAULT_POLICIES, config=config, n_jobs=n_jobs)

    print(f"{'setting':<18} {'policy':<12} {'SLO hit':>8} {'cost/ESG':>9} {'plan miss':>10}")
    for row in figure6_rows(results):
        miss = results[(row.setting, row.policy)].summary.plan_miss_rate
        print(
            f"{row.setting:<18} {row.policy:<12} {row.slo_hit_rate:>7.1%} "
            f"{row.cost_normalized_to_esg:>9.2f} {miss:>9.1%}"
        )

    print(
        "\nExpected shape (matching the paper): ESG reaches the highest hit rate"
        "\nat the lowest or near-lowest cost; INFless is the most expensive; the"
        "\nstatic planners (Orion, Aquatope) frequently cannot apply their"
        "\npre-planned batch sizes."
    )


if __name__ == "__main__":
    main()
