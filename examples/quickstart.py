#!/usr/bin/env python3
"""Quickstart: schedule one small DNN-workflow workload with ESG.

Runs a strict-light workload (a random mix of the paper's four
applications) on the emulated 16-node GPU cluster, once with ESG and once
with the INFless baseline, and prints the headline metrics.  The two runs
are described as picklable ``RunSpec``s and executed by the
``ExperimentEngine`` — the same path every sweep in this repository uses.
``n_jobs=2`` fans them out across worker processes; ``n_jobs=1`` runs them
in-process, and determinism guarantees both produce identical numbers.

Usage::

    python examples/quickstart.py [num_requests]
"""

from __future__ import annotations

import sys

from repro.experiments import ExperimentConfig, ExperimentEngine, RunSpec


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    config = ExperimentConfig(num_requests=num_requests, seed=7)

    print(
        f"Scheduling {num_requests} requests (strict SLO, light load) "
        f"on 16 emulated GPU nodes...\n"
    )
    specs = [
        RunSpec(policy=policy, setting="strict-light", config=config)
        for policy in ("ESG", "INFless")
    ]
    results = ExperimentEngine(n_jobs=2).run(specs)

    print(f"{'policy':<12} {'SLO hit rate':>12} {'cost (cents)':>14} {'mean latency':>14}")
    for spec, result in zip(specs, results):
        summary = result.summary
        print(
            f"{spec.policy:<12} {summary.slo_hit_rate:>11.1%} "
            f"{summary.total_cost_cents:>14.2f} {summary.mean_latency_ms:>11.0f} ms"
        )

    print(
        "\nESG re-plans every stage with its dual-blade-pruned search, so it meets"
        "\nthe SLO while spending noticeably less than the throughput-maximising"
        "\nINFless baseline."
    )


if __name__ == "__main__":
    main()
