#!/usr/bin/env python3
"""Quickstart: schedule one small DNN-workflow workload with ESG.

Runs a strict-light workload of 40 requests (a random mix of the paper's
four applications) on the emulated 16-node GPU cluster, once with ESG and
once with the INFless baseline, and prints the headline metrics.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentConfig, run_experiment


def main() -> None:
    config = ExperimentConfig(num_requests=40, seed=7)

    print("Scheduling 40 requests (strict SLO, light load) on 16 emulated GPU nodes...\n")
    print(f"{'policy':<12} {'SLO hit rate':>12} {'cost (cents)':>14} {'mean latency':>14}")
    for policy in ("ESG", "INFless"):
        result = run_experiment(policy, "strict-light", config=config)
        summary = result.summary
        print(
            f"{policy:<12} {summary.slo_hit_rate:>11.1%} "
            f"{summary.total_cost_cents:>14.2f} {summary.mean_latency_ms:>11.0f} ms"
        )

    print(
        "\nESG re-plans every stage with its dual-blade-pruned search, so it meets"
        "\nthe SLO while spending noticeably less than the throughput-maximising"
        "\nINFless baseline."
    )


if __name__ == "__main__":
    main()
