#!/usr/bin/env python3
"""Define a custom DNN application + scenario and schedule it with ESG.

Shows the four extension points a downstream user needs:

1. register a new DNN function (its profile is derived from the analytic
   performance model, exactly like the built-in Table 3 functions);
2. define a workflow DAG that mixes the new function with built-in ones —
   including a split/join, which exercises the dominator-based SLO
   distribution on a non-linear DAG — and register it by name;
3. bundle the application into a named ``Scenario`` with a bursty arrival
   process;
4. run it end to end through ``run_experiment(scenario=...)`` — the same
   entry point the CLI and the parallel sweeps use.

Usage::

    python examples/custom_application.py [num_requests]
"""

from __future__ import annotations

import sys

from repro.core.dominator import distribute_slo
from repro.experiments import ExperimentConfig, run_experiment
from repro.profiles.profiler import ProfileStore
from repro.profiles.specs import FUNCTION_SPECS, FunctionSpec, register_function_spec
from repro.workloads import (
    OnOffBurstProcess,
    Scenario,
    Workflow,
    register_application,
    register_scenario,
)
from repro.workloads.applications import APPLICATION_BUILDERS
from repro.workloads.scenarios import SCENARIOS


def build_custom_workflow() -> Workflow:
    """A DAG with a split (OCR and captioning in parallel) and a join."""
    wf = Workflow("document_understanding")
    wf.add_stage("preprocess", "super_resolution")
    wf.add_stage("ocr", "text_recognition")          # the new custom function
    wf.add_stage("caption", "classification")
    wf.add_stage("fuse", "segmentation")
    wf.add_edge("preprocess", "ocr")
    wf.add_edge("preprocess", "caption")
    wf.add_edge("ocr", "fuse")
    wf.add_edge("caption", "fuse")
    wf.validate()
    return wf


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 30

    # 1. Register the custom DNN function (idempotent for repeated runs).
    if "text_recognition" not in FUNCTION_SPECS:
        register_function_spec(
            FunctionSpec(
                name="text_recognition",
                model_name="TrOCR-small",
                base_exec_ms=210.0,
                cold_start_ms=9000.0,
                input_mb=1.8,
                cpu_fraction=0.25,
                output_mb=0.02,
            )
        )

    # 2. Register the workflow builder so scenarios can name it.
    if "document_understanding" not in APPLICATION_BUILDERS:
        register_application("document_understanding", build_custom_workflow)

    # Show how ESG would split the custom DAG's SLO across stage groups.
    store = ProfileStore.build()
    workflow = build_custom_workflow()
    distribution = distribute_slo(workflow, store, group_size=3)
    print(f"Workflow {workflow.name!r} ({workflow.num_stages} stages, split/join DAG)")
    for group in distribution.groups:
        print(f"  group {group.index}: stages {group.stage_ids}  SLO share {group.slo_fraction:.2f}")

    # 3. Bundle it into a scenario: bursty arrivals, moderate SLO tightness.
    if "document-bursts" not in SCENARIOS:
        register_scenario(
            Scenario(
                name="document-bursts",
                description="document understanding under on/off burst arrivals",
                setting="moderate-normal",
                applications=("document_understanding",),
                arrival=OnOffBurstProcess(
                    burst_rate_per_s=60.0,
                    base_rate_per_s=15.0,
                    mean_burst_ms=400.0,
                    mean_gap_ms=600.0,
                ),
            )
        )

    # 4. Run ESG on the scenario through the standard experiment entry point.
    result = run_experiment(
        "ESG",
        scenario="document-bursts",
        config=ExperimentConfig(num_requests=num_requests, seed=11),
        profile_store=store,
    )
    summary = result.summary
    print(
        f"\nScheduled {summary.num_requests} requests of scenario 'document-bursts': "
        f"SLO hit rate {summary.slo_hit_rate:.1%}, "
        f"cost {summary.total_cost_cents:.2f} cents, "
        f"mean latency {summary.mean_latency_ms:.0f} ms "
        f"(SLO {result.requests[0].slo_ms:.0f} ms)"
    )


if __name__ == "__main__":
    main()
