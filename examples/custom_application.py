#!/usr/bin/env python3
"""Define a custom DNN application and schedule it with ESG.

Shows the three extension points a downstream user needs:

1. register a new DNN function (its profile is derived from the analytic
   performance model, exactly like the built-in Table 3 functions);
2. define a workflow DAG that mixes the new function with built-in ones —
   including a split/join, which exercises the dominator-based SLO
   distribution on a non-linear DAG;
3. generate a workload for that application and run it through the
   simulator with the ESG policy.

Usage::

    python examples/custom_application.py
"""

from __future__ import annotations

from repro.cluster.simulator import Simulation, SimulationConfig
from repro.cluster.controller import ControllerConfig
from repro.core.dominator import distribute_slo
from repro.core.esg import ESGPolicy
from repro.profiles.profiler import ProfileStore
from repro.profiles.specs import FUNCTION_SPECS, FunctionSpec, register_function_spec
from repro.utils.rng import derive_rng
from repro.workloads.dag import Workflow
from repro.workloads.generator import MODERATE_NORMAL, WorkloadGenerator


def build_custom_workflow() -> Workflow:
    """A DAG with a split (OCR and captioning in parallel) and a join."""
    wf = Workflow("document_understanding")
    wf.add_stage("preprocess", "super_resolution")
    wf.add_stage("ocr", "text_recognition")          # the new custom function
    wf.add_stage("caption", "classification")
    wf.add_stage("fuse", "segmentation")
    wf.add_edge("preprocess", "ocr")
    wf.add_edge("preprocess", "caption")
    wf.add_edge("ocr", "fuse")
    wf.add_edge("caption", "fuse")
    wf.validate()
    return wf


def main() -> None:
    # 1. Register the custom DNN function (idempotent for repeated runs).
    if "text_recognition" not in FUNCTION_SPECS:
        register_function_spec(
            FunctionSpec(
                name="text_recognition",
                model_name="TrOCR-small",
                base_exec_ms=210.0,
                cold_start_ms=9000.0,
                input_mb=1.8,
                cpu_fraction=0.25,
                output_mb=0.02,
            )
        )

    # 2. Build profiles and the workflow; show how ESG would split its SLO.
    store = ProfileStore.build()
    workflow = build_custom_workflow()
    distribution = distribute_slo(workflow, store, group_size=3)
    print(f"Workflow {workflow.name!r} ({workflow.num_stages} stages, split/join DAG)")
    for group in distribution.groups:
        print(f"  group {group.index}: stages {group.stage_ids}  SLO share {group.slo_fraction:.2f}")

    # 3. Generate a workload for the custom application and run ESG on it.
    generator = WorkloadGenerator(
        applications=[workflow],
        setting=MODERATE_NORMAL,
        profile_store=store,
        rng=derive_rng(11, "custom-app"),
    )
    requests = generator.generate(30)
    simulation = Simulation(
        policy=ESGPolicy(),
        requests=requests,
        profile_store=store,
        config=SimulationConfig(seed=11, controller=ControllerConfig(initial_warm="all")),
        setting_name=MODERATE_NORMAL.name,
    )
    summary = simulation.run()
    print(
        f"\nScheduled {summary.num_requests} requests: "
        f"SLO hit rate {summary.slo_hit_rate:.1%}, "
        f"cost {summary.total_cost_cents:.2f} cents, "
        f"mean latency {summary.mean_latency_ms:.0f} ms "
        f"(SLO {requests[0].slo_ms:.0f} ms)"
    )


if __name__ == "__main__":
    main()
