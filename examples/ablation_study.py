#!/usr/bin/env python3
"""Reproduce the Figure 12 ablation on a small heavy workload.

Runs ESG, ESG without GPU sharing and ESG without batching on the same
relaxed-heavy workload and prints the SLO hit rate, cost and GPU time of
each variant.  The variants are independent runs, so the engine fans them
out across worker processes (second argument).

Usage::

    python examples/ablation_study.py [num_requests] [n_jobs]
"""

from __future__ import annotations

import sys

from repro.experiments.ablation import run_figure12
from repro.experiments.runner import ExperimentConfig


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    config = ExperimentConfig(num_requests=num_requests, seed=21)

    print(f"Running the GPU-sharing / batching ablation ({num_requests} requests, heavy load)...\n")
    rows = run_figure12(setting="relaxed-heavy", config=config, n_jobs=n_jobs)

    print(f"{'variant':<22} {'SLO hit':>8} {'cost/ESG':>9} {'vGPU-seconds':>13} {'mean wait':>10}")
    for row in rows:
        print(
            f"{row.variant:<22} {row.slo_hit_rate:>7.1%} {row.cost_normalized_to_esg:>9.2f} "
            f"{row.total_vgpu_ms / 1000.0:>13.1f} {row.mean_waiting_ms:>8.1f}ms"
        )

    print(
        "\nWithout GPU sharing every task monopolises a whole GPU, inflating the"
        "\nconsumed GPU time and cost; without batching the per-job cost rises"
        "\nbecause the fixed per-invocation work is no longer amortised."
    )


if __name__ == "__main__":
    main()
