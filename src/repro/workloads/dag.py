"""Workflow DAG representation.

An ML-based serverless application is a DAG of *stages*; each stage invokes
one DNN serverless function.  The SLO applies to the end-to-end latency of
the whole DAG, which is why the paper's scheduling must reason about
inter-function relations.

The implementation is a small, dependency-free directed graph with exactly
the operations the schedulers need: predecessors/successors, topological
order, source/sink detection and validation (acyclicity, connectivity of
stage references).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Stage", "Workflow", "WorkflowTopology", "WorkflowValidationError"]


class WorkflowValidationError(ValueError):
    """Raised when a workflow definition is structurally invalid."""


@dataclass(frozen=True)
class Stage:
    """One node of the workflow DAG.

    Parameters
    ----------
    stage_id:
        Unique identifier within the workflow (e.g. ``"f1"``).
    function_name:
        The serverless function the stage invokes.  Different stages of the
        same (or different) workflow may invoke the same function; they still
        get distinct AFW queues, as in the paper.
    """

    stage_id: str
    function_name: str

    def __post_init__(self) -> None:
        if not self.stage_id:
            raise WorkflowValidationError("stage_id must be non-empty")
        if not self.function_name:
            raise WorkflowValidationError("function_name must be non-empty")


class WorkflowTopology:
    """Immutable adjacency snapshot of one workflow, shared by the fast paths.

    The list-returning accessors on :class:`Workflow` rebuild their result on
    every call (a defensive copy); the simulation's ``loop_mode="fast"`` hot
    paths instead read this snapshot, built lazily once per workflow and
    dropped on any mutation.  The per-stage tuples hold the same ids in the
    same order as the accessors, so consumers see identical data.
    """

    __slots__ = ("sources", "sinks", "succ", "pred", "stages")

    def __init__(self, workflow: "Workflow") -> None:
        self.sources: tuple[str, ...] = tuple(
            sid for sid in workflow._stages if not workflow._pred[sid]
        )
        self.sinks: tuple[str, ...] = tuple(
            sid for sid in workflow._stages if not workflow._succ[sid]
        )
        self.succ: dict[str, tuple[str, ...]] = {
            sid: tuple(dsts) for sid, dsts in workflow._succ.items()
        }
        self.pred: dict[str, tuple[str, ...]] = {
            sid: tuple(srcs) for sid, srcs in workflow._pred.items()
        }
        self.stages: tuple[Stage, ...] = tuple(workflow._stages.values())


@dataclass
class Workflow:
    """A named DAG of stages with data-dependence edges."""

    name: str
    _stages: dict[str, Stage] = field(default_factory=dict)
    _succ: dict[str, list[str]] = field(default_factory=dict)
    _pred: dict[str, list[str]] = field(default_factory=dict)
    _topo: WorkflowTopology | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowValidationError("workflow name must be non-empty")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_stage(self, stage_id: str, function_name: str) -> Stage:
        """Add a stage; returns the created :class:`Stage`."""
        if stage_id in self._stages:
            raise WorkflowValidationError(f"stage {stage_id!r} already exists in {self.name!r}")
        stage = Stage(stage_id=stage_id, function_name=function_name)
        self._stages[stage_id] = stage
        self._succ[stage_id] = []
        self._pred[stage_id] = []
        self._topo = None
        return stage

    def add_edge(self, src: str, dst: str) -> None:
        """Add a data-dependence edge ``src -> dst``."""
        for sid in (src, dst):
            if sid not in self._stages:
                raise WorkflowValidationError(f"unknown stage {sid!r} in edge ({src!r}, {dst!r})")
        if src == dst:
            raise WorkflowValidationError(f"self edge on stage {src!r} is not allowed")
        if dst in self._succ[src]:
            raise WorkflowValidationError(f"duplicate edge ({src!r}, {dst!r})")
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        self._topo = None

    @classmethod
    def linear(cls, name: str, function_names: Iterable[str]) -> "Workflow":
        """Build a linear pipeline ``f1 -> f2 -> ... -> fk``.

        Stage ids are ``"s1"``, ``"s2"``, ... in pipeline order.  All four
        applications in the paper's evaluation are linear pipelines.
        """
        wf = cls(name=name)
        prev: str | None = None
        for idx, fn in enumerate(function_names, start=1):
            sid = f"s{idx}"
            wf.add_stage(sid, fn)
            if prev is not None:
                wf.add_edge(prev, sid)
            prev = sid
        wf.validate()
        return wf

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        """Number of stages in the workflow."""
        return len(self._stages)

    def stage(self, stage_id: str) -> Stage:
        """Return the stage with the given id."""
        try:
            return self._stages[stage_id]
        except KeyError:
            raise KeyError(f"workflow {self.name!r} has no stage {stage_id!r}") from None

    def topology(self) -> WorkflowTopology:
        """The cached adjacency snapshot (rebuilt after any mutation)."""
        topo = self._topo
        if topo is None:
            topo = WorkflowTopology(self)
            self._topo = topo
        return topo

    def stage_ids(self) -> list[str]:
        """All stage ids in insertion order."""
        return list(self._stages)

    def stages(self) -> list[Stage]:
        """All stages in insertion order."""
        return list(self._stages.values())

    def function_of(self, stage_id: str) -> str:
        """The function a stage invokes."""
        return self.stage(stage_id).function_name

    def function_names(self) -> list[str]:
        """Function names in topological order (duplicates preserved)."""
        return [self.function_of(sid) for sid in self.topological_order()]

    def successors(self, stage_id: str) -> list[str]:
        """Stages that consume this stage's output."""
        self.stage(stage_id)
        return list(self._succ[stage_id])

    def predecessors(self, stage_id: str) -> list[str]:
        """Stages whose output this stage consumes."""
        self.stage(stage_id)
        return list(self._pred[stage_id])

    def sources(self) -> list[str]:
        """Stages with no predecessors (triggered directly by the request)."""
        return [sid for sid in self._stages if not self._pred[sid]]

    def sinks(self) -> list[str]:
        """Stages with no successors (their completion completes the request)."""
        return [sid for sid in self._stages if not self._succ[sid]]

    def edges(self) -> list[tuple[str, str]]:
        """All edges as (src, dst) tuples."""
        return [(src, dst) for src, dsts in self._succ.items() for dst in dsts]

    def __contains__(self, stage_id: str) -> bool:
        return stage_id in self._stages

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._stages.values())

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Return the stage ids in a deterministic topological order.

        Kahn's algorithm with insertion-order tie-breaking; raises
        :class:`WorkflowValidationError` if the graph has a cycle.
        """
        indegree = {sid: len(self._pred[sid]) for sid in self._stages}
        ready = [sid for sid in self._stages if indegree[sid] == 0]
        order: list[str] = []
        while ready:
            sid = ready.pop(0)
            order.append(sid)
            for nxt in self._succ[sid]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._stages):
            raise WorkflowValidationError(f"workflow {self.name!r} contains a cycle")
        return order

    def is_linear(self) -> bool:
        """True if the workflow is a simple pipeline (every degree <= 1)."""
        return all(len(self._succ[s]) <= 1 and len(self._pred[s]) <= 1 for s in self._stages)

    def downstream_stages(self, stage_id: str) -> list[str]:
        """All stages reachable from ``stage_id`` (excluding itself), topo-ordered."""
        reachable: set[str] = set()
        frontier = list(self._succ[stage_id])
        while frontier:
            sid = frontier.pop()
            if sid in reachable:
                continue
            reachable.add(sid)
            frontier.extend(self._succ[sid])
        return [sid for sid in self.topological_order() if sid in reachable]

    def validate(self) -> None:
        """Check structural invariants; raises on violation."""
        if self.num_stages == 0:
            raise WorkflowValidationError(f"workflow {self.name!r} has no stages")
        self.topological_order()  # raises on cycles
        if not self.sources():
            raise WorkflowValidationError(f"workflow {self.name!r} has no source stage")
        if not self.sinks():
            raise WorkflowValidationError(f"workflow {self.name!r} has no sink stage")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        chain = " -> ".join(self.function_of(s) for s in self.topological_order())
        return f"Workflow({self.name!r}: {chain})"
