"""Pluggable arrival processes.

The paper drives every experiment with one arrival model: inter-arrival
times drawn uniformly from an Azure-derived interval range (Figure 5,
:mod:`repro.workloads.traces`).  The dynamic load-balancing literature
treats far richer demand as the norm — Poisson streams, bursty on/off
sources, diurnal rate drift, recorded production traces — so this module
turns "how do requests arrive?" into a first-class, pluggable axis.

An :class:`ArrivalProcess` maps ``(n, rng)`` to ``n`` positive
inter-arrival intervals in milliseconds.  Implementations are frozen
dataclasses: picklable (they ride inside
:class:`~repro.experiments.engine.RunSpec` to worker processes) and
stateless (all randomness comes from the generator passed in, which the
callers derive via :func:`repro.utils.rng.derive_rng` — this is what makes
``n_jobs=4`` byte-identical to ``n_jobs=1``).

Examples
--------
Every process is deterministic given a derived generator:

>>> from repro.utils.rng import derive_rng
>>> process = PoissonProcess(rate_per_s=40.0)
>>> a = process.intervals(3, derive_rng(7, "demo"))
>>> b = process.intervals(3, derive_rng(7, "demo"))
>>> bool((a == b).all())
True
>>> round(process.mean_interval_ms, 1)
25.0

The paper's own sampling is just the default member of the hierarchy:

>>> from repro.workloads.traces import NORMAL_INTERVALS
>>> azure = AzureIntervalProcess(NORMAL_INTERVALS)
>>> iv = azure.intervals(100, derive_rng(42, "workload", "moderate-normal"))
>>> bool((iv >= 20.0).all() and (iv <= 33.6).all())
True
"""

from __future__ import annotations

import csv
import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.utils.validation import ensure_in_range, ensure_positive, ensure_positive_int
from repro.workloads.traces import ArrivalIntervalRange, generate_intervals

__all__ = [
    "ArrivalProcess",
    "AzureIntervalProcess",
    "PoissonProcess",
    "OnOffBurstProcess",
    "DiurnalProcess",
    "TraceReplayProcess",
    "TraceFileReplayProcess",
    "TraceExhaustedError",
    "iter_trace_intervals",
]


class TraceExhaustedError(ValueError):
    """Raised when a non-looping trace has fewer intervals than requested."""


class ArrivalProcess(ABC):
    """Maps a request count and an RNG stream to inter-arrival intervals.

    Subclasses must be picklable and must draw randomness *only* from the
    generator passed to :meth:`intervals` — never from module state, the
    wall clock, or a private seeded generator — so that a run's arrivals
    are a pure function of the experiment seed regardless of which process
    executes it.
    """

    @abstractmethod
    def intervals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` positive inter-arrival intervals in milliseconds."""

    @property
    @abstractmethod
    def mean_interval_ms(self) -> float:
        """Long-run mean inter-arrival time (used to size duration-bounded runs)."""

    def interval_stream(self, rng: np.random.Generator) -> Iterator[float]:
        """Yield inter-arrival intervals one at a time.

        The open-ended counterpart of :meth:`intervals`, used by
        duration-bounded request streams
        (:class:`~repro.workloads.stream.DurationRequestStream`) where the
        interval count is unknown up front.  The contract: the first ``n``
        yielded values equal ``intervals(n, rng)`` value-for-value on the
        same RNG state (numpy's per-value draws are stream-equivalent to
        bulk draws).  The default implementation draws one value per pull
        and is correct for *memoryless* processes only — processes whose
        bulk path carries state across values (Markov state, a thinning
        clock, a trace cursor) must override it, or each pull would
        silently restart from the initial state.

        The iterator is infinite for every generative process; only trace
        replays end (a non-looping trace stops after its stored intervals).
        """
        while True:
            yield float(self.intervals(1, rng)[0])

    def arrival_times(
        self, n: int, rng: np.random.Generator, *, start_ms: float = 0.0
    ) -> np.ndarray:
        """Return ``n`` absolute arrival timestamps (cumulative intervals)."""
        return start_ms + np.cumsum(self.intervals(n, rng))

    @property
    def mean_rate_per_s(self) -> float:
        """Long-run mean arrival rate in requests per second."""
        return 1000.0 / self.mean_interval_ms


@dataclass(frozen=True)
class AzureIntervalProcess(ArrivalProcess):
    """The paper's arrival model: uniform Azure-derived interval sampling.

    This is the default process everywhere; with ``burstiness=0`` its draws
    are byte-identical to the pre-scenario code path (it delegates to
    :func:`repro.workloads.traces.generate_intervals` on the same RNG
    stream), which is what keeps the paper-default scenarios reproducing
    the exact historical :class:`~repro.cluster.metrics.RunSummary` output.
    """

    interval_range: ArrivalIntervalRange
    burstiness: float = 0.0

    def __post_init__(self) -> None:
        ensure_in_range(self.burstiness, 0.0, 1.0, "burstiness")

    def intervals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return generate_intervals(n, self.interval_range, rng, burstiness=self.burstiness)

    def interval_stream(self, rng: np.random.Generator) -> Iterator[float]:
        if self.burstiness != 0.0:
            # The burstiness envelope is a sinusoid stretched over the
            # *total* batch length (np.linspace(0, 4*pi, n)), so it has no
            # open-ended form: the modulation of interval k depends on how
            # many intervals will be drawn in total.
            raise ValueError(
                "AzureIntervalProcess with burstiness > 0 cannot stream: its "
                "rate modulation spans a fixed-length batch; use burstiness=0, "
                "or model open-ended burstiness with OnOffBurstProcess / "
                "DiurnalProcess"
            )
        return super().interval_stream(rng)

    @property
    def mean_interval_ms(self) -> float:
        return self.interval_range.mean_ms


@dataclass(frozen=True)
class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival times at a fixed rate."""

    rate_per_s: float

    def __post_init__(self) -> None:
        ensure_positive(self.rate_per_s, "rate_per_s")

    def intervals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        ensure_positive_int(n, "n")
        return rng.exponential(self.mean_interval_ms, size=n)

    @property
    def mean_interval_ms(self) -> float:
        return 1000.0 / self.rate_per_s


@dataclass(frozen=True)
class OnOffBurstProcess(ArrivalProcess):
    """MMPP-style bursty source: a two-state Markov-modulated Poisson process.

    The source alternates between a *burst* state (high rate) and a *base*
    state (low rate); dwell times in each state are exponential.  Thanks to
    the memorylessness of the exponential, discarding the in-flight
    candidate arrival at a state switch and redrawing at the new rate
    yields an exact MMPP sample path.
    """

    burst_rate_per_s: float
    base_rate_per_s: float
    mean_burst_ms: float
    mean_gap_ms: float
    #: Whether the source starts in the burst state.
    start_in_burst: bool = True

    def __post_init__(self) -> None:
        ensure_positive(self.burst_rate_per_s, "burst_rate_per_s")
        ensure_positive(self.base_rate_per_s, "base_rate_per_s")
        ensure_positive(self.mean_burst_ms, "mean_burst_ms")
        ensure_positive(self.mean_gap_ms, "mean_gap_ms")
        if self.burst_rate_per_s < self.base_rate_per_s:
            raise ValueError(
                f"burst_rate_per_s ({self.burst_rate_per_s}) must be >= "
                f"base_rate_per_s ({self.base_rate_per_s})"
            )

    def intervals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        ensure_positive_int(n, "n")
        # One draw loop only: the stream is the source of truth and the
        # bulk path takes its first n values (identical draws, same RNG).
        return np.fromiter(itertools.islice(self.interval_stream(rng), n), float, count=n)

    def interval_stream(self, rng: np.random.Generator) -> Iterator[float]:
        # The Markov state (burst/base, dwell deadline) carries across
        # yields, so pulls continue the sample path instead of restarting.
        in_burst = self.start_in_burst
        now = 0.0
        state_end = now + rng.exponential(self.mean_burst_ms if in_burst else self.mean_gap_ms)
        last_arrival = 0.0
        while True:
            while True:
                mean = 1000.0 / (self.burst_rate_per_s if in_burst else self.base_rate_per_s)
                candidate = now + rng.exponential(mean)
                if candidate <= state_end:
                    now = candidate
                    break
                now = state_end
                in_burst = not in_burst
                state_end = now + rng.exponential(
                    self.mean_burst_ms if in_burst else self.mean_gap_ms
                )
            yield now - last_arrival
            last_arrival = now

    @property
    def mean_interval_ms(self) -> float:
        # Time-weighted average rate over the on/off cycle.
        cycle_ms = self.mean_burst_ms + self.mean_gap_ms
        mean_rate = (
            self.burst_rate_per_s * self.mean_burst_ms
            + self.base_rate_per_s * self.mean_gap_ms
        ) / cycle_ms
        return 1000.0 / mean_rate


@dataclass(frozen=True)
class DiurnalProcess(ArrivalProcess):
    """Sinusoidal-rate arrivals: ``rate(t) = base * (1 + amplitude*sin(...))``.

    Samples a non-homogeneous Poisson process by Lewis-Shedler thinning
    against the peak rate.  ``amplitude`` must stay strictly below 1 so the
    instantaneous rate never reaches zero (a zero-rate trough would stall
    the thinning loop forever).
    """

    base_rate_per_s: float
    amplitude: float = 0.5
    period_ms: float = 60_000.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive(self.base_rate_per_s, "base_rate_per_s")
        ensure_positive(self.period_ms, "period_ms")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1) so the rate stays positive, "
                f"got {self.amplitude}"
            )

    def rate_per_s_at(self, t_ms: float) -> float:
        """Instantaneous arrival rate at simulated time ``t_ms``."""
        angle = 2.0 * np.pi * t_ms / self.period_ms + self.phase
        return self.base_rate_per_s * (1.0 + self.amplitude * np.sin(angle))

    def intervals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        ensure_positive_int(n, "n")
        # One thinning loop only: the stream is the source of truth and the
        # bulk path takes its first n values (identical draws, same RNG).
        return np.fromiter(itertools.islice(self.interval_stream(rng), n), float, count=n)

    def interval_stream(self, rng: np.random.Generator) -> Iterator[float]:
        # The candidate clock carries across yields (a restart-per-pull
        # would reset the sinusoid's phase to t=0 for every interval).
        peak_rate = self.base_rate_per_s * (1.0 + self.amplitude)
        peak_mean_ms = 1000.0 / peak_rate
        now = 0.0
        last_arrival = 0.0
        while True:
            while True:
                now += rng.exponential(peak_mean_ms)
                if rng.uniform() * peak_rate <= self.rate_per_s_at(now):
                    break
            yield now - last_arrival
            last_arrival = now

    @property
    def mean_interval_ms(self) -> float:
        # The sinusoid averages out over a period.
        return 1000.0 / self.base_rate_per_s


@dataclass(frozen=True)
class TraceReplayProcess(ArrivalProcess):
    """Replays a recorded sequence of inter-arrival intervals.

    The intervals are stored inline (a tuple), so a trace-driven
    :class:`~repro.experiments.engine.RunSpec` pickles to workers without
    any filesystem access on the worker side.  Load a trace from disk with
    :meth:`from_csv`.
    """

    intervals_ms: tuple[float, ...]
    #: When True the trace wraps around instead of raising
    #: :class:`TraceExhaustedError` once consumed.
    loop: bool = False

    def __post_init__(self) -> None:
        if not self.intervals_ms:
            raise ValueError("trace is empty: at least one interval is required")
        if any(iv <= 0 for iv in self.intervals_ms):
            raise ValueError("trace intervals must all be > 0 ms")

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        *,
        column: int = 0,
        kind: str = "intervals",
        loop: bool = False,
    ) -> "TraceReplayProcess":
        """Load a trace from a CSV file.

        Parameters
        ----------
        path:
            CSV file; a non-numeric first row is treated as a header.
        column:
            Zero-based column index holding the values.
        kind:
            ``"intervals"`` reads inter-arrival times (ms) directly;
            ``"timestamps"`` reads absolute arrival times (ms) and differences
            them (the first timestamp is measured from 0).
        loop:
            Passed through to the process (wrap around instead of raising).
        """
        values = list(_iter_csv_values(path, column, kind=kind))
        if not values:
            raise ValueError(f"trace {path} is empty: no numeric values in column {column}")
        return cls(intervals_ms=tuple(values), loop=loop)

    def intervals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        ensure_positive_int(n, "n")
        stored = len(self.intervals_ms)
        if n > stored and not self.loop:
            raise TraceExhaustedError(
                f"trace holds {stored} intervals but {n} were requested; "
                f"pass loop=True to wrap around"
            )
        reps = -(-n // stored)  # ceil division
        return np.tile(np.asarray(self.intervals_ms), reps)[:n]

    def interval_stream(self, rng: np.random.Generator) -> Iterator[float]:
        while True:
            yield from self.intervals_ms
            if not self.loop:
                return

    @property
    def mean_interval_ms(self) -> float:
        return float(np.mean(self.intervals_ms))


def _iter_csv_values(
    path: str | Path, column: int, *, kind: str = "intervals"
) -> Iterator[float]:
    """Parse one numeric column of a trace CSV, one row at a time.

    Shared by the eager :meth:`TraceReplayProcess.from_csv` and the chunked
    :class:`TraceFileReplayProcess` reader, so both apply identical parsing
    rules: blank rows and empty cells are skipped, leading non-numeric rows
    are treated as a header, a non-numeric value after the first numeric one
    is an error, and ``kind="timestamps"`` columns are differenced on the
    fly (the first timestamp is measured from 0) with a strictly-increasing
    check.
    """
    if kind not in ("intervals", "timestamps"):
        raise ValueError(f"kind must be 'intervals' or 'timestamps', got {kind!r}")
    previous_ts = 0.0
    seen_numeric = False
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if not row:
                continue
            if len(row) <= column:
                raise ValueError(f"row {row!r} in trace {path} has no column {column}")
            if not row[column].strip():
                continue
            try:
                value = float(row[column])
            except ValueError:
                if seen_numeric:
                    raise ValueError(
                        f"non-numeric value {row[column]!r} in trace {path}"
                    ) from None
                continue  # header row
            seen_numeric = True
            if kind == "timestamps":
                interval = value - previous_ts
                if interval <= 0:
                    raise ValueError(
                        f"timestamps in trace {path} must be strictly increasing"
                    )
                previous_ts = value
                yield interval
            else:
                yield value


def iter_trace_intervals(
    path: str | Path,
    *,
    column: int = 0,
    kind: str = "intervals",
    loop: bool = False,
) -> Iterator[float]:
    """Lazily yield the inter-arrival intervals of a trace CSV.

    Reads the file row by row (re-opening it per pass when ``loop`` is
    True), so a multi-gigabyte trace streams in constant memory.  Interval
    validation (``> 0 ms``) happens as values are read.  Raises
    ``ValueError`` on an empty trace — also when looping, where an empty
    file would otherwise spin forever.
    """
    while True:
        yielded = 0
        for value in _iter_csv_values(path, column, kind=kind):
            if value <= 0:
                raise ValueError(f"trace intervals must all be > 0 ms, got {value}")
            yielded += 1
            yield value
        if yielded == 0:
            raise ValueError(
                f"trace {path} is empty: no numeric values in column {column}"
            )
        if not loop:
            return


@dataclass(frozen=True)
class TraceFileReplayProcess(ArrivalProcess):
    """Replays a trace CSV directly from disk, in chunks.

    The file-backed sibling of :class:`TraceReplayProcess`: instead of
    loading every interval into an inline tuple at construction, it keeps
    only the *path* and reads rows lazily — :meth:`interval_stream` is the
    primary interface, and a duration-bounded request stream over a
    million-row trace runs in constant memory.  The trade-off is explicit:
    the process pickles as a path, so a worker process must see the same
    file at the same location (the inline :class:`TraceReplayProcess`
    travels self-contained and remains the right choice for small traces
    shipped inside :class:`~repro.experiments.engine.RunSpec`).
    """

    path: str
    column: int = 0
    kind: str = "intervals"
    loop: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "path", str(self.path))
        if self.kind not in ("intervals", "timestamps"):
            raise ValueError(
                f"kind must be 'intervals' or 'timestamps', got {self.kind!r}"
            )
        if self.column < 0:
            raise ValueError(f"column must be >= 0, got {self.column}")
        if not Path(self.path).is_file():
            raise FileNotFoundError(f"trace file {self.path!r} does not exist")

    def interval_stream(self, rng: np.random.Generator) -> Iterator[float]:
        return iter_trace_intervals(
            self.path, column=self.column, kind=self.kind, loop=self.loop
        )

    def intervals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        ensure_positive_int(n, "n")
        out = np.empty(n)
        stream = self.interval_stream(rng)
        for i in range(n):
            try:
                out[i] = next(stream)
            except StopIteration:
                raise TraceExhaustedError(
                    f"trace {self.path} holds {i} intervals but {n} were "
                    f"requested; pass loop=True to wrap around"
                ) from None
        return out

    @property
    def mean_interval_ms(self) -> float:
        """Mean interval over one full pass of the file (computed once)."""
        cached = self.__dict__.get("_mean_interval_ms")
        if cached is None:
            total = 0.0
            count = 0
            for value in iter_trace_intervals(
                self.path, column=self.column, kind=self.kind, loop=False
            ):
                total += value
                count += 1
            cached = total / count
            object.__setattr__(self, "_mean_interval_ms", cached)
        return cached
