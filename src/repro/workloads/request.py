"""Runtime records for application requests and per-stage jobs.

Terminology follows Section 3.2 of the paper:

* a **request** is one invocation of an application (its end-to-end latency
  is what the SLO constrains);
* a **job** is the inference of one request at one stage (one entry in an
  AFW queue);
* a **task** is the set of jobs processed together by one batched function
  invocation (tasks live in :mod:`repro.cluster.tasks`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.workloads.dag import Workflow

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.profiles.configuration import Configuration

__all__ = ["Request", "Job"]


@dataclass
class Request:
    """One end-to-end invocation of an application workflow.

    Parameters
    ----------
    request_id:
        Unique id within the experiment.
    workflow:
        The application DAG this request traverses.
    arrival_ms:
        Absolute simulation time at which the request arrived.
    slo_ms:
        The latency budget (duration, not an absolute time); the request is
        an SLO hit iff it completes within ``arrival_ms + slo_ms``.
    """

    request_id: int
    workflow: Workflow
    arrival_ms: float
    slo_ms: float

    #: Completion time of each finished stage (absolute ms).
    stage_completion_ms: dict[str, float] = field(default_factory=dict)
    #: Invoker that ran each finished stage (for data-locality decisions).
    stage_invoker: dict[str, int] = field(default_factory=dict)
    #: Full-application configuration plan computed up-front by static
    #: planners (Orion, Aquatope); ``None`` for adaptive schedulers.
    static_plan: dict[str, "Configuration"] | None = None
    #: Number of times a pre-planned configuration could not be applied
    #: (batch size larger than the queue, Table 4 of the paper).
    plan_miss_count: int = 0
    #: Set when the final stage completes.
    completed_ms: float | None = None
    #: Set when the request is terminally failed because a node eviction
    #: dropped its in-flight work under ``on_evict="fail"`` (cluster churn).
    #: Mutually exclusive with ``completed_ms``; an evicted request never
    #: completes and therefore counts as an SLO miss.
    evicted_ms: float | None = None

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise ValueError(f"arrival_ms must be >= 0, got {self.arrival_ms}")
        if self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be > 0, got {self.slo_ms}")

    # ------------------------------------------------------------------
    # Derived times
    # ------------------------------------------------------------------
    @property
    def app_name(self) -> str:
        """Name of the application this request invokes."""
        return self.workflow.name

    @property
    def deadline_ms(self) -> float:
        """Absolute time by which the request must finish to hit its SLO."""
        return self.arrival_ms + self.slo_ms

    def remaining_budget_ms(self, now_ms: float) -> float:
        """Time left until the deadline (can be negative once missed)."""
        return self.deadline_ms - now_ms

    @property
    def latency_ms(self) -> float | None:
        """End-to-end latency, or ``None`` if the request has not finished."""
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.arrival_ms

    @property
    def is_complete(self) -> bool:
        """True once every sink stage has completed."""
        return self.completed_ms is not None

    @property
    def is_evicted(self) -> bool:
        """True if the request was terminally failed by a node eviction."""
        return self.evicted_ms is not None

    @property
    def slo_hit(self) -> bool | None:
        """Whether the request met its SLO (``None`` while still running)."""
        if self.completed_ms is None:
            return None
        return (self.completed_ms - self.arrival_ms) <= self.slo_ms

    # ------------------------------------------------------------------
    # Stage bookkeeping
    # ------------------------------------------------------------------
    def record_stage_completion(self, stage_id: str, finish_ms: float, invoker_id: int) -> None:
        """Record that ``stage_id`` finished at ``finish_ms`` on ``invoker_id``."""
        if stage_id not in self.workflow:
            raise KeyError(f"{stage_id!r} is not a stage of {self.workflow.name!r}")
        if stage_id in self.stage_completion_ms:
            raise ValueError(f"stage {stage_id!r} of request {self.request_id} completed twice")
        self.stage_completion_ms[stage_id] = finish_ms
        self.stage_invoker[stage_id] = invoker_id
        if all(sink in self.stage_completion_ms for sink in self.workflow.sinks()):
            self.completed_ms = max(
                self.stage_completion_ms[sink] for sink in self.workflow.sinks()
            )

    def stage_is_ready(self, stage_id: str) -> bool:
        """True if all predecessors of ``stage_id`` have completed."""
        return all(p in self.stage_completion_ms for p in self.workflow.predecessors(stage_id))

    def remaining_stage_ids(self) -> list[str]:
        """Stages not yet completed, in topological order."""
        return [
            sid for sid in self.workflow.topological_order()
            if sid not in self.stage_completion_ms
        ]

    def predecessor_invoker(self, stage_id: str) -> int | None:
        """Invoker that ran the (latest-finishing) predecessor of ``stage_id``.

        Used by ESG_Dispatch's data-locality policy; ``None`` for source
        stages or when no predecessor has completed yet.
        """
        preds = [p for p in self.workflow.predecessors(stage_id) if p in self.stage_invoker]
        if not preds:
            return None
        latest = max(preds, key=lambda p: self.stage_completion_ms[p])
        return self.stage_invoker[latest]


@dataclass
class Job:
    """One request waiting at one stage (one element of an AFW queue)."""

    request: Request
    stage_id: str
    ready_ms: float

    def __post_init__(self) -> None:
        if self.stage_id not in self.request.workflow:
            raise KeyError(
                f"{self.stage_id!r} is not a stage of {self.request.workflow.name!r}"
            )
        if self.ready_ms < 0:
            raise ValueError(f"ready_ms must be >= 0, got {self.ready_ms}")

    @property
    def function_name(self) -> str:
        """The serverless function this job invokes."""
        return self.request.workflow.function_of(self.stage_id)

    @property
    def app_name(self) -> str:
        """The application the job belongs to."""
        return self.request.app_name

    def waiting_ms(self, now_ms: float) -> float:
        """How long the job has been queueing."""
        return max(0.0, now_ms - self.ready_ms)

    def remaining_budget_ms(self, now_ms: float) -> float:
        """Time left before the owning request misses its deadline."""
        return self.request.remaining_budget_ms(now_ms)
