"""Lazy request streams: bounded-memory workload generation.

A :class:`RequestStream` is the lazy counterpart of
:meth:`~repro.workloads.generator.WorkloadGenerator.generate`: an ordered
iterator of ``(arrival_ms, Request)`` pairs that the simulator can pull one
arrival at a time, so a million-request run never holds a million
:class:`~repro.workloads.request.Request` object graphs at once.  Two
concrete shapes exist, matching the two generation modes:

* :class:`CountRequestStream` — a fixed number of requests.  Its random
  draws are *bulk* calls in exactly the order the materialized
  :meth:`~repro.workloads.generator.WorkloadGenerator.generate` path makes
  them (all arrival intervals, then all application picks), which is what
  makes streaming runs **byte-identical** to materialized runs: the stream
  keeps only two compact numpy arrays (~16 bytes per request) and builds
  each ``Request`` on demand.
* :class:`DurationRequestStream` — every request whose arrival falls inside
  a simulated-time window.  Draws are *per request* (one interval, then one
  application pick), so the stream is O(1) in memory and — unlike the
  historical mean-rate estimate — **exact**: it ends only once the arrival
  clock actually passes the window, no matter how bursty the process is.

Determinism contract: a stream is a pure function of its generator's RNG
state at construction.  Count streams consume the RNG at construction time
(two bulk draws); duration streams consume it while iterating — one
interval pull interleaved with one application pick per request, on the
same generator.  That interleaving is the duration stream's own
deterministic draw order: it does *not* reproduce a bare
``intervals(n, rng)`` sequence (only ``interval_stream`` in isolation
matches the bulk draws value-for-value; here the picks advance the RNG in
between).

Examples
--------
>>> from repro.utils.rng import derive_rng
>>> from repro.profiles.profiler import ProfileStore
>>> from repro.profiles.configuration import ConfigurationSpace
>>> from repro.workloads.applications import build_paper_applications
>>> from repro.workloads.generator import MODERATE_NORMAL, WorkloadGenerator
>>> store = ProfileStore.build(space=ConfigurationSpace.small())
>>> def fresh():
...     return WorkloadGenerator(
...         applications=build_paper_applications(),
...         setting=MODERATE_NORMAL,
...         profile_store=store,
...         rng=derive_rng(7, "stream-doctest"),
...     )
>>> lazy = [r.arrival_ms for _, r in fresh().stream(5)]
>>> eager = [r.arrival_ms for r in fresh().generate(5)]
>>> lazy == eager
True
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.utils.validation import ensure_positive, ensure_positive_int
from repro.workloads.arrival import TraceExhaustedError
from repro.workloads.dag import Workflow
from repro.workloads.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.workloads.generator import WorkloadGenerator

__all__ = [
    "WORKLOAD_MODES",
    "RequestStream",
    "CountRequestStream",
    "DurationRequestStream",
]

#: Workload-generation modes accepted by the experiment layer:
#: ``"materialized"`` builds the full request list up front (the default,
#: debuggable path); ``"streaming"`` hands the simulator a lazy
#: :class:`RequestStream` instead.  Summaries are byte-identical.
WORKLOAD_MODES = ("materialized", "streaming")


def _app_probs(generator: "WorkloadGenerator") -> np.ndarray | None:
    """Normalised application-pick probabilities (None = uniform)."""
    if generator.app_weights is None:
        return None
    weights = np.asarray(generator.app_weights, dtype=float)
    return weights / weights.sum()


class RequestStream(ABC):
    """An ordered, lazy stream of ``(arrival_ms, Request)`` pairs.

    Iterating yields requests in arrival order with consecutive
    ``request_id`` values starting at 0.  The simulator pulls one pair at a
    time — scheduling arrival *k+1* only once arrival *k* has fired — so
    the event queue and the workload layer stay small regardless of the
    total request count.
    """

    @abstractmethod
    def __iter__(self) -> Iterator[tuple[float, Request]]:
        """Yield ``(arrival_ms, request)`` in non-decreasing arrival order."""

    @abstractmethod
    def workflows(self) -> dict[str, Workflow]:
        """The workflows this stream's requests will reference, keyed by
        application name.

        The simulator registers these (and warms the initial container
        pool) before the first arrival, exactly like the upfront pass over
        a materialized request list.  Count streams return precisely the
        applications that *will* appear, in first-appearance order — the
        same set and order a materialized run derives from its request
        list, which is part of the byte-identity guarantee.  Duration
        streams cannot know appearances without consuming the stream, so
        they declare every application of their generator.
        """

    def iter_chunks(
        self, chunk_size: int
    ) -> Iterator[list[tuple[float, Request]]]:
        """Yield the stream's pairs in lists of up to ``chunk_size``.

        The fast event loop pulls arrivals through this instead of one
        ``next()`` per request, amortising the generator re-entry cost.
        The pairs and their order are exactly those of :meth:`__iter__`;
        only the last chunk may be short.  Subclasses may override with a
        tighter loop, but must preserve pair-for-pair equality.
        """
        ensure_positive_int(chunk_size, "chunk_size")
        source = iter(self)
        while True:
            chunk = list(itertools.islice(source, chunk_size))
            if not chunk:
                return
            yield chunk

    def materialize(self) -> list[Request]:
        """Consume the stream into a plain request list."""
        return [request for _, request in self]


class CountRequestStream(RequestStream):
    """Lazy stream of a fixed number of requests.

    The arrival timestamps and application picks are drawn at construction
    with the same two bulk RNG calls as
    :meth:`~repro.workloads.generator.WorkloadGenerator.generate` — the
    byte-identity anchor — and retained as compact numpy arrays (one float64
    and one int64 per request).  ``Request`` objects are built only as the
    stream is iterated, and a fresh iteration builds fresh objects, so one
    stream can drive several runs of the *same* workload (requests carry
    mutable runtime state and must never be shared across runs).
    """

    def __init__(
        self,
        generator: "WorkloadGenerator",
        num_requests: int,
        *,
        start_ms: float = 0.0,
    ) -> None:
        ensure_positive_int(num_requests, "num_requests")
        self._generator = generator
        # Exactly generate()'s draw order: all intervals, then all picks.
        self._arrivals = generator.arrival_process.arrival_times(
            num_requests, generator.rng, start_ms=start_ms
        )
        self._app_indices = generator.rng.choice(
            len(generator.applications), size=num_requests, p=_app_probs(generator)
        )

    def __len__(self) -> int:
        return len(self._arrivals)

    def __iter__(self) -> Iterator[tuple[float, Request]]:
        generator = self._generator
        applications = generator.applications
        factory = generator.workflow_factory
        for req_id in range(len(self._arrivals)):
            workflow = applications[int(self._app_indices[req_id])]
            if factory is not None:
                workflow = factory(workflow)
            arrival = float(self._arrivals[req_id])
            yield arrival, Request(
                request_id=req_id,
                workflow=workflow,
                arrival_ms=arrival,
                slo_ms=generator.slo_ms(workflow),
            )

    def iter_chunks(
        self, chunk_size: int
    ) -> Iterator[list[tuple[float, Request]]]:
        """Chunked iteration over the pre-drawn arrays, bypassing the
        generator protocol of :meth:`__iter__` (no frame suspension per
        request).  Pair-for-pair identical to ``__iter__`` — same array
        reads, same ``slo_ms`` call order, same factory application.
        """
        ensure_positive_int(chunk_size, "chunk_size")
        generator = self._generator
        applications = generator.applications
        factory = generator.workflow_factory
        arrivals = self._arrivals
        indices = self._app_indices
        total = len(arrivals)
        for start in range(0, total, chunk_size):
            chunk: list[tuple[float, Request]] = []
            for req_id in range(start, min(start + chunk_size, total)):
                workflow = applications[int(indices[req_id])]
                if factory is not None:
                    workflow = factory(workflow)
                arrival = float(arrivals[req_id])
                chunk.append(
                    (
                        arrival,
                        Request(
                            request_id=req_id,
                            workflow=workflow,
                            arrival_ms=arrival,
                            slo_ms=generator.slo_ms(workflow),
                        ),
                    )
                )
            yield chunk

    def workflows(self) -> dict[str, Workflow]:
        if self._generator.workflow_factory is not None:
            raise ValueError(
                "a streaming simulation cannot pre-register factory-built "
                "workflows (the factory runs per request, at yield time); "
                "use materialized generation with workflow_factory"
            )
        # First-appearance order of the app indices, mirroring the
        # setdefault scan a materialized run does over its request list.
        _, first_index = np.unique(self._app_indices, return_index=True)
        workflows: dict[str, Workflow] = {}
        for position in np.sort(first_index):
            workflow = self._generator.applications[int(self._app_indices[position])]
            workflows.setdefault(workflow.name, workflow)
        return workflows


class DurationRequestStream(RequestStream):
    """Lazy stream of every request arriving within a simulated-time window.

    Yields each request whose arrival falls in ``(start_ms, start_ms +
    duration_ms]`` and stops as soon as the next drawn arrival would exceed
    the bound — the *exact* duration guarantee that replaces the old
    mean-rate-times-1.3 estimate (which silently under-generated for bursty
    processes whose realised short-term rate beats their long-run mean).
    Randomness is drawn per request (one interval via
    :meth:`~repro.workloads.arrival.ArrivalProcess.interval_stream`, then
    one application pick), so memory stays O(1) in the stream length.

    The stream is single-shot: it consumes its generator's RNG while
    iterating, so a second iteration would continue the RNG stream and
    silently produce a different workload — it raises instead.

    Raises
    ------
    TraceExhaustedError
        If the arrival process runs out (a non-looping trace) before the
        arrival clock covers the window.
    """

    def __init__(
        self,
        generator: "WorkloadGenerator",
        duration_ms: float,
        *,
        start_ms: float = 0.0,
    ) -> None:
        ensure_positive(duration_ms, "duration_ms")
        self._generator = generator
        self._duration_ms = duration_ms
        self._start_ms = start_ms
        self._consumed = False

    def __iter__(self) -> Iterator[tuple[float, Request]]:
        if self._consumed:
            raise RuntimeError(
                "this DurationRequestStream was already iterated; it draws "
                "from its generator's RNG lazily, so re-iterating would "
                "produce a different workload — build a fresh stream instead"
            )
        self._consumed = True
        generator = self._generator
        rng = generator.rng
        applications = generator.applications
        factory = generator.workflow_factory
        probs = _app_probs(generator)
        intervals = generator.arrival_process.interval_stream(rng)
        bound = self._start_ms + self._duration_ms
        clock = self._start_ms
        req_id = 0
        while True:
            try:
                clock += next(intervals)
            except StopIteration:
                raise TraceExhaustedError(
                    f"arrival process exhausted at {clock:.3f} ms, before "
                    f"covering the requested window of {self._duration_ms} ms "
                    f"from {self._start_ms} ms; use a looping trace or a "
                    f"shorter duration"
                ) from None
            if clock > bound:
                return
            app_idx = int(rng.choice(len(applications), p=probs))
            workflow = applications[app_idx]
            if factory is not None:
                workflow = factory(workflow)
            yield clock, Request(
                request_id=req_id,
                workflow=workflow,
                arrival_ms=clock,
                slo_ms=generator.slo_ms(workflow),
            )
            req_id += 1

    def workflows(self) -> dict[str, Workflow]:
        if self._generator.workflow_factory is not None:
            raise ValueError(
                "a streaming simulation cannot pre-register factory-built "
                "workflows (the factory runs per request, at yield time); "
                "use materialized generation with workflow_factory"
            )
        # Which applications appear is unknown until the stream is consumed,
        # so a duration-streamed run declares (and warms) all of them.
        workflows: dict[str, Workflow] = {}
        for workflow in self._generator.applications:
            workflows.setdefault(workflow.name, workflow)
        return workflows
