"""Arrival-interval generation (Figure 5).

The paper derives per-minute job arrival rates from the public Azure
Functions traces and distils them into three situations with job arrival
intervals drawn uniformly from [10, 16.8] ms (heavy), [20, 33.6] ms
(normal) and [40, 67.2] ms (light).  Since Figure 5 fully specifies the
distribution actually used, we generate the same uniform interval ranges;
an optional burstiness knob reproduces the minute-scale rate variation of
the original traces for robustness experiments.

Examples
--------
>>> from repro.utils.rng import derive_rng
>>> intervals = generate_intervals(1000, NORMAL_INTERVALS, derive_rng(42, "fig5"))
>>> bool((intervals >= 20.0).all() and (intervals <= 33.6).all())
True
>>> NORMAL_INTERVALS.mean_ms
26.8
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_positive, ensure_positive_int

__all__ = [
    "ArrivalIntervalRange",
    "generate_intervals",
    "generate_arrival_times",
    "HEAVY_INTERVALS",
    "NORMAL_INTERVALS",
    "LIGHT_INTERVALS",
]


@dataclass(frozen=True)
class ArrivalIntervalRange:
    """Uniform range of inter-arrival times, in milliseconds."""

    low_ms: float
    high_ms: float

    def __post_init__(self) -> None:
        ensure_positive(self.low_ms, "low_ms")
        ensure_positive(self.high_ms, "high_ms")
        if self.high_ms < self.low_ms:
            raise ValueError(
                f"high_ms ({self.high_ms}) must be >= low_ms ({self.low_ms})"
            )

    @property
    def mean_ms(self) -> float:
        """Mean inter-arrival time."""
        return 0.5 * (self.low_ms + self.high_ms)

    @property
    def mean_rate_per_s(self) -> float:
        """Mean arrival rate in requests per second."""
        return 1000.0 / self.mean_ms


#: The three interval ranges of Section 4.1 / Figure 5.
HEAVY_INTERVALS = ArrivalIntervalRange(10.0, 16.8)
NORMAL_INTERVALS = ArrivalIntervalRange(20.0, 33.6)
LIGHT_INTERVALS = ArrivalIntervalRange(40.0, 67.2)


def generate_intervals(
    n: int,
    interval_range: ArrivalIntervalRange,
    rng: np.random.Generator,
    *,
    burstiness: float = 0.0,
) -> np.ndarray:
    """Draw ``n`` inter-arrival intervals from ``interval_range``.

    Parameters
    ----------
    n:
        Number of intervals.
    interval_range:
        Uniform range to sample from.
    rng:
        Random generator (derive it from the experiment seed).
    burstiness:
        0.0 reproduces the paper's uniform sampling.  Values in (0, 1]
        modulate the range with a slow sinusoidal rate drift (mimicking the
        minute-scale variation of the Azure traces) while keeping every
        interval inside ``[low * (1 - burstiness/2), high * (1 + burstiness/2)]``.
    """
    ensure_positive_int(n, "n")
    if not 0.0 <= burstiness <= 1.0:
        raise ValueError(f"burstiness must be in [0, 1], got {burstiness}")
    base = rng.uniform(interval_range.low_ms, interval_range.high_ms, size=n)
    if burstiness == 0.0:
        return base
    phase = rng.uniform(0.0, 2.0 * np.pi)
    cycle = np.sin(np.linspace(0.0, 4.0 * np.pi, n) + phase)
    modulation = 1.0 + 0.5 * burstiness * cycle
    return base * modulation


def generate_arrival_times(
    n: int,
    interval_range: ArrivalIntervalRange,
    rng: np.random.Generator,
    *,
    start_ms: float = 0.0,
    burstiness: float = 0.0,
) -> np.ndarray:
    """Return ``n`` absolute arrival timestamps (cumulative intervals)."""
    intervals = generate_intervals(n, interval_range, rng, burstiness=burstiness)
    return start_ms + np.cumsum(intervals)
