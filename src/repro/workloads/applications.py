"""The four DNN applications used in the paper's evaluation (Section 4.1).

* **Image classification** — super-resolution -> segmentation -> classification.
* **Depth recognition** — deblur -> super-resolution -> depth recognition.
* **Background elimination** — super-resolution -> deblur -> background removal.
* **Expanded image classification** — deblur -> super-resolution ->
  background removal -> segmentation -> classification (the long pipeline
  that suffers most under resource-hungry schedulers, Figure 7(d)).
"""

from __future__ import annotations

from repro.workloads.dag import Workflow

__all__ = [
    "image_classification",
    "depth_recognition",
    "background_elimination",
    "expanded_image_classification",
    "build_paper_applications",
    "PAPER_APPLICATIONS",
]


def image_classification() -> Workflow:
    """Super-resolution, then segmentation, then classification."""
    return Workflow.linear(
        "image_classification",
        ["super_resolution", "segmentation", "classification"],
    )


def depth_recognition() -> Workflow:
    """Deblur, then super-resolution, then monocular depth estimation."""
    return Workflow.linear(
        "depth_recognition",
        ["deblur", "super_resolution", "depth_recognition"],
    )


def background_elimination() -> Workflow:
    """Super-resolution, then deblur, then background removal."""
    return Workflow.linear(
        "background_elimination",
        ["super_resolution", "deblur", "background_removal"],
    )


def expanded_image_classification() -> Workflow:
    """The five-stage expanded image classification pipeline."""
    return Workflow.linear(
        "expanded_image_classification",
        [
            "deblur",
            "super_resolution",
            "background_removal",
            "segmentation",
            "classification",
        ],
    )


def build_paper_applications() -> list[Workflow]:
    """Fresh instances of all four paper applications (evaluation order)."""
    return [
        image_classification(),
        depth_recognition(),
        background_elimination(),
        expanded_image_classification(),
    ]


#: Mapping from application name to its builder, for lookups by name.
PAPER_APPLICATIONS = {
    "image_classification": image_classification,
    "depth_recognition": depth_recognition,
    "background_elimination": background_elimination,
    "expanded_image_classification": expanded_image_classification,
}
