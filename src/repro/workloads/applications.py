"""DNN applications: the paper's four evaluation DAGs plus an open registry.

The paper evaluates four fixed applications (Section 4.1):

* **Image classification** — super-resolution -> segmentation -> classification.
* **Depth recognition** — deblur -> super-resolution -> depth recognition.
* **Background elimination** — super-resolution -> deblur -> background removal.
* **Expanded image classification** — deblur -> super-resolution ->
  background removal -> segmentation -> classification (the long pipeline
  that suffers most under resource-hungry schedulers, Figure 7(d)).

Beyond those, :data:`APPLICATION_BUILDERS` is an open name -> builder
registry that scenarios reference applications through, so non-paper mixes
(see :func:`vision_diamond`, :func:`single_stage_classification`) and
user-defined DAGs travel by *name* inside picklable run specs.

Examples
--------
>>> build_application("image_classification").num_stages
3
>>> wf = vision_diamond()
>>> sorted(s.stage_id for s in wf.stages())
['caption', 'fuse', 'preprocess', 'segment']
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.dag import Workflow

__all__ = [
    "image_classification",
    "depth_recognition",
    "background_elimination",
    "expanded_image_classification",
    "vision_diamond",
    "single_stage_classification",
    "build_paper_applications",
    "build_application",
    "register_application",
    "PAPER_APPLICATIONS",
    "APPLICATION_BUILDERS",
]


def image_classification() -> Workflow:
    """Super-resolution, then segmentation, then classification."""
    return Workflow.linear(
        "image_classification",
        ["super_resolution", "segmentation", "classification"],
    )


def depth_recognition() -> Workflow:
    """Deblur, then super-resolution, then monocular depth estimation."""
    return Workflow.linear(
        "depth_recognition",
        ["deblur", "super_resolution", "depth_recognition"],
    )


def background_elimination() -> Workflow:
    """Super-resolution, then deblur, then background removal."""
    return Workflow.linear(
        "background_elimination",
        ["super_resolution", "deblur", "background_removal"],
    )


def expanded_image_classification() -> Workflow:
    """The five-stage expanded image classification pipeline."""
    return Workflow.linear(
        "expanded_image_classification",
        [
            "deblur",
            "super_resolution",
            "background_removal",
            "segmentation",
            "classification",
        ],
    )


def vision_diamond() -> Workflow:
    """A non-paper split/join DAG built from the Table 3 functions.

    Super-resolution fans out to a segmentation branch and a captioning
    branch (classification) that join in a fusing deblur stage — exercising
    the dominator-based SLO distribution on a non-linear DAG.
    """
    wf = Workflow("vision_diamond")
    wf.add_stage("preprocess", "super_resolution")
    wf.add_stage("segment", "segmentation")
    wf.add_stage("caption", "classification")
    wf.add_stage("fuse", "deblur")
    wf.add_edge("preprocess", "segment")
    wf.add_edge("preprocess", "caption")
    wf.add_edge("segment", "fuse")
    wf.add_edge("caption", "fuse")
    wf.validate()
    return wf


def single_stage_classification() -> Workflow:
    """The degenerate one-stage application (no inter-function edges at all)."""
    return Workflow.linear("single_stage_classification", ["classification"])


def build_paper_applications() -> list[Workflow]:
    """Fresh instances of all four paper applications (evaluation order)."""
    return [
        image_classification(),
        depth_recognition(),
        background_elimination(),
        expanded_image_classification(),
    ]


#: Mapping from application name to its builder, for lookups by name.
PAPER_APPLICATIONS = {
    "image_classification": image_classification,
    "depth_recognition": depth_recognition,
    "background_elimination": background_elimination,
    "expanded_image_classification": expanded_image_classification,
}

#: Open registry of every known application builder (paper + extensions).
#: Scenarios reference applications through this table so that a run spec
#: can name them as plain picklable strings.
APPLICATION_BUILDERS: dict[str, Callable[[], Workflow]] = {
    **PAPER_APPLICATIONS,
    "vision_diamond": vision_diamond,
    "single_stage_classification": single_stage_classification,
}


def register_application(
    name: str, builder: Callable[[], Workflow], *, replace: bool = False
) -> None:
    """Add a builder to :data:`APPLICATION_BUILDERS` so scenarios can name it.

    The builder must return a *fresh* :class:`Workflow` on every call
    (workflows are cheap; requests carry mutable runtime state).
    """
    if not name:
        raise ValueError("application name must be non-empty")
    if name in APPLICATION_BUILDERS and not replace:
        raise ValueError(
            f"application {name!r} is already registered; pass replace=True to override"
        )
    APPLICATION_BUILDERS[name] = builder


def build_application(name: str) -> Workflow:
    """Instantiate a registered application by name."""
    try:
        return APPLICATION_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; registered: "
            f"{', '.join(sorted(APPLICATION_BUILDERS))}"
        ) from None
