"""Named scenarios: complete (applications x setting x arrivals) bundles.

A :class:`Scenario` names everything the demand side of an experiment
needs — which applications arrive, under which workload setting (SLO
tightness), timed by which :class:`~repro.workloads.arrival.ArrivalProcess`,
and for how long — as plain picklable data.  The :class:`ScenarioRegistry`
maps names to scenarios so a run spec, a CLI flag (``--scenario``) or a
benchmark sweep can reference a full experiment by a single string.

Determinism contract: a scenario's request stream is a pure function of
``(scenario, seed)``.  All randomness flows through one
:func:`~repro.utils.rng.derive_rng` stream labelled by the scenario's
``stream`` name, so ``n_jobs=4`` workers reproduce ``n_jobs=1`` runs
byte-for-byte.  The three ``paper-*`` scenarios pin ``stream`` to the
workload-setting name and use the default Azure arrival process, which
makes their output byte-identical to the pre-scenario code path.

Examples
--------
>>> scenario = get_scenario("paper-moderate-normal")
>>> scenario.setting
'moderate-normal'
>>> scenario.arrival is None  # paper default: Azure-interval sampling
True
>>> len(scenario_names()) >= 6
True
>>> SCENARIOS.register(get_scenario("bursty-onoff-heavy"))
Traceback (most recent call last):
    ...
ValueError: scenario 'bursty-onoff-heavy' is already registered; pass replace=True to override
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.cluster.autoscale import AutoscaleSpec
    from repro.cluster.churn import ChurnSchedule, ChurnSpec
    from repro.cluster.topology import ClusterTopology

from repro.profiles.profiler import ProfileStore
from repro.utils.rng import derive_rng
from repro.workloads.applications import build_application, build_paper_applications
from repro.workloads.arrival import (
    ArrivalProcess,
    DiurnalProcess,
    OnOffBurstProcess,
    PoissonProcess,
    TraceReplayProcess,
)
from repro.workloads.dag import Workflow
from repro.workloads.generator import (
    WORKLOAD_SETTINGS,
    WorkloadGenerator,
    WorkloadSetting,
)
from repro.workloads.request import Request
from repro.workloads.stream import RequestStream
from repro.workloads.traces import HEAVY_INTERVALS, LIGHT_INTERVALS, NORMAL_INTERVALS

__all__ = [
    "Scenario",
    "ScenarioRegistry",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "SAMPLE_TRACE_PATH",
]

#: Bundled miniature Azure-style trace used by the trace-replay scenario.
SAMPLE_TRACE_PATH = Path(__file__).parent / "data" / "azure_sample_trace.csv"


@dataclass(frozen=True)
class Scenario:
    """One named, picklable experiment demand bundle.

    Parameters
    ----------
    name:
        Registry key (e.g. ``"bursty-onoff-heavy"``).
    description:
        One line shown by ``esg-repro --list-scenarios``.
    setting:
        Workload-setting name (SLO tightness; see
        :data:`~repro.workloads.generator.WORKLOAD_SETTINGS`).
    arrival:
        Arrival process; ``None`` keeps the paper's Azure-interval sampling.
    applications:
        Names from :data:`~repro.workloads.applications.APPLICATION_BUILDERS`;
        ``None`` means the paper's four applications.
    app_weights:
        Optional sampling weights, one per application.
    num_requests:
        Default request count (overrides the experiment config's when set).
    horizon_ms:
        Optional simulated-time hard stop; runs that reach it are marked
        ``truncated`` in their :class:`~repro.cluster.metrics.RunSummary`.
    stream:
        RNG-stream label; defaults to the scenario name.  The ``paper-*``
        scenarios pin it to the setting name for byte-identity with the
        pre-scenario request builder.
    topology:
        Optional cluster shape — a registered
        :class:`~repro.cluster.topology.ClusterTopology` name or object.
        Applied by :func:`~repro.experiments.runner.run_experiment` when the
        experiment config leaves the cluster at the paper default, so a
        scenario can pin a non-paper cluster size without code edits.
    churn:
        Optional capacity-churn recipe — a registered
        :class:`~repro.cluster.churn.ChurnSpec` name, a spec, or a concrete
        :class:`~repro.cluster.churn.ChurnSchedule`.  Applied by
        :func:`~repro.experiments.runner.run_experiment` when the experiment
        config does not set its own churn; specs are expanded to schedules
        with the run's seed, so the churn stream is deterministic per
        ``(scenario, seed)`` just like the request stream.
    autoscale:
        Optional adaptive-prewarm recipe — a registered
        :class:`~repro.cluster.autoscale.AutoscaleSpec` name or a spec.
        Applied by :func:`~repro.experiments.runner.run_experiment` when the
        experiment config does not set its own autoscale; controllers are
        deterministic (no RNG), so the spec alone fixes every decision.
    """

    name: str
    description: str
    setting: str
    arrival: ArrivalProcess | None = None
    applications: tuple[str, ...] | None = None
    app_weights: tuple[float, ...] | None = None
    num_requests: int | None = None
    horizon_ms: float | None = None
    stream: str | None = None
    topology: "ClusterTopology | str | None" = None
    churn: "ChurnSpec | ChurnSchedule | str | None" = None
    autoscale: "AutoscaleSpec | str | None" = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if isinstance(self.autoscale, str):
            # Same eager-resolution rationale as ``churn``/``topology``: a
            # typo fails at construction, and the picklable spec travels
            # with the scenario to worker processes.
            from repro.cluster.autoscale import get_autoscale_spec

            object.__setattr__(self, "autoscale", get_autoscale_spec(self.autoscale))
        if isinstance(self.churn, str):
            # Same eager-resolution rationale as ``topology`` below: a typo
            # fails at construction, and the picklable spec travels with the
            # scenario to worker processes.
            from repro.cluster.churn import get_churn_spec

            object.__setattr__(self, "churn", get_churn_spec(self.churn))
        if isinstance(self.topology, str):
            # Resolve eagerly (mirrors RunSpec's scenario-name resolution):
            # a typo fails at construction, and the picklable object travels
            # with the scenario to worker processes.  Imported lazily to
            # keep the workloads package import-independent of the cluster
            # package.
            from repro.cluster.topology import get_topology

            object.__setattr__(self, "topology", get_topology(self.topology))
        if self.setting not in WORKLOAD_SETTINGS:
            raise KeyError(
                f"unknown workload setting {self.setting!r}; "
                f"expected one of {', '.join(WORKLOAD_SETTINGS)}"
            )
        if self.applications is not None and len(self.applications) == 0:
            raise ValueError("applications must be None (paper apps) or non-empty")
        if self.app_weights is not None:
            # Mirror WorkloadGenerator's checks so a malformed scenario fails
            # here, at registration/spec construction in the parent process,
            # not at generation time inside a worker.
            num_apps = 4 if self.applications is None else len(self.applications)
            if len(self.app_weights) != num_apps:
                raise ValueError(
                    "app_weights must have one weight per application "
                    f"({len(self.app_weights)} != {num_apps})"
                )
            if any(w < 0 for w in self.app_weights):
                raise ValueError("app_weights must be non-negative")
            if sum(self.app_weights) <= 0:
                raise ValueError("app_weights must not all be zero")
        if self.num_requests is not None and self.num_requests <= 0:
            raise ValueError(f"num_requests must be > 0, got {self.num_requests}")
        if self.horizon_ms is not None and self.horizon_ms <= 0:
            raise ValueError(f"horizon_ms must be > 0, got {self.horizon_ms}")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def setting_obj(self) -> WorkloadSetting:
        """The resolved workload setting."""
        return WORKLOAD_SETTINGS[self.setting]

    @property
    def stream_label(self) -> str:
        """RNG-stream label for this scenario's workload draws."""
        return self.stream if self.stream is not None else self.name

    @property
    def arrival_label(self) -> str:
        """Short human-readable name of the arrival process."""
        if self.arrival is None:
            return "azure-uniform (paper)"
        return type(self.arrival).__name__

    def with_overrides(self, **kwargs) -> "Scenario":
        """Return a copy with the given fields replaced (e.g. a new horizon)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Workload construction
    # ------------------------------------------------------------------
    def build_applications(self) -> list[Workflow]:
        """Fresh workflow instances for this scenario's application mix."""
        if self.applications is None:
            return build_paper_applications()
        return [build_application(name) for name in self.applications]

    def build_generator(
        self,
        profile_store: ProfileStore,
        seed: int,
        *,
        burstiness: float = 0.0,
    ) -> WorkloadGenerator:
        """Build the workload generator with the scenario's derived RNG stream."""
        return WorkloadGenerator(
            applications=self.build_applications(),
            setting=self.setting_obj,
            profile_store=profile_store,
            rng=derive_rng(seed, "workload", self.stream_label),
            burstiness=burstiness,
            app_weights=self.app_weights,
            arrival=self.arrival,
        )

    def build_requests(
        self,
        num_requests: int,
        seed: int,
        profile_store: ProfileStore,
        *,
        burstiness: float = 0.0,
    ) -> list[Request]:
        """Generate the deterministic request stream for ``(self, seed)``."""
        generator = self.build_generator(profile_store, seed, burstiness=burstiness)
        return generator.generate(num_requests)

    def build_stream(
        self,
        num_requests: int,
        seed: int,
        profile_store: ProfileStore,
        *,
        burstiness: float = 0.0,
    ) -> RequestStream:
        """Lazy counterpart of :meth:`build_requests`.

        Returns a :class:`~repro.workloads.stream.RequestStream` whose
        iteration yields requests byte-identical to the materialized list
        for the same ``(self, seed)`` — the simulator pulls them on demand
        instead of holding them all.
        """
        generator = self.build_generator(profile_store, seed, burstiness=burstiness)
        return generator.stream(num_requests)

    def mean_rate_per_s(self) -> float:
        """Long-run mean arrival rate of this scenario's process."""
        if self.arrival is not None:
            return self.arrival.mean_rate_per_s
        return self.setting_obj.intervals.mean_rate_per_s


class ScenarioRegistry:
    """Name -> :class:`Scenario` mapping with informative failure modes."""

    def __init__(self) -> None:
        self._scenarios: dict[str, Scenario] = {}

    def register(self, scenario: Scenario, *, replace: bool = False) -> Scenario:
        """Add ``scenario`` under its name; refuses silent redefinition."""
        if scenario.name in self._scenarios and not replace:
            raise ValueError(
                f"scenario {scenario.name!r} is already registered; "
                f"pass replace=True to override"
            )
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Look up a scenario, listing the known names on failure."""
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        """All registered names, in registration order."""
        return list(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios


#: The process-wide registry the CLI, engine and benchmarks consult.
SCENARIOS = ScenarioRegistry()


def register_scenario(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Register ``scenario`` in the global :data:`SCENARIOS` registry."""
    return SCENARIOS.register(scenario, replace=replace)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario in the global :data:`SCENARIOS` registry."""
    return SCENARIOS.get(name)


def scenario_names() -> list[str]:
    """Names in the global :data:`SCENARIOS` registry."""
    return SCENARIOS.names()


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
def _register_builtin_scenarios() -> None:
    # The three paper evaluations.  ``stream`` pins the RNG label to the
    # setting name so these reproduce the historical request streams (and
    # hence RunSummary output) byte-for-byte.
    for setting in ("strict-light", "moderate-normal", "relaxed-heavy"):
        register_scenario(
            Scenario(
                name=f"paper-{setting}",
                description=f"Paper Section 4.1: four DNN apps, {setting} Azure arrivals",
                setting=setting,
                stream=setting,
            )
        )

    # Memoryless traffic at the paper's normal intensity: same mean rate,
    # exponential (unbounded) inter-arrival tails.
    register_scenario(
        Scenario(
            name="poisson-normal",
            description="Poisson arrivals at the moderate-normal mean rate",
            setting="moderate-normal",
            arrival=PoissonProcess(rate_per_s=NORMAL_INTERVALS.mean_rate_per_s),
        )
    )

    # MMPP-style on/off source: flash crowds at heavy intensity separated by
    # light-rate lulls, under the loose relaxed SLO.
    register_scenario(
        Scenario(
            name="bursty-onoff-heavy",
            description="MMPP on/off bursts: heavy-rate flash crowds over a light base",
            setting="relaxed-heavy",
            arrival=OnOffBurstProcess(
                burst_rate_per_s=HEAVY_INTERVALS.mean_rate_per_s,
                base_rate_per_s=LIGHT_INTERVALS.mean_rate_per_s,
                mean_burst_ms=400.0,
                mean_gap_ms=600.0,
            ),
        )
    )

    # Diurnal drift compressed to simulation scale: one "day" of sinusoidal
    # rate variation every 4 simulated seconds.
    register_scenario(
        Scenario(
            name="diurnal-normal",
            description="Sinusoidal diurnal rate drift around the normal intensity",
            setting="moderate-normal",
            arrival=DiurnalProcess(
                base_rate_per_s=NORMAL_INTERVALS.mean_rate_per_s,
                amplitude=0.6,
                period_ms=4_000.0,
            ),
        )
    )

    # Replay of the bundled miniature Azure-style trace (bursts and lulls
    # recorded as literal intervals), looped to any workload length.
    register_scenario(
        Scenario(
            name="trace-replay-azure",
            description="Replay of the bundled Azure-style interval trace (looped)",
            setting="moderate-normal",
            arrival=TraceReplayProcess.from_csv(SAMPLE_TRACE_PATH, loop=True),
        )
    )

    # A non-paper application mix: the split/join diamond and the one-stage
    # app next to the paper's shortest and longest pipelines, skewed toward
    # the non-paper DAGs.
    register_scenario(
        Scenario(
            name="mixed-dags-normal",
            description="Non-paper app mix: split/join diamond + 1-stage + paper pipelines",
            setting="moderate-normal",
            applications=(
                "vision_diamond",
                "single_stage_classification",
                "image_classification",
                "expanded_image_classification",
            ),
            app_weights=(3.0, 3.0, 1.0, 1.0),
        )
    )

    # A horizon-bounded overload probe: Poisson at twice the heavy rate with
    # a hard 1.5-second simulated-time stop (exercises the truncated flag).
    register_scenario(
        Scenario(
            name="overload-spike",
            description="2x-heavy Poisson spike truncated at a 1.5 s simulated horizon",
            setting="relaxed-heavy",
            arrival=PoissonProcess(rate_per_s=2.0 * HEAVY_INTERVALS.mean_rate_per_s),
            horizon_ms=1_500.0,
        )
    )

    # Dynamic-cluster (churn) scenarios: the paper's workloads on a cluster
    # whose capacity changes mid-run.  The ``harvest-*`` pair models
    # harvested/spot VMs (capacity mostly resizes, occasionally vanishes);
    # the ``churn-*`` trio stresses membership churn and the two eviction
    # policies.  Churn streams are seed-derived, so every policy in a row
    # sees the identical join/leave/resize timeline.
    register_scenario(
        Scenario(
            name="harvest-mild-normal",
            description="Harvested-VM capacity drift (mostly resizes) under moderate-normal",
            setting="moderate-normal",
            churn="harvest-mild",
        )
    )
    register_scenario(
        Scenario(
            name="harvest-severe-normal",
            description="Aggressive harvest churn: deep resizes plus node losses",
            setting="moderate-normal",
            churn="harvest-severe",
        )
    )
    register_scenario(
        Scenario(
            name="churn-mixed-normal",
            description="Balanced join/leave/resize churn under moderate-normal",
            setting="moderate-normal",
            churn="churn-mixed",
        )
    )
    register_scenario(
        Scenario(
            name="churn-eviction-storm",
            description="Leave-heavy churn; evicted in-flight work is requeued",
            setting="moderate-normal",
            churn="eviction-storm",
        )
    )
    register_scenario(
        Scenario(
            name="churn-eviction-fail",
            description="Leave-heavy churn; evicted in-flight requests fail terminally",
            setting="moderate-normal",
            churn="eviction-fail",
        )
    )


_register_builtin_scenarios()
