"""Application workflows (DAGs), arrival processes and workload scenarios.

This subpackage models the demand side of the evaluation: the DNN
applications (the paper's four plus an open registry of extra DAGs), a
pluggable hierarchy of arrival processes (the paper's Azure-interval
sampling, Poisson, MMPP-style on/off bursts, diurnal drift, CSV trace
replay), the three paper workload settings (strict-light, moderate-normal,
relaxed-heavy) and a registry of named scenarios bundling all of the above.

Examples
--------
>>> from repro.workloads import get_scenario, scenario_names
>>> "paper-moderate-normal" in scenario_names()
True
>>> get_scenario("poisson-normal").arrival_label
'PoissonProcess'
"""

from repro.workloads.applications import (
    APPLICATION_BUILDERS,
    PAPER_APPLICATIONS,
    background_elimination,
    build_application,
    build_paper_applications,
    depth_recognition,
    expanded_image_classification,
    image_classification,
    register_application,
    single_stage_classification,
    vision_diamond,
)
from repro.workloads.arrival import (
    ArrivalProcess,
    AzureIntervalProcess,
    DiurnalProcess,
    OnOffBurstProcess,
    PoissonProcess,
    TraceExhaustedError,
    TraceFileReplayProcess,
    TraceReplayProcess,
    iter_trace_intervals,
)
from repro.workloads.dag import Stage, Workflow
from repro.workloads.generator import (
    MODERATE_NORMAL,
    RELAXED_HEAVY,
    STRICT_LIGHT,
    WORKLOAD_SETTINGS,
    WorkloadGenerator,
    WorkloadSetting,
)
from repro.workloads.request import Job, Request
from repro.workloads.stream import (
    WORKLOAD_MODES,
    CountRequestStream,
    DurationRequestStream,
    RequestStream,
)
from repro.workloads.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioRegistry,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.workloads.traces import ArrivalIntervalRange, generate_arrival_times, generate_intervals

__all__ = [
    "Stage",
    "Workflow",
    "image_classification",
    "depth_recognition",
    "background_elimination",
    "expanded_image_classification",
    "vision_diamond",
    "single_stage_classification",
    "build_paper_applications",
    "build_application",
    "register_application",
    "PAPER_APPLICATIONS",
    "APPLICATION_BUILDERS",
    "ArrivalProcess",
    "AzureIntervalProcess",
    "PoissonProcess",
    "OnOffBurstProcess",
    "DiurnalProcess",
    "TraceReplayProcess",
    "TraceFileReplayProcess",
    "TraceExhaustedError",
    "iter_trace_intervals",
    "WORKLOAD_MODES",
    "RequestStream",
    "CountRequestStream",
    "DurationRequestStream",
    "WorkloadSetting",
    "WorkloadGenerator",
    "STRICT_LIGHT",
    "MODERATE_NORMAL",
    "RELAXED_HEAVY",
    "WORKLOAD_SETTINGS",
    "Scenario",
    "ScenarioRegistry",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "Request",
    "Job",
    "ArrivalIntervalRange",
    "generate_intervals",
    "generate_arrival_times",
]
