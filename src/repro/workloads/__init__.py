"""Application workflows (DAGs) and workload generation.

This subpackage models the demand side of the evaluation: the four DNN
applications of Section 4.1 and the arrival-interval generator derived from
the Azure traces (Figure 5), under the three workload settings
(strict-light, moderate-normal, relaxed-heavy).
"""

from repro.workloads.applications import (
    PAPER_APPLICATIONS,
    background_elimination,
    build_paper_applications,
    depth_recognition,
    expanded_image_classification,
    image_classification,
)
from repro.workloads.dag import Stage, Workflow
from repro.workloads.generator import (
    MODERATE_NORMAL,
    RELAXED_HEAVY,
    STRICT_LIGHT,
    WORKLOAD_SETTINGS,
    WorkloadGenerator,
    WorkloadSetting,
)
from repro.workloads.request import Job, Request
from repro.workloads.traces import ArrivalIntervalRange, generate_arrival_times, generate_intervals

__all__ = [
    "Stage",
    "Workflow",
    "image_classification",
    "depth_recognition",
    "background_elimination",
    "expanded_image_classification",
    "build_paper_applications",
    "PAPER_APPLICATIONS",
    "WorkloadSetting",
    "WorkloadGenerator",
    "STRICT_LIGHT",
    "MODERATE_NORMAL",
    "RELAXED_HEAVY",
    "WORKLOAD_SETTINGS",
    "Request",
    "Job",
    "ArrivalIntervalRange",
    "generate_intervals",
    "generate_arrival_times",
]
