"""Workload settings and request-stream generation.

Section 4.1 of the paper defines three evaluation situations that pair an
SLO tightness with an arrival intensity:

========================  ==========  =======================
setting                   SLO factor  arrival interval (ms)
========================  ==========  =======================
strict-light              0.8 x L     [40, 67.2]
moderate-normal           1.0 x L     [20, 33.6]
relaxed-heavy             1.2 x L     [10, 16.8]
========================  ==========  =======================

where ``L`` is the end-to-end latency of the application under the minimum
configuration.  "In each workload, one of the four DNN applications is
randomly picked to get invoked in each time interval."

The *timing* of arrivals is pluggable: pass any
:class:`~repro.workloads.arrival.ArrivalProcess` as ``arrival`` to replace
the paper's uniform Azure-interval sampling with Poisson, bursty on/off,
diurnal or trace-replay demand (leaving it ``None`` keeps the paper's
process, byte-identical to the historical output).

Examples
--------
SLO derivation is independent of profiling, so it doctests cheaply:

>>> STRICT_LIGHT.slo_ms(100.0)
80.0
>>> WORKLOAD_SETTINGS["relaxed-heavy"].intervals.mean_ms
13.4
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.profiles.profiler import ProfileStore
from repro.utils.validation import ensure_positive
from repro.workloads.arrival import ArrivalProcess, AzureIntervalProcess
from repro.workloads.dag import Workflow
from repro.workloads.request import Request
from repro.workloads.stream import CountRequestStream, DurationRequestStream
from repro.workloads.traces import (
    HEAVY_INTERVALS,
    LIGHT_INTERVALS,
    NORMAL_INTERVALS,
    ArrivalIntervalRange,
)

__all__ = [
    "WorkloadSetting",
    "WorkloadGenerator",
    "STRICT_LIGHT",
    "MODERATE_NORMAL",
    "RELAXED_HEAVY",
    "WORKLOAD_SETTINGS",
]


@dataclass(frozen=True)
class WorkloadSetting:
    """One evaluation situation: an SLO tightness plus an arrival intensity."""

    name: str
    slo_factor: float
    intervals: ArrivalIntervalRange

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("setting name must be non-empty")
        ensure_positive(self.slo_factor, "slo_factor")

    def slo_ms(self, base_latency_ms: float) -> float:
        """SLO budget for an application whose minimum-config latency is given."""
        ensure_positive(base_latency_ms, "base_latency_ms")
        return self.slo_factor * base_latency_ms


STRICT_LIGHT = WorkloadSetting("strict-light", slo_factor=0.8, intervals=LIGHT_INTERVALS)
MODERATE_NORMAL = WorkloadSetting("moderate-normal", slo_factor=1.0, intervals=NORMAL_INTERVALS)
RELAXED_HEAVY = WorkloadSetting("relaxed-heavy", slo_factor=1.2, intervals=HEAVY_INTERVALS)

#: All paper settings keyed by name.
WORKLOAD_SETTINGS: dict[str, WorkloadSetting] = {
    s.name: s for s in (STRICT_LIGHT, MODERATE_NORMAL, RELAXED_HEAVY)
}


@dataclass
class WorkloadGenerator:
    """Generates a stream of :class:`Request` objects for one setting.

    Parameters
    ----------
    applications:
        The application workflows to sample from (uniformly at random per
        arrival, as in the paper).
    setting:
        The workload setting (SLO factor + arrival intervals).
    profile_store:
        Used to compute each application's minimum-configuration latency
        ``L`` from which its SLO is derived.
    rng:
        Random generator for arrival intervals and application choice.
    burstiness:
        Passed through to the default interval generator (0.0 = the paper's
        uniform sampling).  Ignored when ``arrival`` is given.
    app_weights:
        Optional non-uniform application mix (defaults to uniform).
    arrival:
        Optional :class:`~repro.workloads.arrival.ArrivalProcess` replacing
        the paper's uniform Azure-interval sampling.  ``None`` (default)
        uses :class:`~repro.workloads.arrival.AzureIntervalProcess` over the
        setting's interval range — byte-identical to the pre-scenario code.
    """

    applications: Sequence[Workflow]
    setting: WorkloadSetting
    profile_store: ProfileStore
    rng: np.random.Generator
    burstiness: float = 0.0
    app_weights: Sequence[float] | None = None
    workflow_factory: Callable[[Workflow], Workflow] | None = None
    arrival: ArrivalProcess | None = None
    _base_latency_cache: dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if len(self.applications) == 0:
            raise ValueError("at least one application is required")
        if self.app_weights is not None:
            if len(self.app_weights) != len(self.applications):
                raise ValueError(
                    "app_weights must have one weight per application "
                    f"({len(self.app_weights)} != {len(self.applications)})"
                )
            if any(w < 0 for w in self.app_weights):
                raise ValueError("app_weights must be non-negative")
            if sum(self.app_weights) <= 0:
                raise ValueError("app_weights must not all be zero")

    # ------------------------------------------------------------------
    # SLO derivation
    # ------------------------------------------------------------------
    def base_latency_ms(self, workflow: Workflow) -> float:
        """Minimum-configuration end-to-end latency ``L`` of ``workflow``."""
        if workflow.name not in self._base_latency_cache:
            self._base_latency_cache[workflow.name] = (
                self.profile_store.minimum_config_latency_ms(workflow.function_names())
            )
        return self._base_latency_cache[workflow.name]

    def slo_ms(self, workflow: Workflow) -> float:
        """SLO budget assigned to requests of ``workflow`` under this setting."""
        return self.setting.slo_ms(self.base_latency_ms(workflow))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @property
    def arrival_process(self) -> ArrivalProcess:
        """The effective arrival process (paper-default when none was given)."""
        if self.arrival is not None:
            return self.arrival
        return AzureIntervalProcess(self.setting.intervals, burstiness=self.burstiness)

    def stream(self, num_requests: int, *, start_ms: float = 0.0) -> CountRequestStream:
        """Lazy stream of ``num_requests`` requests.

        The stream draws its randomness at construction with exactly
        :meth:`generate`'s bulk RNG calls, so iterating it yields requests
        **byte-identical** to the materialized list (same ids, arrivals,
        application picks and SLOs) while holding only ~16 bytes per
        request (two compact numpy arrays) instead of the full object
        graphs.  ``Request`` objects are built one at a time as the
        simulator pulls them.
        """
        return CountRequestStream(self, num_requests, start_ms=start_ms)

    def stream_for_duration(
        self, duration_ms: float, *, start_ms: float = 0.0
    ) -> DurationRequestStream:
        """Lazy stream of every request arriving within ``duration_ms``.

        Exactness guarantee: the stream yields *every* arrival in
        ``(start_ms, start_ms + duration_ms]`` and nothing beyond — it keeps
        drawing until the arrival clock actually passes the bound, so even
        a bursty process whose realised short-term rate far exceeds its
        long-run mean is covered completely.  Memory is O(1): intervals and
        application picks are drawn per request.  A non-looping trace that
        runs out before the window is covered raises
        :class:`~repro.workloads.arrival.TraceExhaustedError` (mid-stream,
        at the exhausted pull).
        """
        return DurationRequestStream(self, duration_ms, start_ms=start_ms)

    def generate(self, num_requests: int, *, start_ms: float = 0.0) -> list[Request]:
        """Generate ``num_requests`` requests with increasing arrival times."""
        return self.stream(num_requests, start_ms=start_ms).materialize()

    def generate_for_duration(self, duration_ms: float, *, start_ms: float = 0.0) -> list[Request]:
        """Generate every request arriving within ``duration_ms``.

        Materializes :meth:`stream_for_duration`, inheriting its exactness
        guarantee: generation continues until the arrival clock actually
        exceeds ``start_ms + duration_ms``, so bursty processes
        (:class:`~repro.workloads.arrival.OnOffBurstProcess`,
        :class:`~repro.workloads.arrival.DiurnalProcess`) are never silently
        truncated the way the historical mean-rate estimate could be.  A
        non-looping trace that runs out before the window is covered raises
        :class:`~repro.workloads.arrival.TraceExhaustedError`.
        """
        return self.stream_for_duration(duration_ms, start_ms=start_ms).materialize()
