"""Workload settings and request-stream generation.

Section 4.1 of the paper defines three evaluation situations that pair an
SLO tightness with an arrival intensity:

========================  ==========  =======================
setting                   SLO factor  arrival interval (ms)
========================  ==========  =======================
strict-light              0.8 x L     [40, 67.2]
moderate-normal           1.0 x L     [20, 33.6]
relaxed-heavy             1.2 x L     [10, 16.8]
========================  ==========  =======================

where ``L`` is the end-to-end latency of the application under the minimum
configuration.  "In each workload, one of the four DNN applications is
randomly picked to get invoked in each time interval."

The *timing* of arrivals is pluggable: pass any
:class:`~repro.workloads.arrival.ArrivalProcess` as ``arrival`` to replace
the paper's uniform Azure-interval sampling with Poisson, bursty on/off,
diurnal or trace-replay demand (leaving it ``None`` keeps the paper's
process, byte-identical to the historical output).

Examples
--------
SLO derivation is independent of profiling, so it doctests cheaply:

>>> STRICT_LIGHT.slo_ms(100.0)
80.0
>>> WORKLOAD_SETTINGS["relaxed-heavy"].intervals.mean_ms
13.4
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.profiles.profiler import ProfileStore
from repro.utils.validation import ensure_positive, ensure_positive_int
from repro.workloads.arrival import ArrivalProcess, AzureIntervalProcess
from repro.workloads.dag import Workflow
from repro.workloads.request import Request
from repro.workloads.traces import (
    HEAVY_INTERVALS,
    LIGHT_INTERVALS,
    NORMAL_INTERVALS,
    ArrivalIntervalRange,
)

__all__ = [
    "WorkloadSetting",
    "WorkloadGenerator",
    "STRICT_LIGHT",
    "MODERATE_NORMAL",
    "RELAXED_HEAVY",
    "WORKLOAD_SETTINGS",
]


@dataclass(frozen=True)
class WorkloadSetting:
    """One evaluation situation: an SLO tightness plus an arrival intensity."""

    name: str
    slo_factor: float
    intervals: ArrivalIntervalRange

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("setting name must be non-empty")
        ensure_positive(self.slo_factor, "slo_factor")

    def slo_ms(self, base_latency_ms: float) -> float:
        """SLO budget for an application whose minimum-config latency is given."""
        ensure_positive(base_latency_ms, "base_latency_ms")
        return self.slo_factor * base_latency_ms


STRICT_LIGHT = WorkloadSetting("strict-light", slo_factor=0.8, intervals=LIGHT_INTERVALS)
MODERATE_NORMAL = WorkloadSetting("moderate-normal", slo_factor=1.0, intervals=NORMAL_INTERVALS)
RELAXED_HEAVY = WorkloadSetting("relaxed-heavy", slo_factor=1.2, intervals=HEAVY_INTERVALS)

#: All paper settings keyed by name.
WORKLOAD_SETTINGS: dict[str, WorkloadSetting] = {
    s.name: s for s in (STRICT_LIGHT, MODERATE_NORMAL, RELAXED_HEAVY)
}


@dataclass
class WorkloadGenerator:
    """Generates a stream of :class:`Request` objects for one setting.

    Parameters
    ----------
    applications:
        The application workflows to sample from (uniformly at random per
        arrival, as in the paper).
    setting:
        The workload setting (SLO factor + arrival intervals).
    profile_store:
        Used to compute each application's minimum-configuration latency
        ``L`` from which its SLO is derived.
    rng:
        Random generator for arrival intervals and application choice.
    burstiness:
        Passed through to the default interval generator (0.0 = the paper's
        uniform sampling).  Ignored when ``arrival`` is given.
    app_weights:
        Optional non-uniform application mix (defaults to uniform).
    arrival:
        Optional :class:`~repro.workloads.arrival.ArrivalProcess` replacing
        the paper's uniform Azure-interval sampling.  ``None`` (default)
        uses :class:`~repro.workloads.arrival.AzureIntervalProcess` over the
        setting's interval range — byte-identical to the pre-scenario code.
    """

    applications: Sequence[Workflow]
    setting: WorkloadSetting
    profile_store: ProfileStore
    rng: np.random.Generator
    burstiness: float = 0.0
    app_weights: Sequence[float] | None = None
    workflow_factory: Callable[[Workflow], Workflow] | None = None
    arrival: ArrivalProcess | None = None
    _base_latency_cache: dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if len(self.applications) == 0:
            raise ValueError("at least one application is required")
        if self.app_weights is not None:
            if len(self.app_weights) != len(self.applications):
                raise ValueError(
                    "app_weights must have one weight per application "
                    f"({len(self.app_weights)} != {len(self.applications)})"
                )
            if any(w < 0 for w in self.app_weights):
                raise ValueError("app_weights must be non-negative")
            if sum(self.app_weights) <= 0:
                raise ValueError("app_weights must not all be zero")

    # ------------------------------------------------------------------
    # SLO derivation
    # ------------------------------------------------------------------
    def base_latency_ms(self, workflow: Workflow) -> float:
        """Minimum-configuration end-to-end latency ``L`` of ``workflow``."""
        if workflow.name not in self._base_latency_cache:
            self._base_latency_cache[workflow.name] = (
                self.profile_store.minimum_config_latency_ms(workflow.function_names())
            )
        return self._base_latency_cache[workflow.name]

    def slo_ms(self, workflow: Workflow) -> float:
        """SLO budget assigned to requests of ``workflow`` under this setting."""
        return self.setting.slo_ms(self.base_latency_ms(workflow))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @property
    def arrival_process(self) -> ArrivalProcess:
        """The effective arrival process (paper-default when none was given)."""
        if self.arrival is not None:
            return self.arrival
        return AzureIntervalProcess(self.setting.intervals, burstiness=self.burstiness)

    def generate(self, num_requests: int, *, start_ms: float = 0.0) -> list[Request]:
        """Generate ``num_requests`` requests with increasing arrival times."""
        ensure_positive_int(num_requests, "num_requests")
        arrivals = self.arrival_process.arrival_times(num_requests, self.rng, start_ms=start_ms)

        if self.app_weights is None:
            probs = None
        else:
            weights = np.asarray(self.app_weights, dtype=float)
            probs = weights / weights.sum()
        app_indices = self.rng.choice(len(self.applications), size=num_requests, p=probs)

        requests: list[Request] = []
        for req_id, (arrival, app_idx) in enumerate(zip(arrivals, app_indices)):
            workflow = self.applications[int(app_idx)]
            if self.workflow_factory is not None:
                workflow = self.workflow_factory(workflow)
            requests.append(
                Request(
                    request_id=req_id,
                    workflow=workflow,
                    arrival_ms=float(arrival),
                    slo_ms=self.slo_ms(workflow),
                )
            )
        return requests

    def generate_for_duration(self, duration_ms: float, *, start_ms: float = 0.0) -> list[Request]:
        """Generate requests until the arrival clock exceeds ``duration_ms``.

        The request count is estimated from the arrival process's long-run
        mean rate with a 30% safety margin; a non-looping trace shorter than
        the estimate raises
        :class:`~repro.workloads.arrival.TraceExhaustedError`.
        """
        ensure_positive(duration_ms, "duration_ms")
        mean_interval = self.arrival_process.mean_interval_ms
        estimate = max(1, int(duration_ms / mean_interval * 1.3) + 8)
        requests = self.generate(estimate, start_ms=start_ms)
        return [r for r in requests if r.arrival_ms <= start_ms + duration_ms]
