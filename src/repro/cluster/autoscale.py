"""Adaptive feedback prewarm: autoscaled resident containers.

The EWMA prewarmer (:mod:`repro.cluster.prewarm`) sizes resident containers
from a *fixed* demand model and never closes the loop on what the cluster is
actually experiencing: on diurnal or on/off-burst traffic it either wastes
cold starts when load ramps or keeps capacity it no longer needs.  This
module adds a feedback layer in the spirit of the DQN scaling-agent +
global-optimizer pattern from the serverless-autoscaling literature, but
fully deterministic: per-function controllers observe live signals (queue
depth, recent arrival rate, resident count), decide an integer capacity
delta, and actuate through the exact prewarm mechanism the static path uses.

Architecture
------------
The :class:`Autoscaler` is a pure *observer*: it attaches to a built
:class:`~repro.cluster.simulator.Simulation` through the ``on_event`` hook
API — the simulator core is untouched — and takes over prewarm authority by
disabling the static :class:`~repro.cluster.prewarm.PrewarmManager`
(``prewarmer.enabled = False``; observation continues, plans stop).  Every
``decide_interval_ms`` of *virtual* time it snapshots an
:class:`AutoscaleState` per observed function, asks its
:class:`AutoscalePolicy` for an :class:`AutoscaleAction`, and applies the
clamped delta:

* scale **up**: place a ``STARTING`` container on the invoker chosen by
  :meth:`~repro.cluster.prewarm.PrewarmManager._pick_invoker` (which skips
  churn tombstones) and push a
  :class:`~repro.cluster.events.PrewarmCompleteEvent` through the
  controller's ``event_sink`` — exactly the plan mechanism of the static
  prewarmer, so the container participates in keep-alive, eviction and
  metrics identically;
* scale **down**: retire warm *idle* containers (most-loaded invokers
  first; busy and starting containers are never touched).

Determinism contract
--------------------
Controllers read virtual time from events only — no wall clock, no RNG.
Event hooks fire after every handled event at identical points in both loop
modes, and ``event_sink`` is the shared event queue in both, so actuations
receive identical ``(time_ms, sort_priority, counter)`` keys everywhere:
adaptive runs are byte-identical across loop/index/metrics/workload modes
and worker processes, like every other run (pinned by
``tests/integration/test_autoscale_parity.py``).

>>> spec = get_autoscale_spec("threshold-default")
>>> spec.kind
'threshold'
>>> spec.build_controller().decide(AutoscaleState(
...     now_ms=10.0, function_name="f", queue_depth=3,
...     arrival_rate_per_s=40.0, residents=1, active_invokers=8)).delta
2
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulator import Simulation

__all__ = [
    "AutoscaleAction",
    "AutoscaleActuation",
    "AutoscalePolicy",
    "AutoscaleSpec",
    "AutoscaleState",
    "Autoscaler",
    "AUTOSCALE_KINDS",
    "AUTOSCALE_SPECS",
    "LearnedAgent",
    "PIDController",
    "ThresholdController",
    "autoscale_spec_names",
    "get_autoscale_spec",
    "register_autoscale_spec",
    "resolve_autoscale",
]

#: Controller families a spec can name.
AUTOSCALE_KINDS = ("threshold", "pid", "learned")

#: Cap on the replay buffer of :class:`LearnedAgent` (transitions kept for
#: a future offline-RL fit; old entries are dropped FIFO).
LEARNED_BUFFER_CAP = 4096


# ----------------------------------------------------------------------
# The (state, action) interface
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AutoscaleState:
    """One controller observation: everything a decision may read.

    All signals derive from the event stream (virtual time), never from the
    wall clock, so decisions are a pure function of the run's history.
    """

    now_ms: float
    function_name: str
    #: Jobs of this function waiting across all AFW queues right now.
    queue_depth: int
    #: Arrivals of this function over the last decision window, as a rate.
    arrival_rate_per_s: float
    #: Cluster-wide resident containers (warm + busy + starting) — starting
    #: containers count so back-to-back decisions never double-prewarm.
    residents: int
    #: Non-tombstoned invokers at decision time.
    active_invokers: int


@dataclass(frozen=True)
class AutoscaleAction:
    """A controller's verdict: change the resident count by ``delta``."""

    delta: int
    reason: str = ""


@dataclass(frozen=True)
class AutoscaleActuation:
    """One applied decision, recorded for the invariant harness.

    ``requested`` is the controller's raw delta; ``applied`` is what the
    clamps and the cluster allowed (signed like ``requested``); ``targets``
    are the invoker ids that received a prewarm container (scale-up) or had
    one retired (scale-down).
    """

    state: AutoscaleState
    requested: int
    applied: int
    targets: tuple[int, ...]


class AutoscalePolicy:
    """Base controller: ``decide(state) -> action`` plus a learning hook.

    Subclasses must be deterministic: same state sequence, same actions.
    ``record_transition`` is called after every decision (applied or not) so
    a learned implementation can fill a replay buffer without changing the
    control flow.
    """

    def decide(self, state: AutoscaleState) -> AutoscaleAction:
        raise NotImplementedError

    def record_transition(self, state: AutoscaleState, action: AutoscaleAction) -> None:
        """Optional learning hook; the default is a no-op."""


class ThresholdController(AutoscalePolicy):
    """Hysteresis band on queue depth, rate-gated scale-down.

    Scale up by ``step_up`` when the queue depth reaches ``high_watermark``;
    scale down by ``step_down`` only after ``down_patience`` *consecutive*
    decisions in which the depth sat at ``low_watermark`` or below *and*
    the observed arrival rate was at most ``low_rate_per_s`` (one short
    window with no arrivals is noise, not a trough — without the patience
    element a sparse arrival process makes the controller shed warm
    capacity it pays a cold start to win back moments later).  Strictly
    inside the band the controller always holds — the no-oscillation
    invariant the fuzz harness checks.
    """

    def __init__(
        self,
        *,
        high_watermark: float,
        low_watermark: float,
        step_up: int,
        step_down: int,
        low_rate_per_s: float,
        down_patience: int,
    ) -> None:
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.step_up = step_up
        self.step_down = step_down
        self.low_rate_per_s = low_rate_per_s
        self.down_patience = down_patience
        #: Consecutive down-eligible decisions seen so far (harness-visible).
        self.idle_rounds = 0

    def decide(self, state: AutoscaleState) -> AutoscaleAction:
        if state.queue_depth >= self.high_watermark:
            self.idle_rounds = 0
            return AutoscaleAction(delta=self.step_up, reason="queue above high watermark")
        if (
            state.queue_depth <= self.low_watermark
            and state.arrival_rate_per_s <= self.low_rate_per_s
        ):
            self.idle_rounds += 1
            if self.idle_rounds >= self.down_patience:
                self.idle_rounds = 0
                return AutoscaleAction(delta=-self.step_down, reason="sustained idle")
            return AutoscaleAction(delta=0, reason="idle, awaiting patience")
        self.idle_rounds = 0
        return AutoscaleAction(delta=0, reason="inside hysteresis band")


class PIDController(AutoscalePolicy):
    """Discrete PID on EWMA-smoothed queue-depth error.

    The error is ``smoothed_depth - setpoint``; the integral term
    accumulates one error sample per decision and is clamped to
    ``[-integral_clamp, +integral_clamp]`` (anti-windup — the bound the
    fuzz harness asserts after every decision); the derivative is the
    first difference of the smoothed error.  The continuous control value
    is rounded to an integer delta and clamped to ``±max_step``.
    """

    def __init__(
        self,
        *,
        kp: float,
        ki: float,
        kd: float,
        setpoint: float,
        ewma_alpha: float,
        integral_clamp: float,
        max_step: int,
    ) -> None:
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.setpoint = setpoint
        self.ewma_alpha = ewma_alpha
        self.integral_clamp = integral_clamp
        self.max_step = max_step
        #: Running EWMA of the raw error; ``None`` until the first sample.
        self.smoothed: float | None = None
        #: Clamped integral term (inspected by the invariant harness).
        self.integral = 0.0
        self._prev_error: float | None = None

    def decide(self, state: AutoscaleState) -> AutoscaleAction:
        raw = float(state.queue_depth) - self.setpoint
        if self.smoothed is None:
            self.smoothed = raw
        else:
            self.smoothed = self.ewma_alpha * raw + (1.0 - self.ewma_alpha) * self.smoothed
        error = self.smoothed
        self.integral += error
        if self.integral > self.integral_clamp:
            self.integral = self.integral_clamp
        elif self.integral < -self.integral_clamp:
            self.integral = -self.integral_clamp
        derivative = 0.0 if self._prev_error is None else error - self._prev_error
        self._prev_error = error
        control = self.kp * error + self.ki * self.integral + self.kd * derivative
        delta = int(round(control))
        if delta > self.max_step:
            delta = self.max_step
        elif delta < -self.max_step:
            delta = -self.max_step
        return AutoscaleAction(delta=delta, reason="pid control value %.3f" % control)


class LearnedAgent(AutoscalePolicy):
    """Pluggable learned-policy stub behind the same (state, action) interface.

    Today it is a deterministic backlog-greedy heuristic (one container per
    queued job above the current residents, shrink when idle) — a stand-in
    with the exact surface a trained agent needs: ``decide`` consumes an
    :class:`AutoscaleState`, and ``record_transition`` fills a bounded
    replay buffer a future offline-RL fit can train from.  No RNG: a
    learned drop-in must either be greedy at inference time or derive any
    exploration stream from the run seed.
    """

    def __init__(self, *, max_step: int) -> None:
        self.max_step = max_step
        #: FIFO replay buffer of (state, action) pairs, capped at
        #: :data:`LEARNED_BUFFER_CAP`.
        self.transitions: list[tuple[AutoscaleState, AutoscaleAction]] = []

    def decide(self, state: AutoscaleState) -> AutoscaleAction:
        gap = state.queue_depth - state.residents
        if gap > 0:
            return AutoscaleAction(delta=min(gap, self.max_step), reason="greedy backlog")
        if state.queue_depth == 0 and state.arrival_rate_per_s == 0.0 and state.residents > 0:
            return AutoscaleAction(delta=-1, reason="greedy idle")
        return AutoscaleAction(delta=0, reason="greedy hold")

    def record_transition(self, state: AutoscaleState, action: AutoscaleAction) -> None:
        if len(self.transitions) >= LEARNED_BUFFER_CAP:
            del self.transitions[0]
        self.transitions.append((state, action))


# ----------------------------------------------------------------------
# Specs and registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AutoscaleSpec:
    """A named, picklable controller recipe.

    Specs are what scenarios and
    :class:`~repro.experiments.runner.ExperimentConfig` carry (and what the
    result store hashes): the live controller state is rebuilt per run, per
    function, from these parameters alone — no RNG, no seed input — so one
    spec reproduces the same decisions in every loop mode, index mode and
    worker process.  Threshold parameters are ignored by ``kind="pid"`` and
    vice versa; ``max_step`` doubles as the learned agent's step bound.
    """

    name: str
    kind: str = "threshold"
    #: Minimum virtual time between decision passes.
    decide_interval_ms: float = 10.0
    #: Clamp band on the per-function resident count the autoscaler steers
    #: toward; actuations never push outside it.
    min_residents: int = 0
    max_residents: int = 8
    # -- threshold family ------------------------------------------------
    high_watermark: float = 3.0
    low_watermark: float = 0.0
    step_up: int = 2
    step_down: int = 1
    #: Scale-down additionally requires the observed arrival rate at or
    #: below this (a drained queue under live traffic keeps capacity).
    low_rate_per_s: float = 0.0
    #: Consecutive down-eligible decisions required before one scale-down.
    down_patience: int = 100
    # -- pid family ------------------------------------------------------
    kp: float = 0.3
    ki: float = 0.02
    kd: float = 0.3
    setpoint: float = 1.5
    ewma_alpha: float = 0.5
    integral_clamp: float = 2.0
    max_step: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("autoscale spec name must be non-empty")
        if self.kind not in AUTOSCALE_KINDS:
            raise ValueError(
                f"unknown autoscale kind {self.kind!r}; expected one of {AUTOSCALE_KINDS}"
            )
        if self.decide_interval_ms <= 0:
            raise ValueError("decide_interval_ms must be > 0")
        if self.min_residents < 0:
            raise ValueError("min_residents must be >= 0")
        if self.max_residents < max(1, self.min_residents):
            raise ValueError("max_residents must be >= 1 and >= min_residents")
        if self.low_watermark >= self.high_watermark:
            raise ValueError("low_watermark must be < high_watermark")
        if self.step_up < 1 or self.step_down < 1:
            raise ValueError("step_up and step_down must be >= 1")
        if self.low_rate_per_s < 0:
            raise ValueError("low_rate_per_s must be >= 0")
        if self.down_patience < 1:
            raise ValueError("down_patience must be >= 1")
        if self.ewma_alpha <= 0 or self.ewma_alpha > 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.integral_clamp < 0:
            raise ValueError("integral_clamp must be >= 0")
        if self.max_step < 1:
            raise ValueError("max_step must be >= 1")
        if self.setpoint < 0:
            raise ValueError("setpoint must be >= 0")

    def build_controller(self) -> AutoscalePolicy:
        """A fresh (per-function) controller instance for one run."""
        if self.kind == "threshold":
            return ThresholdController(
                high_watermark=self.high_watermark,
                low_watermark=self.low_watermark,
                step_up=self.step_up,
                step_down=self.step_down,
                low_rate_per_s=self.low_rate_per_s,
                down_patience=self.down_patience,
            )
        if self.kind == "pid":
            return PIDController(
                kp=self.kp,
                ki=self.ki,
                kd=self.kd,
                setpoint=self.setpoint,
                ewma_alpha=self.ewma_alpha,
                integral_clamp=self.integral_clamp,
                max_step=self.max_step,
            )
        return LearnedAgent(max_step=self.max_step)


AUTOSCALE_SPECS: dict[str, AutoscaleSpec] = {}


def register_autoscale_spec(spec: AutoscaleSpec, *, overwrite: bool = False) -> AutoscaleSpec:
    """Add ``spec`` to the registry under ``spec.name``."""
    if not overwrite and spec.name in AUTOSCALE_SPECS:
        raise ValueError(f"autoscale spec {spec.name!r} is already registered")
    AUTOSCALE_SPECS[spec.name] = spec
    return spec


def get_autoscale_spec(name: str) -> AutoscaleSpec:
    """Look up a registered autoscale spec by name."""
    try:
        return AUTOSCALE_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(AUTOSCALE_SPECS))
        raise KeyError(f"unknown autoscale spec {name!r}; known specs: {known}") from None


def autoscale_spec_names() -> list[str]:
    """Sorted names of every registered autoscale spec."""
    return sorted(AUTOSCALE_SPECS)


def resolve_autoscale(autoscale: "AutoscaleSpec | str | None") -> AutoscaleSpec | None:
    """Normalize any accepted autoscale form into a spec (or ``None``)."""
    if autoscale is None:
        return None
    if isinstance(autoscale, str):
        return get_autoscale_spec(autoscale)
    if isinstance(autoscale, AutoscaleSpec):
        return autoscale
    raise TypeError(
        "autoscale must be None, a spec name, or an AutoscaleSpec; "
        f"got {type(autoscale).__name__}"
    )


# ----------------------------------------------------------------------
# Runtime
# ----------------------------------------------------------------------
@dataclass
class Autoscaler:
    """The runtime: one spec, one run, per-function controllers.

    Build one per simulation and :meth:`attach` it *after* construction and
    *before* ``run()`` — attachment flips the static prewarmer off, so the
    only resident-capacity authority is the feedback loop (plus on-demand
    cold starts, which the controller performs regardless).
    """

    spec: AutoscaleSpec
    #: Every applied decision with a nonzero requested delta, in order
    #: (the invariant harness replays these).
    actuations: list[AutoscaleActuation] = field(default_factory=list, repr=False)
    #: Number of completed decision passes.
    decisions: int = 0

    def __post_init__(self) -> None:
        self._simulation: "Simulation | None" = None
        self._controllers: dict[str, AutoscalePolicy] = {}
        self._arrivals: dict[str, int] = {}
        self._known_functions: set[str] = set()
        self._functions_sorted: list[str] | None = None
        self._cold_ms: dict[str, float] = {}
        self._last_decide_ms = 0.0
        self._next_decide_ms = self.spec.decide_interval_ms

    # -- introspection (tests and the study read these) -----------------
    @property
    def attached(self) -> bool:
        """True once :meth:`attach` has run."""
        return self._simulation is not None

    @property
    def controllers(self) -> dict[str, AutoscalePolicy]:
        """Live per-function controllers (keyed by function name)."""
        return self._controllers

    def applied_up(self) -> int:
        """Total containers launched by scale-up actuations."""
        return sum(a.applied for a in self.actuations if a.applied > 0)

    def applied_down(self) -> int:
        """Total containers retired by scale-down actuations."""
        return -sum(a.applied for a in self.actuations if a.applied < 0)

    # -- wiring ----------------------------------------------------------
    def attach(self, simulation: "Simulation") -> "Autoscaler":
        """Hook into ``simulation`` and take over prewarm authority."""
        if self._simulation is not None:
            raise RuntimeError("an Autoscaler attaches to exactly one simulation")
        # Imported lazily for the same reason as ChurnAction.to_event:
        # scenarios resolve autoscale-spec names at workloads import time,
        # which can land mid-way through ``repro.cluster.__init__``.
        from repro.cluster.events import RequestArrivalEvent

        self._simulation = simulation
        self._arrival_event_type = RequestArrivalEvent
        prewarmer = simulation.controller.prewarmer
        if prewarmer is not None:
            # The EWMA prewarmer keeps observing (its predictions stay
            # available to policies) but stops emitting plans: capacity
            # decisions now flow through the feedback loop only.
            prewarmer.enabled = False
        simulation.on_event(self._on_event)
        return self

    # -- observation -----------------------------------------------------
    def _on_event(self, simulation: "Simulation", event: object) -> None:
        """Per-event hook: count arrivals, run due decision passes.

        Fires after every handled event at identical points in both loop
        modes, so the decision cadence — and therefore every actuation's
        event-queue position — is mode-independent.
        """
        if isinstance(event, self._arrival_event_type):
            arrivals = self._arrivals
            for stage in event.request.workflow.stages():
                fn = stage.function_name
                arrivals[fn] = arrivals.get(fn, 0) + 1
                if fn not in self._known_functions:
                    self._known_functions.add(fn)
                    self._functions_sorted = None
        now_ms = simulation.now_ms
        if now_ms >= self._next_decide_ms and self._known_functions:
            self._decide(simulation, now_ms)

    # -- decision --------------------------------------------------------
    def _decide(self, simulation: "Simulation", now_ms: float) -> None:
        """One decision pass: observe, decide and actuate per function."""
        controller = simulation.controller
        cluster = simulation.cluster
        window_ms = now_ms - self._last_decide_ms
        depths: dict[str, int] = {}
        for queue in controller.queues():
            if queue.jobs:
                fn = queue.function_name
                depths[fn] = depths.get(fn, 0) + len(queue.jobs)
        active_invokers = sum(1 for invoker in cluster if invoker.active)
        if self._functions_sorted is None:
            self._functions_sorted = sorted(self._known_functions)
        for fn in self._functions_sorted:
            arrivals = self._arrivals.get(fn, 0)
            rate_per_s = (arrivals / window_ms) * 1000.0 if window_ms > 0 else 0.0
            state = AutoscaleState(
                now_ms=now_ms,
                function_name=fn,
                queue_depth=depths.get(fn, 0),
                arrival_rate_per_s=rate_per_s,
                residents=cluster.resident_container_count(fn),
                active_invokers=active_invokers,
            )
            policy = self._controllers.get(fn)
            if policy is None:
                policy = self.spec.build_controller()
                self._controllers[fn] = policy
            action = policy.decide(state)
            policy.record_transition(state, action)
            if action.delta != 0:
                applied, targets = self._actuate(simulation, state, action.delta)
                self.actuations.append(
                    AutoscaleActuation(
                        state=state,
                        requested=action.delta,
                        applied=applied,
                        targets=targets,
                    )
                )
        self.decisions += 1
        self._arrivals.clear()
        self._last_decide_ms = now_ms
        self._next_decide_ms = now_ms + self.spec.decide_interval_ms

    # -- actuation -------------------------------------------------------
    def _pick_invoker(self, cluster: object, function_name: str, now_ms: float) -> int | None:
        """Placement for one prewarm container (tombstone-skipping walk).

        Delegates to the static prewarmer's picker so adaptive and static
        placement stay byte-for-byte interchangeable; an instance method so
        the harness's planted-violation self-test can corrupt it.
        """
        from repro.cluster.prewarm import PrewarmManager

        return PrewarmManager._pick_invoker(cluster, function_name, now_ms)

    def _actuate(
        self, simulation: "Simulation", state: AutoscaleState, delta: int
    ) -> tuple[int, tuple[int, ...]]:
        """Apply ``delta`` within the clamp band; returns (applied, targets)."""
        spec = self.spec
        fn = state.function_name
        now_ms = state.now_ms
        cluster = simulation.cluster
        if delta > 0:
            target = min(spec.max_residents, state.residents + delta)
            missing = target - state.residents
            if missing <= 0:
                return 0, ()
            from repro.cluster.container import Container, ContainerState
            from repro.cluster.events import PrewarmCompleteEvent

            cold_ms = self._cold_ms.get(fn)
            if cold_ms is None:
                cold_ms = simulation.profile_store.profile(fn).spec.cold_start_ms
                self._cold_ms[fn] = cold_ms
            event_sink = simulation.controller.event_sink
            launched: list[int] = []
            for _ in range(missing):
                invoker_id = self._pick_invoker(cluster, fn, now_ms)
                if invoker_id is None:
                    break
                container = Container(
                    function_name=fn,
                    invoker_id=invoker_id,
                    state=ContainerState.STARTING,
                    warm_at_ms=now_ms + cold_ms,
                )
                cluster.invoker(invoker_id).add_container(container)
                event_sink(PrewarmCompleteEvent(time_ms=now_ms + cold_ms, container=container))
                launched.append(invoker_id)
            return len(launched), tuple(launched)
        floor = spec.min_residents
        target = max(floor, state.residents + delta)
        surplus = state.residents - target
        if surplus <= 0:
            return 0, ()
        # Retire from the most-loaded invokers first (ties by id) so the
        # spread the up-path builds is unwound symmetrically.  Tombstoned
        # invokers hold no live containers, so they never match.
        candidates = sorted(
            (invoker for invoker in cluster if invoker.container_count(fn)),
            key=lambda invoker: (-invoker.container_count(fn), invoker.invoker_id),
        )
        retired: list[int] = []
        for invoker in candidates:
            if len(retired) >= surplus:
                break
            for container in list(invoker.containers_for(fn)):
                if len(retired) >= surplus:
                    break
                # Only warm *idle* capacity is reclaimable: busy containers
                # carry tasks, starting ones are in-flight prewarms.
                if container.is_warm_idle(now_ms):
                    container.mark_stopped()
                    retired.append(invoker.invoker_id)
        return -len(retired), tuple(retired)


def _register_builtin_specs() -> None:
    # Aggressive backlog-chaser: any queued job triggers a burst of prewarm
    # capacity; capacity is only released when the queue is empty *and* no
    # arrivals were observed in the window.  Prewarming costs nothing in
    # the pricing model while every avoided cold start removes paid
    # cold-start milliseconds from some task, so on ramping workloads this
    # dominates the static EWMA sizing on cost and SLO simultaneously.
    register_autoscale_spec(AutoscaleSpec(name="threshold-default", kind="threshold"))
    # A gentler band for keep-capacity studies: tolerates a small backlog,
    # needs near-idle traffic before shrinking.
    register_autoscale_spec(
        AutoscaleSpec(
            name="threshold-conservative",
            kind="threshold",
            high_watermark=5.0,
            low_watermark=1.0,
            step_up=1,
            step_down=1,
            low_rate_per_s=5.0,
            down_patience=10,
        )
    )
    register_autoscale_spec(AutoscaleSpec(name="pid-default", kind="pid"))
    register_autoscale_spec(AutoscaleSpec(name="learned-stub", kind="learned"))


_register_builtin_specs()
