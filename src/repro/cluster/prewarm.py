"""EWMA-based container prewarming.

Section 4 of the paper: "We use proxy threads to monitor the function call
intervals, predict subsequent invocations, and preemptively warm up
instances. ... We use a lightweight method for prewarming.  It uses
Exponential Weighted Moving Average (EWMA) to predict the invocation
intervals of functions and pre-warms the function instances accordingly.
After pre-warming, ESG uses the same keep-alive policy as OpenWhisk, to keep
the instance alive for 10 minutes."

The manager tracks, per (application, function), the EWMA of observed
inter-arrival intervals and the observed mean service time, derives the
number of concurrently needed instances (Little's law style:
``rate x service_time``), and asks the controller to launch prewarm
containers whenever fewer instances than that are resident.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.cluster import ClusterState
from repro.cluster.container import Container, ContainerState
from repro.profiles.profiler import ProfileStore
from repro.utils.stats import EWMA
from repro.utils.validation import ensure_non_negative, ensure_positive

__all__ = ["PrewarmManager", "PrewarmPlan"]


@dataclass(frozen=True)
class PrewarmPlan:
    """A request to start one container ahead of demand."""

    function_name: str
    invoker_id: int
    ready_at_ms: float


@dataclass
class _FunctionDemand:
    """Per-(app, function) observation state."""

    interval_ewma: EWMA = field(default_factory=lambda: EWMA(alpha=0.3))
    last_arrival_ms: float | None = None
    observed_arrivals: int = 0


@dataclass
class PrewarmManager:
    """Predicts demand per function and emits prewarm plans.

    Parameters
    ----------
    profile_store:
        Used for cold-start and service-time estimates.
    safety_factor:
        Multiplier on the estimated concurrency (headroom for burstiness).
    max_warm_per_function:
        Cap on the number of resident containers the prewarmer will create
        for a single function (cluster-wide).
    enabled:
        When False the manager observes but never emits plans (for
        ablations and tests).
    """

    profile_store: ProfileStore
    safety_factor: float = 1.2
    max_warm_per_function: int = 8
    enabled: bool = True
    _demand: dict[tuple[str, str], _FunctionDemand] = field(default_factory=dict, repr=False)
    #: ``loop_mode="fast"`` memos (``None`` = disabled, the compat anchor):
    #: per-function minimum-config service time, the sorted function list,
    #: and the per-function demand grouping — all pure functions of state
    #: that only changes when a *new* (app, function) key appears.
    _service_ms: dict[str, float] | None = field(default=None, repr=False)
    _functions_sorted: list[str] | None = field(default=None, repr=False)
    _by_function: dict[str, list[_FunctionDemand]] | None = field(default=None, repr=False)
    #: Fast-mode memo of :meth:`desired_warm_instances`: the result is a pure
    #: function of the function's demand entries, which only change on
    #: arrivals — ``observe_arrival`` marks the function dirty and every
    #: other tick reuses the cached count.
    _desired_cache: dict[str, int] = field(default_factory=dict, repr=False)
    _desired_dirty: set[str] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        ensure_positive(self.safety_factor, "safety_factor")
        if self.max_warm_per_function < 1:
            raise ValueError("max_warm_per_function must be >= 1")

    def enable_profile_cache(self) -> None:
        """Turn on the fast-mode memos (idempotent; call before the run)."""
        if self._service_ms is None:
            self._service_ms = {}
            # Sorted so _by_function's key order is a pure function of the
            # demand keys, never of PYTHONHASHSEED (REP004): today's readers
            # sort or set-ify it, but a future direct iteration must not
            # inherit hash order silently.
            self._by_function = {
                fn: [d for (a, f), d in self._demand.items() if f == fn]
                for fn in sorted({f for (_, f) in self._demand})
            }
            self._functions_sorted = None
            self._desired_dirty = set(self._by_function)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe_arrival(self, app_name: str, function_name: str, now_ms: float) -> None:
        """Record one job arrival for (application, function) at ``now_ms``."""
        if self._service_ms is not None:
            # Fast mode: ``now_ms`` comes from the event loop, which already
            # validated it, and the steady-state path (known key, prior
            # arrival) inlines the EWMA fold with the exact same float
            # expression as :meth:`EWMA.update`.
            demand = self._demand.get((app_name, function_name))
            if demand is not None:
                last = demand.last_arrival_ms
                if last is not None:
                    interval = now_ms - last
                    if interval < 0.1:
                        interval = 0.1
                    ewma = demand.interval_ewma
                    value = ewma._value
                    ewma._value = (
                        interval
                        if value is None
                        else ewma.alpha * interval + (1.0 - ewma.alpha) * value
                    )
                    ewma._count += 1
                demand.last_arrival_ms = now_ms
                demand.observed_arrivals += 1
                self._desired_dirty.add(function_name)
                return
        else:
            ensure_non_negative(now_ms, "now_ms")
        key = (app_name, function_name)
        demand = self._demand.get(key)
        if demand is None:
            demand = _FunctionDemand()
            self._demand[key] = demand
            if self._by_function is not None:
                self._by_function.setdefault(function_name, []).append(demand)
                self._functions_sorted = None
        if demand.last_arrival_ms is not None:
            interval = max(0.1, now_ms - demand.last_arrival_ms)
            demand.interval_ewma.update(interval)
        demand.last_arrival_ms = now_ms
        demand.observed_arrivals += 1
        if self._desired_dirty is not None:
            self._desired_dirty.add(function_name)

    def predicted_interval_ms(self, app_name: str, function_name: str) -> float | None:
        """EWMA-predicted inter-arrival interval, or ``None`` if unobserved."""
        demand = self._demand.get((app_name, function_name))
        if demand is None:
            return None
        return demand.interval_ewma.value

    def predicted_next_arrival_ms(self, app_name: str, function_name: str) -> float | None:
        """Predicted absolute time of the next arrival, or ``None``."""
        demand = self._demand.get((app_name, function_name))
        if demand is None or demand.last_arrival_ms is None:
            return None
        interval = demand.interval_ewma.value
        if interval is None:
            return None
        return demand.last_arrival_ms + interval

    # ------------------------------------------------------------------
    # Demand estimation
    # ------------------------------------------------------------------
    def desired_warm_instances(self, function_name: str) -> int:
        """Number of resident containers the function should have cluster-wide.

        Aggregates the predicted arrival rate of the function over all
        applications that invoke it and multiplies by the (minimum
        configuration) service time — the steady-state number of busy
        instances — padded by ``safety_factor``.
        """
        dirty = self._desired_dirty
        if dirty is not None and function_name not in dirty:
            cached = self._desired_cache.get(function_name)
            if cached is not None:
                return cached
        total_rate_per_ms = 0.0
        if self._by_function is not None:
            # Same demands in the same (insertion) order as the dict scan
            # below, so the float fold is identical — just without walking
            # every other function's entries.
            demands = self._by_function.get(function_name, ())
            for demand in demands:
                interval = demand.interval_ewma._value
                if interval is None or demand.observed_arrivals < 2:
                    continue
                total_rate_per_ms += 1.0 / interval
        else:
            for (app, fn), demand in self._demand.items():
                if fn != function_name:
                    continue
                interval = demand.interval_ewma.value
                if interval is None or demand.observed_arrivals < 2:
                    # Too few observations: assume one instance is enough.
                    total_rate_per_ms += 0.0
                    continue
                total_rate_per_ms += 1.0 / interval
        if total_rate_per_ms == 0.0:
            if dirty is not None:
                self._desired_cache[function_name] = 1
                dirty.discard(function_name)
            return 1
        if self._service_ms is not None:
            service_ms = self._service_ms.get(function_name)
            if service_ms is None:
                service_ms = self.profile_store.profile(function_name).latency_ms(
                    self.profile_store.space.minimum
                )
                self._service_ms[function_name] = service_ms
        else:
            service_ms = self.profile_store.profile(function_name).latency_ms(
                self.profile_store.space.minimum
            )
        concurrency = total_rate_per_ms * service_ms * self.safety_factor
        desired = int(min(self.max_warm_per_function, max(1, math.ceil(concurrency))))
        if dirty is not None:
            self._desired_cache[function_name] = desired
            dirty.discard(function_name)
        return desired

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, cluster: ClusterState, now_ms: float) -> list[PrewarmPlan]:
        """Emit prewarm plans for functions short on resident containers.

        A function's resident count includes warm, busy and currently
        starting containers anywhere in the cluster, so repeated calls do
        not double-prewarm.
        """
        if not self.enabled:
            return []
        plans: list[PrewarmPlan] = []
        if self._by_function is not None:
            if self._functions_sorted is None:
                self._functions_sorted = sorted(self._by_function)
            functions = self._functions_sorted
        else:
            functions = sorted({fn for (_, fn) in self._demand})
        for fn in functions:
            desired = self.desired_warm_instances(fn)
            resident = cluster.resident_container_count(fn)
            missing = desired - resident
            if missing <= 0:
                continue
            cold_start_ms = self.profile_store.profile(fn).spec.cold_start_ms
            for _ in range(missing):
                invoker_id = self._pick_invoker(cluster, fn, now_ms)
                if invoker_id is None:
                    break
                plans.append(
                    PrewarmPlan(
                        function_name=fn,
                        invoker_id=invoker_id,
                        ready_at_ms=now_ms + cold_start_ms,
                    )
                )
                # Immediately register the starting container so the next
                # iteration sees it as resident.
                container = Container(
                    function_name=fn,
                    invoker_id=invoker_id,
                    state=ContainerState.STARTING,
                    warm_at_ms=now_ms + cold_start_ms,
                )
                cluster.invoker(invoker_id).add_container(container)
        return plans

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _pick_invoker(cluster: ClusterState, function_name: str, now_ms: float) -> int | None:
        """Choose a node for a new container: fewest containers of the function, then most free vGPUs.

        This linear walk only runs when a prewarm container is actually
        launched (rare); the per-tick shortage check above it is the hot
        path and is served by :meth:`ClusterState.resident_container_count`.
        """
        best_id: int | None = None
        best_key: tuple[int, float] | None = None
        for invoker in cluster:
            if not invoker.active:
                # Departed (churn-evicted) nodes stay in the list as
                # zero-capacity tombstones; never prewarm on them.
                continue
            existing = invoker.container_count(function_name)
            key = (existing, -invoker.available_vgpus)
            if best_key is None or key < best_key:
                best_key = key
                best_id = invoker.invoker_id
        return best_id
