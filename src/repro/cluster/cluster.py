"""Cluster state: the set of invoker nodes managed by the controller.

Matches the testbed of Table 2: 16 nodes, each with 16 vCPUs and one A100
GPU split into up to 7 MIG instances (vGPUs).  Also implements OpenWhisk's
"home invoker" hashing: the default node for a function is determined by a
hash of its (namespace, action) identity, which concentrates invocations of
the same function on the same node and therefore yields more warm starts.

Cluster-wide queries are served from incrementally maintained indexes so
per-event cost stays (near-)constant as the cluster grows:

* a **free-capacity index** buckets invoker ids by their exact
  ``(available_vcpus, available_vgpus)`` pair — at most
  ``(vcpus+1) x (vgpus+1)`` buckets regardless of node count — backing
  :meth:`ClusterState.invokers_that_fit`,
  :meth:`ClusterState.most_available_invoker` and the baselines'
  fragmentation-minimising placement;
* a **per-function warm index** tracks which invokers hold a WARM/BUSY
  container of each function, backing
  :meth:`ClusterState.warm_invokers_for`;
* **counters** replace the ``sum(...)`` sweeps behind
  :meth:`ClusterState.total_available_vcpus` / ``total_available_vgpus``
  and the prewarmer's resident-container counts.

Setting ``ClusterConfig(index_mode="scan")`` switches every query back to
the original linear scans (the pre-index reference path).  Both paths return
byte-identical results — the parity tests and ``benchmarks/
bench_cluster_scale.py`` rely on that.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator, Literal

from repro.cluster.invoker import Invoker
from repro.cluster.container import DEFAULT_KEEP_ALIVE_MS, ContainerState
from repro.profiles.configuration import Configuration
from repro.utils.validation import ensure_positive_int

__all__ = ["ClusterConfig", "ClusterState"]


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the emulated testbed."""

    num_invokers: int = 16
    vcpus_per_invoker: int = 16
    vgpus_per_invoker: int = 7
    keep_alive_ms: float = DEFAULT_KEEP_ALIVE_MS
    #: ``"indexed"`` (default) serves cluster queries from the incremental
    #: indexes and drives container expiry by events; ``"scan"`` restores
    #: the original linear scans (the byte-identical reference path used by
    #: the parity tests and the cluster-scale benchmark).
    index_mode: Literal["indexed", "scan"] = "indexed"

    def __post_init__(self) -> None:
        ensure_positive_int(self.num_invokers, "num_invokers")
        ensure_positive_int(self.vcpus_per_invoker, "vcpus_per_invoker")
        ensure_positive_int(self.vgpus_per_invoker, "vgpus_per_invoker")
        if self.index_mode not in ("indexed", "scan"):
            raise ValueError(f"invalid index_mode {self.index_mode!r}")

    @property
    def total_vcpus(self) -> int:
        """Aggregate vCPU capacity of the cluster."""
        return self.num_invokers * self.vcpus_per_invoker

    @property
    def total_vgpus(self) -> int:
        """Aggregate vGPU capacity of the cluster."""
        return self.num_invokers * self.vgpus_per_invoker


class _CapacityBuckets:
    """Invoker ids bucketed by exact ``(available_vcpus, available_vgpus)``.

    The bucket space is bounded by the per-node capacity — 17 x 8 = 136
    buckets for the paper's nodes — so iterating buckets is O(1) in the
    number of invokers.  Each bucket keeps its member ids in a set plus a
    lazily-pruned min-heap, giving O(log n) membership moves and amortised
    O(log n) min-id lookups (the deterministic tie-break every placement
    rule uses).
    """

    def __init__(self) -> None:
        self._members: dict[tuple[int, int], set[int]] = {}
        self._heaps: dict[tuple[int, int], list[int]] = {}
        #: Stale (discarded-but-still-heaped) entry count per bucket; when it
        #: overtakes the live membership the heap is rebuilt, bounding heap
        #: memory by O(invokers) regardless of how much capacity churn a
        #: long run generates.
        self._stale: dict[tuple[int, int], int] = {}

    def add(self, bucket: tuple[int, int], invoker_id: int) -> None:
        self._members.setdefault(bucket, set()).add(invoker_id)
        heapq.heappush(self._heaps.setdefault(bucket, []), invoker_id)

    def discard(self, bucket: tuple[int, int], invoker_id: int) -> None:
        members = self._members.get(bucket)
        if members is not None and invoker_id in members:
            members.remove(invoker_id)
            stale = self._stale.get(bucket, 0) + 1
            if stale > max(8, len(members)):
                self._heaps[bucket] = sorted(members)
                self._stale[bucket] = 0
            else:
                self._stale[bucket] = stale

    def move(self, old: tuple[int, int], new: tuple[int, int], invoker_id: int) -> None:
        self.discard(old, invoker_id)
        self.add(new, invoker_id)

    def min_id(self, bucket: tuple[int, int]) -> int | None:
        """Smallest member id of the bucket (``None`` when empty)."""
        members = self._members.get(bucket)
        if not members:
            return None
        heap = self._heaps[bucket]
        while heap and heap[0] not in members:
            heapq.heappop(heap)
            self._stale[bucket] = max(0, self._stale.get(bucket, 0) - 1)
        return heap[0] if heap else None

    def iter_nonempty(self) -> Iterator[tuple[tuple[int, int], set[int]]]:
        """Yield every non-empty ``(bucket, member-ids)`` pair."""
        for bucket, members in self._members.items():
            if members:
                yield bucket, members

    def fitting_ids(self, need_vcpus: int, need_vgpus: int) -> list[int]:
        """All invoker ids whose bucket satisfies the requirement."""
        ids: list[int] = []
        for (cpu, gpu), members in self.iter_nonempty():
            if cpu >= need_vcpus and gpu >= need_vgpus:
                ids.extend(members)
        return ids


@dataclass
class ClusterState:
    """The live state of all invokers."""

    config: ClusterConfig = field(default_factory=ClusterConfig)
    invokers: list[Invoker] = field(init=False)
    _indexed: bool = field(init=False, repr=False)
    _capacity: _CapacityBuckets = field(init=False, repr=False)
    _bucket_of: list[tuple[int, int]] = field(init=False, repr=False)
    _free_vcpus: int = field(init=False, repr=False)
    _free_vgpus: int = field(init=False, repr=False)
    #: Aggregate capacity of the *current* membership.  Equals the config
    #: totals until churn mutates the cluster; maintained unconditionally
    #: (both index modes) because utilisation denominators need it even when
    #: the free-capacity index is off.
    _total_vcpus: int = field(init=False, repr=False)
    _total_vgpus: int = field(init=False, repr=False)
    _warm_index: dict[str, set[int]] = field(init=False, repr=False)
    _live_counts: dict[str, int] = field(init=False, repr=False)
    _home_cache: dict[tuple[str, str], int] | None = field(init=False, repr=False)
    #: ``loop_mode="fast"``: defer capacity-bucket moves until a query needs
    #: them.  ``None`` = eager (the compat anchor); otherwise maps invoker id
    #: -> the bucket its pending move starts from.  A reserve/release pair
    #: with no capacity query in between cancels to a no-op instead of four
    #: heap operations.
    _pending_moves: dict[int, tuple[int, int]] | None = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.invokers = [
            Invoker(
                invoker_id=i,
                total_vcpus=self.config.vcpus_per_invoker,
                total_vgpus=self.config.vgpus_per_invoker,
                keep_alive_ms=self.config.keep_alive_ms,
            )
            for i in range(self.config.num_invokers)
        ]
        self._indexed = self.config.index_mode == "indexed"
        self._capacity = _CapacityBuckets()
        full = (self.config.vcpus_per_invoker, self.config.vgpus_per_invoker)
        self._bucket_of = [full] * self.config.num_invokers
        for invoker in self.invokers:
            self._capacity.add(full, invoker.invoker_id)
            if self._indexed:
                # Scan mode skips cluster-level index maintenance entirely,
                # keeping it an honest pre-refactor baseline: its queries
                # never read these structures, and paying bucket moves /
                # warm-set updates would overstate the indexed speedup.
                invoker.bind_cluster_callbacks(
                    self._capacity_changed, self._containers_changed
                )
        self._free_vcpus = self.config.total_vcpus
        self._free_vgpus = self.config.total_vgpus
        self._total_vcpus = self.config.total_vcpus
        self._total_vgpus = self.config.total_vgpus
        self._warm_index = {}
        self._live_counts = {}
        self._home_cache = None
        self._pending_moves = None

    # ------------------------------------------------------------------
    # Index maintenance (invoked by the invokers' change callbacks)
    # ------------------------------------------------------------------
    def _capacity_changed(self, invoker: Invoker) -> None:
        i = invoker.invoker_id
        old = self._bucket_of[i]
        new = (invoker.total_vcpus - invoker._used_vcpus, invoker.gpu.total_vgpus - invoker.gpu._used_vgpus)
        if new == old:
            return
        self._free_vcpus += new[0] - old[0]
        self._free_vgpus += new[1] - old[1]
        self._bucket_of[i] = new
        pending = self._pending_moves
        if pending is not None:
            origin = pending.get(i)
            if origin is None:
                pending[i] = old
            elif origin == new:
                # The node is back in the bucket every index reader last
                # saw: both heap moves cancel.
                del pending[i]
            return
        self._capacity.move(old, new, i)

    def enable_lazy_capacity(self) -> None:
        """Defer capacity-bucket maintenance to query time (fast mode).

        The free-capacity counters stay exact on every change; only the
        bucket membership moves are batched, flushed by
        :meth:`_flush_capacity_moves` before any read of the bucket index.
        Readers therefore observe exactly the state the eager path would
        have built.
        """
        if self._pending_moves is None:
            self._pending_moves = {}

    def _flush_capacity_moves(self) -> None:
        pending = self._pending_moves
        if pending:
            capacity = self._capacity
            bucket_of = self._bucket_of
            for i, origin in pending.items():
                capacity.move(origin, bucket_of[i], i)
            pending.clear()

    def _containers_changed(self, invoker: Invoker, function_name: str, live_delta: int) -> None:
        if live_delta:
            self._live_counts[function_name] = (
                self._live_counts.get(function_name, 0) + live_delta
            )
        if invoker.resident_candidate_count(function_name) > 0:
            self._warm_index.setdefault(function_name, set()).add(invoker.invoker_id)
        else:
            members = self._warm_index.get(function_name)
            if members is not None:
                members.discard(invoker.invoker_id)

    @property
    def indexed(self) -> bool:
        """True when queries are served from the incremental indexes."""
        return self._indexed

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def invoker(self, invoker_id: int) -> Invoker:
        """Return the invoker with the given id."""
        if not 0 <= invoker_id < len(self.invokers):
            raise KeyError(f"invoker id {invoker_id} out of range [0, {len(self.invokers)})")
        return self.invokers[invoker_id]

    def __len__(self) -> int:
        return len(self.invokers)

    def __iter__(self):
        return iter(self.invokers)

    # ------------------------------------------------------------------
    # Home-invoker hashing (OpenWhisk behaviour)
    # ------------------------------------------------------------------
    def home_invoker_id(self, app_name: str, function_name: str) -> int:
        """Deterministic "home" node for invocations of a function.

        OpenWhisk hashes the namespace and action name; we hash the
        application and function names so different applications using the
        same function can land on different homes (matching the AFW-queue
        separation of the paper).
        """
        cache = self._home_cache
        if cache is not None:
            key = (app_name, function_name)
            home = cache.get(key)
            if home is None:
                home = self._hash_home(app_name, function_name)
                cache[key] = home
            return home
        return self._hash_home(app_name, function_name)

    def _hash_home(self, app_name: str, function_name: str) -> int:
        digest = hashlib.sha256(f"{app_name}/{function_name}".encode()).digest()
        return int.from_bytes(digest[:4], "big") % len(self.invokers)

    def enable_home_cache(self) -> None:
        """Memoize :meth:`home_invoker_id` (pure in its arguments and the
        fixed cluster size), used by ``loop_mode="fast"`` runs to avoid a
        sha256 digest per locality decision."""
        if self._home_cache is None:
            self._home_cache = {}

    # ------------------------------------------------------------------
    # Cluster-wide queries
    # ------------------------------------------------------------------
    def invokers_that_fit(self, config: Configuration) -> tuple[Invoker, ...]:
        """Invokers that currently have room for ``config`` (ordered by id)."""
        if self._indexed:
            self._flush_capacity_moves()
            ids = sorted(self._capacity.fitting_ids(config.vcpus, config.vgpus))
            return tuple(self.invokers[i] for i in ids)
        return tuple(inv for inv in self.invokers if inv.can_fit(config))

    def warm_invokers_for(self, function_name: str, now_ms: float) -> tuple[Invoker, ...]:
        """Invokers with a resident (warm or busy) container for ``function_name``."""
        if self._indexed:
            members = self._warm_index.get(function_name)
            if not members:
                return ()
            return tuple(
                invoker
                for i in sorted(members)
                if (invoker := self.invokers[i]).has_warm_container(function_name, now_ms)
            )
        return tuple(
            inv for inv in self.invokers if inv.has_warm_container(function_name, now_ms)
        )

    def has_warm_invoker(self, function_name: str, now_ms: float) -> bool:
        """True if any invoker holds a resident container for the function."""
        if self._indexed:
            members = self._warm_index.get(function_name)
            if not members:
                return False
            return any(
                self.invokers[i].has_warm_container(function_name, now_ms) for i in members
            )
        return any(inv.has_warm_container(function_name, now_ms) for inv in self.invokers)

    def most_available_invoker(self, config: Configuration) -> Invoker | None:
        """The fitting invoker with the most free resources (ties by id).

        Used as the cold-node fallback of ESG_Dispatch ("choose the one with
        the most available resources").  Delegates to
        :meth:`best_fitting_invoker` with the negated availability score
        (float negation is exact, and both rules tie-break to the lowest
        id), so there is exactly one bucket-scan implementation to maintain.
        """
        total_vcpus = self.config.vcpus_per_invoker
        return self.best_fitting_invoker(
            config, key=lambda cpu, gpu: -(gpu + cpu / total_vcpus)
        )

    def best_fitting_invoker(
        self, config: Configuration, key: Callable[[int, int], object]
    ) -> Invoker | None:
        """The fitting invoker minimising ``key(avail_vcpus, avail_vgpus)``.

        Ties break toward the lowest invoker id — the deterministic rule the
        fragmentation-minimising baselines (INFless, FaST-GShare) use.  The
        key may only depend on the node's free capacity (all invokers are
        homogeneous), which is what lets the capacity index answer the query
        per *bucket* instead of per node.
        """
        if self._indexed:
            self._flush_capacity_moves()
            best_key: object | None = None
            best_id: int | None = None
            for (cpu, gpu), _members in self._capacity.iter_nonempty():
                if cpu < config.vcpus or gpu < config.vgpus:
                    continue
                bucket_key = key(cpu, gpu)
                if best_key is None or bucket_key < best_key:
                    best_key = bucket_key
                    best_id = self._capacity.min_id((cpu, gpu))
                elif not bucket_key > best_key:  # equal keys: lowest id wins
                    min_id = self._capacity.min_id((cpu, gpu))
                    if min_id is not None and (best_id is None or min_id < best_id):
                        best_id = min_id
            return None if best_id is None else self.invokers[best_id]
        fitting = self.invokers_that_fit(config)
        if not fitting:
            return None
        return min(
            fitting,
            key=lambda inv: (key(inv.available_vcpus, inv.available_vgpus), inv.invoker_id),
        )

    def resident_container_count(self, function_name: str) -> int:
        """Live (starting, warm or busy) containers of the function cluster-wide."""
        if self._indexed:
            return self._live_counts.get(function_name, 0)
        count = 0
        for invoker in self.invokers:
            for container in invoker.containers_for(function_name):
                if container.state in (
                    ContainerState.WARM,
                    ContainerState.BUSY,
                    ContainerState.STARTING,
                ):
                    count += 1
        return count

    def total_available_vcpus(self) -> int:
        """Free vCPUs across the cluster."""
        if self._indexed:
            return self._free_vcpus
        return sum(inv.available_vcpus for inv in self.invokers)

    def total_available_vgpus(self) -> int:
        """Free vGPUs across the cluster."""
        if self._indexed:
            return self._free_vgpus
        return sum(inv.available_vgpus for inv in self.invokers)

    def total_vcpus(self) -> int:
        """Aggregate vCPU capacity of the current membership."""
        return self._total_vcpus

    def total_vgpus(self) -> int:
        """Aggregate vGPU capacity of the current membership."""
        return self._total_vgpus

    def cpu_utilization(self) -> float:
        """Cluster-wide vCPU utilisation (relative to current membership)."""
        return 1.0 - self.total_available_vcpus() / self._total_vcpus

    def gpu_utilization(self) -> float:
        """Cluster-wide vGPU utilisation (relative to current membership)."""
        return 1.0 - self.total_available_vgpus() / self._total_vgpus

    def expire_containers(self, now_ms: float) -> int:
        """Expire idle containers past their keep-alive on every node."""
        return sum(len(inv.expire_containers(now_ms)) for inv in self.invokers)

    # ------------------------------------------------------------------
    # Membership churn (invoked by the controller's churn handlers)
    # ------------------------------------------------------------------
    def apply_join(self, vcpus: int | None = None, vgpus: int | None = None) -> Invoker:
        """Add a node to the cluster; ``None`` shape means the config default.

        Mirrors ``__post_init__``: the new invoker is appended (ids are
        dense and never reused), registered with the capacity index in both
        index modes, and wired to the incremental callbacks only when
        indexing is on.  The home-invoker memo depends on the cluster size,
        so a join invalidates it.
        """
        invoker = Invoker(
            invoker_id=len(self.invokers),
            total_vcpus=vcpus if vcpus is not None else self.config.vcpus_per_invoker,
            total_vgpus=vgpus if vgpus is not None else self.config.vgpus_per_invoker,
            keep_alive_ms=self.config.keep_alive_ms,
        )
        self.invokers.append(invoker)
        bucket = (invoker.total_vcpus, invoker.total_vgpus)
        self._bucket_of.append(bucket)
        self._capacity.add(bucket, invoker.invoker_id)
        if self._indexed:
            invoker.bind_cluster_callbacks(self._capacity_changed, self._containers_changed)
        self._free_vcpus += invoker.total_vcpus
        self._free_vgpus += invoker.total_vgpus
        self._total_vcpus += invoker.total_vcpus
        self._total_vgpus += invoker.total_vgpus
        if self._home_cache is not None:
            self._home_cache.clear()
        return invoker

    def apply_leave(self, invoker_id: int) -> list:
        """Evict a node: drop its containers, zero its capacity, tombstone it.

        The invoker stays in the list so ids (and the home hash, which only
        changes on joins) remain stable; with zero total capacity no
        placement rule in either index mode can ever select it again.
        Returns the containers that were force-stopped.  In-flight task
        bookkeeping (requeue/fail, metrics) is the controller's job.
        """
        invoker = self.invoker(invoker_id)
        if not invoker.active:
            return []
        evicted = invoker.evict_all_containers()
        self._total_vcpus -= invoker.total_vcpus
        self._total_vgpus -= invoker.gpu.total_vgpus
        invoker.total_vcpus = 0
        invoker.total_vgpus = 0
        invoker.gpu.total_vgpus = 0
        invoker._used_vcpus = 0
        invoker.gpu._used_vgpus = 0
        invoker.active = False
        # Re-bucket to (0, 0); no-op in scan mode (callback unbound there),
        # where the bucket index is never read.
        invoker._capacity_changed()
        return evicted

    def apply_resize(self, invoker_id: int, vcpus: int, vgpus: int) -> tuple[int, int]:
        """Re-target a node's capacity (harvested-VM shrink/grow).

        Clamped to ``max(1, target, in_use)``: harvesting only takes idle
        resources, never cores/slices under running tasks.  Returns the
        applied ``(vcpus, vgpus)``; a departed node is left untouched.
        """
        invoker = self.invoker(invoker_id)
        if not invoker.active:
            return (invoker.total_vcpus, invoker.gpu.total_vgpus)
        new_vcpus = max(1, vcpus, invoker._used_vcpus)
        new_vgpus = max(1, vgpus, invoker.gpu._used_vgpus)
        self._total_vcpus += new_vcpus - invoker.total_vcpus
        self._total_vgpus += new_vgpus - invoker.gpu.total_vgpus
        invoker.total_vcpus = new_vcpus
        invoker.total_vgpus = new_vgpus
        invoker.gpu.total_vgpus = new_vgpus
        invoker._capacity_changed()
        return (new_vcpus, new_vgpus)
