"""Cluster state: the set of invoker nodes managed by the controller.

Matches the testbed of Table 2: 16 nodes, each with 16 vCPUs and one A100
GPU split into up to 7 MIG instances (vGPUs).  Also implements OpenWhisk's
"home invoker" hashing: the default node for a function is determined by a
hash of its (namespace, action) identity, which concentrates invocations of
the same function on the same node and therefore yields more warm starts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.cluster.invoker import Invoker
from repro.cluster.container import DEFAULT_KEEP_ALIVE_MS
from repro.profiles.configuration import Configuration
from repro.utils.validation import ensure_positive_int

__all__ = ["ClusterConfig", "ClusterState"]


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the emulated testbed."""

    num_invokers: int = 16
    vcpus_per_invoker: int = 16
    vgpus_per_invoker: int = 7
    keep_alive_ms: float = DEFAULT_KEEP_ALIVE_MS

    def __post_init__(self) -> None:
        ensure_positive_int(self.num_invokers, "num_invokers")
        ensure_positive_int(self.vcpus_per_invoker, "vcpus_per_invoker")
        ensure_positive_int(self.vgpus_per_invoker, "vgpus_per_invoker")

    @property
    def total_vcpus(self) -> int:
        """Aggregate vCPU capacity of the cluster."""
        return self.num_invokers * self.vcpus_per_invoker

    @property
    def total_vgpus(self) -> int:
        """Aggregate vGPU capacity of the cluster."""
        return self.num_invokers * self.vgpus_per_invoker


@dataclass
class ClusterState:
    """The live state of all invokers."""

    config: ClusterConfig = field(default_factory=ClusterConfig)
    invokers: list[Invoker] = field(init=False)

    def __post_init__(self) -> None:
        self.invokers = [
            Invoker(
                invoker_id=i,
                total_vcpus=self.config.vcpus_per_invoker,
                total_vgpus=self.config.vgpus_per_invoker,
                keep_alive_ms=self.config.keep_alive_ms,
            )
            for i in range(self.config.num_invokers)
        ]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def invoker(self, invoker_id: int) -> Invoker:
        """Return the invoker with the given id."""
        if not 0 <= invoker_id < len(self.invokers):
            raise KeyError(f"invoker id {invoker_id} out of range [0, {len(self.invokers)})")
        return self.invokers[invoker_id]

    def __len__(self) -> int:
        return len(self.invokers)

    def __iter__(self):
        return iter(self.invokers)

    # ------------------------------------------------------------------
    # Home-invoker hashing (OpenWhisk behaviour)
    # ------------------------------------------------------------------
    def home_invoker_id(self, app_name: str, function_name: str) -> int:
        """Deterministic "home" node for invocations of a function.

        OpenWhisk hashes the namespace and action name; we hash the
        application and function names so different applications using the
        same function can land on different homes (matching the AFW-queue
        separation of the paper).
        """
        digest = hashlib.sha256(f"{app_name}/{function_name}".encode()).digest()
        return int.from_bytes(digest[:4], "big") % len(self.invokers)

    # ------------------------------------------------------------------
    # Cluster-wide queries
    # ------------------------------------------------------------------
    def invokers_that_fit(self, config: Configuration) -> list[Invoker]:
        """Invokers that currently have room for ``config`` (ordered by id)."""
        return [inv for inv in self.invokers if inv.can_fit(config)]

    def warm_invokers_for(self, function_name: str, now_ms: float) -> list[Invoker]:
        """Invokers with an idle warm container for ``function_name``."""
        return [inv for inv in self.invokers if inv.has_warm_container(function_name, now_ms)]

    def most_available_invoker(self, config: Configuration) -> Invoker | None:
        """The fitting invoker with the most free resources (ties by id).

        Used as the cold-node fallback of ESG_Dispatch ("choose the one with
        the most available resources").
        """
        fitting = self.invokers_that_fit(config)
        if not fitting:
            return None
        return max(
            fitting,
            key=lambda inv: (inv.available_vgpus + inv.available_vcpus / inv.total_vcpus, -inv.invoker_id),
        )

    def total_available_vcpus(self) -> int:
        """Free vCPUs across the cluster."""
        return sum(inv.available_vcpus for inv in self.invokers)

    def total_available_vgpus(self) -> int:
        """Free vGPUs across the cluster."""
        return sum(inv.available_vgpus for inv in self.invokers)

    def cpu_utilization(self) -> float:
        """Cluster-wide vCPU utilisation."""
        return 1.0 - self.total_available_vcpus() / self.config.total_vcpus

    def gpu_utilization(self) -> float:
        """Cluster-wide vGPU utilisation."""
        return 1.0 - self.total_available_vgpus() / self.config.total_vgpus

    def expire_containers(self, now_ms: float) -> int:
        """Expire idle containers past their keep-alive on every node."""
        return sum(len(inv.expire_containers(now_ms)) for inv in self.invokers)
