"""The discrete-event simulation driver.

:class:`Simulation` wires a workload (a list of requests), a scheduling
policy and the platform substrate (cluster, controller, prewarmer, metrics)
into one reproducible run and executes events until every request has
completed (or a configurable horizon is reached).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Sequence

from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.controller import Controller, ControllerConfig
from repro.cluster.datatransfer import DataTransferModel
from repro.cluster.events import Event, RequestArrivalEvent, SchedulerTickEvent
from repro.cluster.metrics import MetricsCollector, MetricsConfig, RunSummary
from repro.cluster.policy_api import SchedulingContext, SchedulingPolicy
from repro.cluster.prewarm import PrewarmManager
from repro.profiles.configuration import ConfigurationSpace
from repro.profiles.perf_model import (
    AnalyticalPerformanceModel,
    NoisyPerformanceModel,
    PerformanceModel,
)
from repro.profiles.pricing import PricingModel
from repro.profiles.profiler import ProfileStore
from repro.utils.rng import derive_rng
from repro.workloads.dag import Workflow
from repro.workloads.request import Request
from repro.workloads.stream import RequestStream

__all__ = ["EventLoop", "SimulationConfig", "Simulation", "EventHandler", "SimulationHook", "EventHook"]

#: A registered event handler: receives the simulation and the event.
EventHandler = Callable[["Simulation", Event], None]
#: An observer invoked with only the simulation (progress / horizon hooks).
SimulationHook = Callable[["Simulation"], None]
#: An observer invoked after every handled event.
EventHook = Callable[["Simulation", Event], None]


class EventLoop:
    """A min-heap of events ordered by time (ties broken by the event's
    ``sort_priority``, then insertion order).

    The priority rank exists for one reason: request arrivals must pop
    ahead of any other event scheduled for the same instant, whether they
    were pushed up front (materialized workloads push every arrival before
    the run starts, so their insertion order alone used to guarantee this)
    or lazily mid-run (streaming workloads push arrival *k+1* only when
    arrival *k* fires).  Making the rank part of the key keeps the two
    scheduling styles byte-identical even on exact time collisions.

    Housekeeping events (``event.housekeeping``, e.g. container-expiry
    timers) are tracked separately: they are popped in global time order
    like any other event, but the loop exposes :attr:`has_real` /
    :meth:`peek_real_time` so the simulator can end a run — and apply the
    horizon check — based only on *productive* events.  Without this, a
    drained workload would be kept "running" for ten more simulated minutes
    of keep-alive timers.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        #: Mirror heap of the (time, priority, counter) keys of
        #: non-housekeeping events.
        self._real_keys: list[tuple[float, int, int]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        """Schedule an event."""
        key = (event.time_ms, event.sort_priority, next(self._counter))
        heapq.heappush(self._heap, (*key, event))
        if not event.housekeeping:
            heapq.heappush(self._real_keys, key)

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("event loop is empty")
        time_ms, priority, counter, event = heapq.heappop(self._heap)
        if not event.housekeeping:
            # The popped event is the global minimum, so when it is a real
            # event it is also the minimum of the real-key mirror heap.
            heapq.heappop(self._real_keys)
        return event

    def peek_time(self) -> float:
        """Time of the earliest pending event."""
        if not self._heap:
            raise IndexError("event loop is empty")
        return self._heap[0][0]

    def peek_real_time(self) -> float:
        """Time of the earliest pending non-housekeeping event."""
        if not self._real_keys:
            raise IndexError("no productive event is pending")
        return self._real_keys[0][0]

    @property
    def has_real(self) -> bool:
        """True while a non-housekeeping event is pending."""
        return bool(self._real_keys)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        """True when no event is pending."""
        return not self._heap


@dataclass(frozen=True)
class SimulationConfig:
    """Reproducible configuration of one simulated run."""

    seed: int = 42
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    noise_sigma: float = 0.05
    #: Hard stop (ms of simulated time); inf = run until all events drain.
    max_time_ms: float = float("inf")
    #: Safety valve on the number of processed events.
    max_events: int = 5_000_000
    #: How the run's metrics are stored: retained object lists (default) or
    #: streaming per-app accumulators.  Summaries are byte-identical.
    metrics: MetricsConfig = field(default_factory=MetricsConfig)

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")


class Simulation:
    """One run: a policy scheduling a request stream on the emulated cluster.

    The workload is either a materialized ``Sequence[Request]`` (every
    arrival event pre-registered up front — the default, debuggable path)
    or a lazy :class:`~repro.workloads.stream.RequestStream`, which the
    simulation pulls *on demand*: exactly one arrival event is pending at
    any time, and popping it schedules the next one from the stream.  With
    a streaming metrics collector this bounds the whole run's footprint —
    no request list, no upfront event flood — while remaining
    byte-identical to the materialized run (arrivals outrank same-time
    events via ``Event.sort_priority``, mirroring the upfront push order).

    Event dispatch is table-driven: :meth:`register_handler` maps an event
    type to a handler, and the base :class:`Event` entry falls back to the
    event's own :meth:`Event.apply`.  Observers can watch a run without
    subclassing through the hook API (:meth:`on_event`, :meth:`on_progress`,
    :meth:`on_horizon_reached`).
    """

    #: Class-level handler registry; the base ``Event`` entry dispatches to
    #: ``event.apply(simulation)`` so new event types work out of the box.
    _handlers: ClassVar[dict[type, EventHandler]] = {}

    def __init__(
        self,
        policy: SchedulingPolicy,
        requests: Sequence[Request] | RequestStream,
        profile_store: ProfileStore,
        *,
        config: SimulationConfig | None = None,
        runtime_perf_model: PerformanceModel | None = None,
        transfer_model: DataTransferModel | None = None,
        setting_name: str = "",
    ) -> None:
        stream = requests if isinstance(requests, RequestStream) else None
        if stream is None and not requests:
            raise ValueError("a simulation needs at least one request")
        self.config = config or SimulationConfig()
        self.policy = policy
        #: The materialized workload; stays empty for streaming runs (the
        #: stream is consumed, never retained).
        self.requests = [] if stream is not None else list(requests)
        self.profile_store = profile_store
        self.cluster = ClusterState(config=self.config.cluster)
        self.metrics = MetricsCollector(
            policy_name=policy.name,
            setting_name=setting_name,
            config=self.config.metrics,
            horizon_ms=self.config.max_time_ms,
        )
        self.events = EventLoop()
        self.now_ms = 0.0
        self._tick_scheduled = False
        self._processed_events = 0
        self._truncated = False
        self._instance_handlers: dict[type, EventHandler] = {}
        self._event_hooks: list[EventHook] = []
        self._progress_hooks: list[tuple[SimulationHook, int]] = []
        self._horizon_hooks: list[SimulationHook] = []

        if runtime_perf_model is None:
            runtime_perf_model = NoisyPerformanceModel(
                base=AnalyticalPerformanceModel(),
                rng=derive_rng(self.config.seed, "runtime-noise", policy.name),
                sigma=self.config.noise_sigma,
            )
        self.runtime_perf_model = runtime_perf_model
        self.transfer_model = transfer_model or DataTransferModel()

        prewarmer = PrewarmManager(
            profile_store=profile_store, enabled=self.config.controller.prewarm_enabled
        )
        self.controller = Controller(
            policy=policy,
            cluster=self.cluster,
            profile_store=profile_store,
            runtime_perf_model=self.runtime_perf_model,
            pricing=profile_store.pricing,
            metrics=self.metrics,
            transfer_model=self.transfer_model,
            config=self.config.controller,
            prewarmer=prewarmer,
            event_sink=self.events.push,
        )

        if stream is not None:
            workflows = dict(stream.workflows())
            for workflow in workflows.values():
                self.controller.register_workflow(workflow)
        else:
            workflows: dict[str, Workflow] = {}
            for request in self.requests:
                workflows.setdefault(request.app_name, request.workflow)
                self.controller.register_workflow(request.workflow)
        self.controller.initialize_warm_pool()

        context = SchedulingContext(
            profile_store=profile_store,
            cluster=self.cluster,
            config_space=profile_store.space,
            pricing=profile_store.pricing,
            workflows=workflows,
            transfer_model=self.transfer_model,
        )
        policy.bind(context)

        self._streaming_workload = stream is not None
        self._arrival_source = iter(stream) if stream is not None else None
        if stream is not None:
            if not self._schedule_next_arrival():
                raise ValueError("a simulation needs at least one request")
        else:
            for request in self.requests:
                self.events.push(
                    RequestArrivalEvent(time_ms=request.arrival_ms, request=request)
                )

    def _schedule_next_arrival(self) -> bool:
        """Pull one request from the workload stream and schedule its arrival.

        Streaming runs keep exactly one pending arrival event: the next one
        is scheduled when the current one pops (see :meth:`run`), so the
        event queue holds in-flight work only, never the whole workload.
        Returns False once the stream is exhausted.
        """
        if self._arrival_source is None:
            return False
        pair = next(self._arrival_source, None)
        if pair is None:
            self._arrival_source = None
            return False
        arrival_ms, request = pair
        self.events.push(RequestArrivalEvent(time_ms=arrival_ms, request=request))
        return True

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    @classmethod
    def register_handler(
        cls, event_type: type[Event], handler: EventHandler | None = None
    ) -> Callable[[EventHandler], EventHandler] | EventHandler:
        """Register ``handler`` for ``event_type`` (usable as a decorator).

        The most derived registered type along the event's MRO wins, so a
        handler for a subclass shadows the base :class:`Event` entry (which
        dispatches to :meth:`Event.apply`).
        """
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"event_type must be an Event subclass, got {event_type!r}")

        def _register(fn: EventHandler) -> EventHandler:
            cls._handlers[event_type] = fn
            return fn

        if handler is not None:
            return _register(handler)
        return _register

    def add_handler(self, event_type: type[Event], handler: EventHandler) -> None:
        """Register ``handler`` for ``event_type`` on this simulation only.

        Instance handlers take precedence over the class-level registry,
        so one experiment can instrument its run without changing dispatch
        for every other :class:`Simulation` in the process.
        """
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"event_type must be an Event subclass, got {event_type!r}")
        self._instance_handlers[event_type] = handler

    def _dispatch(self, event: Event) -> None:
        """Route ``event`` to a handler: instance registrations win outright.

        All of this simulation's handlers are consulted (walking the event's
        MRO) before any class-registered one, so a per-instance handler for a
        base type beats a process-wide handler for the exact type — matching
        :meth:`add_handler`'s precedence promise.
        """
        mro = type(event).__mro__
        for klass in mro:
            handler = self._instance_handlers.get(klass)
            if handler is not None:
                handler(self, event)
                return
        for klass in mro:
            handler = self._handlers.get(klass)
            if handler is not None:
                handler(self, event)
                return
        raise TypeError(f"no handler registered for event type {type(event).__name__}")

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_event(self, hook: EventHook) -> EventHook:
        """Call ``hook(simulation, event)`` after every handled event."""
        self._event_hooks.append(hook)
        return hook

    def on_progress(self, hook: SimulationHook, *, every_events: int = 1000) -> SimulationHook:
        """Call ``hook(simulation)`` every ``every_events`` processed events."""
        if every_events <= 0:
            raise ValueError(f"every_events must be positive, got {every_events}")
        self._progress_hooks.append((hook, every_events))
        return hook

    def on_horizon_reached(self, hook: SimulationHook) -> SimulationHook:
        """Call ``hook(simulation)`` once if the run truncates at ``max_time_ms``."""
        self._horizon_hooks.append(hook)
        return hook

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> RunSummary:
        """Process events until the workload drains; returns the run summary.

        The run stops early — marking the summary ``truncated`` — when the
        next pending event lies beyond ``max_time_ms`` (the event stays in
        the queue and ``now_ms`` never advances past the horizon) or when
        ``max_events`` is exhausted.  Housekeeping events (container-expiry
        timers) neither keep the run alive nor count toward the horizon:
        the loop drains them only while productive events remain, exactly
        like the per-tick expiry scan stops when the workload does.
        """
        while self.events.has_real:
            if self._processed_events >= self.config.max_events:
                self._truncated = True
                break
            if self.events.peek_real_time() > self.config.max_time_ms:
                self._truncated = True
                for horizon_hook in self._horizon_hooks:
                    horizon_hook(self)
                break
            event = self.events.pop()
            self.now_ms = max(self.now_ms, event.time_ms)
            if isinstance(event, SchedulerTickEvent):
                # Engine-owned invariant: the pending tick is consumed the
                # moment it is popped, no matter which handler processes it.
                self._tick_scheduled = False
            elif isinstance(event, RequestArrivalEvent) and self._arrival_source is not None:
                # Engine-owned invariant for streaming workloads: popping an
                # arrival schedules the next one, regardless of which
                # handler processes the event.
                self._schedule_next_arrival()
            self._dispatch(event)
            # Housekeeping events are free: counting them against
            # max_events (or the progress cadence) would make indexed runs
            # (which schedule expiry timers) diverge from scan runs.
            if not event.housekeeping:
                self._processed_events += 1
            for event_hook in self._event_hooks:
                event_hook(self, event)
            if not event.housekeeping:
                for progress_hook, every in self._progress_hooks:
                    if self._processed_events % every == 0:
                        progress_hook(self)
            self._maybe_schedule_tick()
        self.metrics.truncated = self._truncated
        return self.metrics.summary()

    def _maybe_schedule_tick(self) -> None:
        """Keep the controller ticking while work is pending."""
        if self._tick_scheduled:
            return
        if not self.controller.has_pending_work():
            return
        self._tick_scheduled = True
        self.events.push(
            SchedulerTickEvent(time_ms=self.now_ms + self.config.controller.tick_interval_ms)
        )

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and experiments)
    # ------------------------------------------------------------------
    @property
    def processed_events(self) -> int:
        """Number of productive (non-housekeeping) events handled so far."""
        return self._processed_events

    @property
    def truncated(self) -> bool:
        """True when the run stopped at the horizon or the event cap."""
        return self._truncated

    @property
    def streaming_workload(self) -> bool:
        """True when the workload is pulled lazily from a RequestStream."""
        return self._streaming_workload

    def config_space(self) -> ConfigurationSpace:
        """The configuration space the run uses."""
        return self.profile_store.space

    def pricing(self) -> PricingModel:
        """The pricing model the run uses."""
        return self.profile_store.pricing


# Default dispatch: any event type without a more specific handler applies
# itself.  Registered once at import time; experiments can shadow it for
# individual event types via ``Simulation.register_handler``.
Simulation.register_handler(Event, lambda simulation, event: event.apply(simulation))
