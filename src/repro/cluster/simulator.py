"""The discrete-event simulation driver.

:class:`Simulation` wires a workload (a list of requests), a scheduling
policy and the platform substrate (cluster, controller, prewarmer, metrics)
into one reproducible run and executes events until every request has
completed (or a configurable horizon is reached).
"""

from __future__ import annotations

import gc
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Sequence

from repro.cluster.churn import ChurnSchedule
from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.controller import Controller, ControllerConfig
from repro.cluster.datatransfer import DataTransferModel
from repro.cluster.container import ContainerState
from repro.cluster.events import (
    ContainerExpireEvent,
    Event,
    PrewarmCompleteEvent,
    RequestArrivalEvent,
    SchedulerTickEvent,
    TaskCompletionEvent,
)
from repro.cluster.metrics import MetricsCollector, MetricsConfig, RunSummary
from repro.cluster.policy_api import SchedulingContext, SchedulingPolicy
from repro.cluster.prewarm import PrewarmManager
from repro.profiles.configuration import ConfigurationSpace
from repro.profiles.perf_model import (
    AnalyticalPerformanceModel,
    NoisyPerformanceModel,
    PerformanceModel,
)
from repro.profiles.pricing import PricingModel
from repro.profiles.profiler import ProfileStore
from repro.utils.rng import derive_rng
from repro.workloads.dag import Workflow
from repro.workloads.request import Request
from repro.workloads.stream import RequestStream

__all__ = [
    "LOOP_MODES",
    "EventLoop",
    "FastEventLoop",
    "SimulationConfig",
    "Simulation",
    "EventHandler",
    "SimulationHook",
    "EventHook",
]

#: A registered event handler: receives the simulation and the event.
EventHandler = Callable[["Simulation", Event], None]
#: An observer invoked with only the simulation (progress / horizon hooks).
SimulationHook = Callable[["Simulation"], None]
#: An observer invoked after every handled event.
EventHook = Callable[["Simulation", Event], None]

#: Event-loop implementations accepted by :class:`SimulationConfig`:
#: ``"fast"`` (default) runs the split-heap queue, cached handler dispatch
#: and chunked arrival pulls; ``"compat"`` keeps the original single-heap
#: loop as the byte-identity parity anchor (same discipline as
#: ``ClusterConfig.index_mode="scan"``).  Summaries are byte-identical.
LOOP_MODES = ("fast", "compat")

#: How many arrivals the fast loop pulls from a RequestStream per refill.
#: Bounded (the queue holds at most this many pending arrivals on top of
#: in-flight work) but large enough to amortise stream re-entry; relative
#: arrival order and the arrivals-outrank-ties ``sort_priority`` make the
#: chunked push order-equivalent to the one-pending-arrival compat scheme.
ARRIVAL_CHUNK = 256


class EventLoop:
    """A min-heap of events ordered by time (ties broken by the event's
    ``sort_priority``, then insertion order).

    The priority rank exists for one reason: request arrivals must pop
    ahead of any other event scheduled for the same instant, whether they
    were pushed up front (materialized workloads push every arrival before
    the run starts, so their insertion order alone used to guarantee this)
    or lazily mid-run (streaming workloads push arrival *k+1* only when
    arrival *k* fires).  Making the rank part of the key keeps the two
    scheduling styles byte-identical even on exact time collisions.

    Housekeeping events (``event.housekeeping``, e.g. container-expiry
    timers) are tracked separately: they are popped in global time order
    like any other event, but the loop exposes :attr:`has_real` /
    :meth:`peek_real_time` so the simulator can end a run — and apply the
    horizon check — based only on *productive* events.  Without this, a
    drained workload would be kept "running" for ten more simulated minutes
    of keep-alive timers.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        #: Mirror heap of the (time, priority, counter) keys of
        #: non-housekeeping events.  ``None`` until the first housekeeping
        #: event is pushed: a run that never schedules expiry timers (scan
        #: mode) never pays for the mirror at all, and while every pending
        #: event is real the main heap answers the real-only queries
        #: directly.
        self._real_keys: list[tuple[float, int, int]] | None = None
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        """Schedule an event (``time_ms`` must be non-negative)."""
        time_ms = event.time_ms
        if time_ms < 0:
            raise ValueError(f"event time must be >= 0, got {time_ms}")
        key = (time_ms, event.sort_priority, next(self._counter))
        if event.housekeeping and self._real_keys is None:
            # First housekeeping event: materialize the mirror from the
            # current heap, which at this point holds only real events.
            # Projecting each 4-tuple entry to its unique 3-tuple key
            # preserves the heap invariant, so no re-heapify is needed.
            self._real_keys = [entry[:3] for entry in self._heap]
        heapq.heappush(self._heap, (*key, event))
        if self._real_keys is not None and not event.housekeeping:
            heapq.heappush(self._real_keys, key)

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("event loop is empty")
        time_ms, priority, counter, event = heapq.heappop(self._heap)
        if self._real_keys is not None and not event.housekeeping:
            # The popped event is the global minimum, so when it is a real
            # event it is also the minimum of the real-key mirror heap.
            heapq.heappop(self._real_keys)
        return event

    def peek_time(self) -> float:
        """Time of the earliest pending event."""
        if not self._heap:
            raise IndexError("event loop is empty")
        return self._heap[0][0]

    def peek_real_time(self) -> float:
        """Time of the earliest pending non-housekeeping event."""
        if self._real_keys is None:
            if not self._heap:
                raise IndexError("no productive event is pending")
            return self._heap[0][0]
        if not self._real_keys:
            raise IndexError("no productive event is pending")
        return self._real_keys[0][0]

    @property
    def has_real(self) -> bool:
        """True while a non-housekeeping event is pending."""
        if self._real_keys is None:
            return bool(self._heap)
        return bool(self._real_keys)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        """True when no event is pending."""
        return not self._heap


class FastEventLoop:
    """Split-heap event queue: the ``loop_mode="fast"`` implementation.

    Totally order-equivalent to :class:`EventLoop`: both order events by
    ``(time_ms, sort_priority, counter)`` with a single shared counter, so
    interleaving two heaps — one for productive events, one for
    housekeeping timers — and always popping the smaller head reproduces
    the single-heap pop sequence exactly (keys are unique because the
    counter is, so the head comparison never ties).  The split removes the
    compat loop's mirror-heap double bookkeeping and makes the real-only
    queries (:attr:`has_real`, :meth:`peek_real_time`) O(1) list checks.
    """

    __slots__ = ("_real", "_housekeeping", "_counter")

    def __init__(self) -> None:
        self._real: list[tuple[float, int, int, Event]] = []
        self._housekeeping: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        """Schedule an event (``time_ms`` must be non-negative)."""
        time_ms = event.time_ms
        if time_ms < 0:
            raise ValueError(f"event time must be >= 0, got {time_ms}")
        entry = (time_ms, event.sort_priority, next(self._counter), event)
        if event.housekeeping:
            heapq.heappush(self._housekeeping, entry)
        else:
            heapq.heappush(self._real, entry)

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        real = self._real
        hk = self._housekeeping
        if hk:
            # Counters are globally unique, so comparing the two head
            # 4-tuples never reaches the (incomparable) event payload.
            if real:
                if hk[0] < real[0]:
                    return heapq.heappop(hk)[3]
                return heapq.heappop(real)[3]
            return heapq.heappop(hk)[3]
        if not real:
            raise IndexError("event loop is empty")
        return heapq.heappop(real)[3]

    def peek_time(self) -> float:
        """Time of the earliest pending event."""
        real = self._real
        hk = self._housekeeping
        if real:
            if hk and hk[0] < real[0]:
                return hk[0][0]
            return real[0][0]
        if hk:
            return hk[0][0]
        raise IndexError("event loop is empty")

    def peek_real_time(self) -> float:
        """Time of the earliest pending non-housekeeping event."""
        if not self._real:
            raise IndexError("no productive event is pending")
        return self._real[0][0]

    @property
    def has_real(self) -> bool:
        """True while a non-housekeeping event is pending."""
        return bool(self._real)

    def __len__(self) -> int:
        return len(self._real) + len(self._housekeeping)

    @property
    def empty(self) -> bool:
        """True when no event is pending."""
        return not self._real and not self._housekeeping


@dataclass(frozen=True)
class SimulationConfig:
    """Reproducible configuration of one simulated run."""

    seed: int = 42
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    noise_sigma: float = 0.05
    #: Hard stop (ms of simulated time); inf = run until all events drain.
    max_time_ms: float = float("inf")
    #: Safety valve on the number of processed events.
    max_events: int = 5_000_000
    #: How the run's metrics are stored: retained object lists (default) or
    #: streaming per-app accumulators.  Summaries are byte-identical.
    metrics: MetricsConfig = field(default_factory=MetricsConfig)
    #: Event-loop implementation: ``"fast"`` (split-heap queue, cached
    #: dispatch, chunked arrival pulls, memoized hot-path lookups) or
    #: ``"compat"`` (the original loop, kept as the parity anchor).
    #: Summaries are byte-identical.
    loop_mode: str = "fast"
    #: Optional cluster-churn schedule (timed invoker join/leave/resize
    #: housekeeping events).  ``None`` keeps the paper's static testbed.
    churn: "ChurnSchedule | None" = None

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")
        if self.loop_mode not in LOOP_MODES:
            raise ValueError(
                f"loop_mode must be one of {LOOP_MODES}, got {self.loop_mode!r}"
            )


class Simulation:
    """One run: a policy scheduling a request stream on the emulated cluster.

    The workload is either a materialized ``Sequence[Request]`` (every
    arrival event pre-registered up front — the default, debuggable path)
    or a lazy :class:`~repro.workloads.stream.RequestStream`, which the
    simulation pulls *on demand*: exactly one arrival event is pending at
    any time, and popping it schedules the next one from the stream.  With
    a streaming metrics collector this bounds the whole run's footprint —
    no request list, no upfront event flood — while remaining
    byte-identical to the materialized run (arrivals outrank same-time
    events via ``Event.sort_priority``, mirroring the upfront push order).

    Event dispatch is table-driven: :meth:`register_handler` maps an event
    type to a handler, and the base :class:`Event` entry falls back to the
    event's own :meth:`Event.apply`.  Observers can watch a run without
    subclassing through the hook API (:meth:`on_event`, :meth:`on_progress`,
    :meth:`on_horizon_reached`).
    """

    #: Class-level handler registry; the base ``Event`` entry dispatches to
    #: ``event.apply(simulation)`` so new event types work out of the box.
    _handlers: ClassVar[dict[type, EventHandler]] = {}
    #: Bumped on every :meth:`register_handler` call; the fast loop's
    #: per-instance dispatch cache compares against it each event so
    #: registrations made mid-run take effect immediately.
    _handlers_version: ClassVar[int] = 0

    def __init__(
        self,
        policy: SchedulingPolicy,
        requests: Sequence[Request] | RequestStream,
        profile_store: ProfileStore,
        *,
        config: SimulationConfig | None = None,
        runtime_perf_model: PerformanceModel | None = None,
        transfer_model: DataTransferModel | None = None,
        setting_name: str = "",
    ) -> None:
        stream = requests if isinstance(requests, RequestStream) else None
        if stream is None and not requests:
            raise ValueError("a simulation needs at least one request")
        self.config = config or SimulationConfig()
        fast = self.config.loop_mode == "fast"
        self._loop_fast = fast
        self.policy = policy
        #: The materialized workload; stays empty for streaming runs (the
        #: stream is consumed, never retained).
        self.requests = [] if stream is not None else list(requests)
        self.profile_store = profile_store
        self.cluster = ClusterState(config=self.config.cluster)
        if fast:
            self.cluster.enable_home_cache()
            self.cluster.enable_lazy_capacity()
        self.metrics = MetricsCollector(
            policy_name=policy.name,
            setting_name=setting_name,
            config=self.config.metrics,
            horizon_ms=self.config.max_time_ms,
        )
        self.events = FastEventLoop() if fast else EventLoop()
        self.now_ms = 0.0
        self._tick_scheduled = False
        self._processed_events = 0
        self._truncated = False
        self._instance_handlers: dict[type, EventHandler] = {}
        self._event_hooks: list[EventHook] = []
        self._progress_hooks: list[tuple[SimulationHook, int]] = []
        self._horizon_hooks: list[SimulationHook] = []
        #: Fast-loop dispatch cache: concrete event type -> resolved
        #: dispatch record (see :meth:`_dispatch_record`).  Invalidated
        #: whenever the class registry version moves or an instance
        #: handler is added.
        self._dispatch_cache: dict[
            type, tuple[EventHandler | None, bool, bool, bool]
        ] = {}
        self._dispatch_version = Simulation._handlers_version

        if runtime_perf_model is None:
            runtime_perf_model = NoisyPerformanceModel(
                base=AnalyticalPerformanceModel(),
                rng=derive_rng(self.config.seed, "runtime-noise", policy.name),
                sigma=self.config.noise_sigma,
                buffered=fast,
            )
        self.runtime_perf_model = runtime_perf_model
        self.transfer_model = transfer_model or DataTransferModel()

        prewarmer = PrewarmManager(
            profile_store=profile_store, enabled=self.config.controller.prewarm_enabled
        )
        if fast:
            prewarmer.enable_profile_cache()
        policy.fast_mode = fast
        self.controller = Controller(
            policy=policy,
            cluster=self.cluster,
            profile_store=profile_store,
            runtime_perf_model=self.runtime_perf_model,
            pricing=profile_store.pricing,
            metrics=self.metrics,
            transfer_model=self.transfer_model,
            config=self.config.controller,
            prewarmer=prewarmer,
            event_sink=self.events.push,
            fast_events=self.events if fast else None,
            fast_mode=fast,
        )

        if stream is not None:
            workflows = dict(stream.workflows())
            for workflow in workflows.values():
                self.controller.register_workflow(workflow)
        else:
            workflows: dict[str, Workflow] = {}
            for request in self.requests:
                workflows.setdefault(request.app_name, request.workflow)
                self.controller.register_workflow(request.workflow)
        self.controller.initialize_warm_pool()

        context = SchedulingContext(
            profile_store=profile_store,
            cluster=self.cluster,
            config_space=profile_store.space,
            pricing=profile_store.pricing,
            workflows=workflows,
            transfer_model=self.transfer_model,
        )
        policy.bind(context)

        self._streaming_workload = stream is not None
        self._pending_arrivals = 0
        if stream is not None and fast:
            self._arrival_source = stream.iter_chunks(ARRIVAL_CHUNK)
            if not self._push_arrival_chunk():
                raise ValueError("a simulation needs at least one request")
        elif stream is not None:
            self._arrival_source = iter(stream)
            if not self._schedule_next_arrival():
                raise ValueError("a simulation needs at least one request")
        else:
            self._arrival_source = None
            for request in self.requests:
                self.events.push(
                    RequestArrivalEvent(time_ms=request.arrival_ms, request=request)
                )

        # Churn events go in last, at a fixed point of construction, so both
        # loop modes assign them identical tie-break counters: they sit after
        # every arrival pushed at init and before anything emitted mid-run.
        # Equal-time collisions with arrivals are resolved by sort_priority
        # (arrivals rank 0, churn 1), which also covers compat streaming
        # runs, where later arrivals are pushed one at a time mid-run.
        churn = self.config.churn
        if churn is not None:
            self.controller.enable_churn(churn.on_evict)
            for action in churn.actions:
                self.events.push(action.to_event())

    def _schedule_next_arrival(self) -> bool:
        """Pull one request from the workload stream and schedule its arrival.

        Compat streaming runs keep exactly one pending arrival event: the
        next one is scheduled when the current one pops (see :meth:`run`),
        so the event queue holds in-flight work only, never the whole
        workload.  Returns False once the stream is exhausted.
        """
        if self._arrival_source is None:
            return False
        pair = next(self._arrival_source, None)
        if pair is None:
            self._arrival_source = None
            return False
        arrival_ms, request = pair
        self.events.push(RequestArrivalEvent(time_ms=arrival_ms, request=request))
        return True

    def _push_arrival_chunk(self) -> bool:
        """Pull up to :data:`ARRIVAL_CHUNK` requests and schedule them all.

        The fast loop's streaming refill.  Order-equivalent to the
        one-pending-arrival compat scheme: arrivals come off the stream in
        non-decreasing time with equal ``sort_priority`` and increasing
        counters, so every not-yet-due arrival sits strictly behind the
        next due one in the queue and the pop sequence is unchanged; the
        queue simply holds at most one chunk of future arrivals instead of
        exactly one.  Returns False once the stream is exhausted.
        """
        source = self._arrival_source
        if source is None:
            return False
        chunk = next(source, None)
        if not chunk:
            self._arrival_source = None
            return False
        # Inlined ``FastEventLoop.push`` (this refill only runs in fast
        # mode): arrival times are validated non-negative by the Request
        # constructor, and arrivals carry sort priority 0.
        events = self.events
        real = events._real
        counter = events._counter
        heappush = heapq.heappush
        for arrival_ms, request in chunk:
            heappush(
                real,
                (
                    arrival_ms,
                    0,
                    next(counter),
                    RequestArrivalEvent(time_ms=arrival_ms, request=request),
                ),
            )
        self._pending_arrivals = len(chunk)
        return True

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    @classmethod
    def register_handler(
        cls, event_type: type[Event], handler: EventHandler | None = None
    ) -> Callable[[EventHandler], EventHandler] | EventHandler:
        """Register ``handler`` for ``event_type`` (usable as a decorator).

        The most derived registered type along the event's MRO wins, so a
        handler for a subclass shadows the base :class:`Event` entry (which
        dispatches to :meth:`Event.apply`).
        """
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"event_type must be an Event subclass, got {event_type!r}")

        def _register(fn: EventHandler) -> EventHandler:
            cls._handlers[event_type] = fn
            # Assign on Simulation explicitly (not ``cls``): a subclass
            # bump would shadow the class variable and hide later updates
            # from instances comparing against Simulation._handlers_version.
            Simulation._handlers_version += 1
            return fn

        if handler is not None:
            return _register(handler)
        return _register

    def add_handler(self, event_type: type[Event], handler: EventHandler) -> None:
        """Register ``handler`` for ``event_type`` on this simulation only.

        Instance handlers take precedence over the class-level registry,
        so one experiment can instrument its run without changing dispatch
        for every other :class:`Simulation` in the process.
        """
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"event_type must be an Event subclass, got {event_type!r}")
        self._instance_handlers[event_type] = handler
        self._dispatch_cache.clear()

    def _dispatch(self, event: Event) -> None:
        """Route ``event`` to a handler: instance registrations win outright.

        All of this simulation's handlers are consulted (walking the event's
        MRO) before any class-registered one, so a per-instance handler for a
        base type beats a process-wide handler for the exact type — matching
        :meth:`add_handler`'s precedence promise.
        """
        mro = type(event).__mro__
        for klass in mro:
            handler = self._instance_handlers.get(klass)
            if handler is not None:
                handler(self, event)
                return
        for klass in mro:
            handler = self._handlers.get(klass)
            if handler is not None:
                handler(self, event)
                return
        raise TypeError(f"no handler registered for event type {type(event).__name__}")

    def _dispatch_record(
        self, event_type: type
    ) -> tuple[EventHandler | None, bool, bool, bool]:
        """Resolve and cache dispatch for one concrete event type.

        The record is ``(handler, housekeeping, is_tick, is_arrival)``.
        Resolution walks the instance registrations first, then the class
        registry — the exact precedence of :meth:`_dispatch`, so an
        instance handler for a *base* type still beats a class handler for
        the exact type.  When resolution lands on the default base-Event
        entry, ``handler`` is stored as ``None`` and the fast loop calls
        ``event.apply(self)`` directly, skipping one indirection on the
        hot path.  The two ``isinstance`` checks of the compat loop are
        folded into the cached booleans.
        """
        mro = event_type.__mro__
        handler: EventHandler | None = None
        for klass in mro:
            handler = self._instance_handlers.get(klass)
            if handler is not None:
                break
        if handler is None:
            for klass in mro:
                handler = self._handlers.get(klass)
                if handler is not None:
                    break
        if handler is None:
            raise TypeError(
                f"no handler registered for event type {event_type.__name__}"
            )
        if handler is _apply_dispatch:
            # The default entry would call ``event.apply(self)``, which for
            # the core event types just forwards to a controller method.
            # Dispatching straight to a module-level trampoline saves that
            # intermediate frame on every event; exact-type keying means any
            # subclass with an overridden ``apply`` (or a registered
            # handler, resolved above) is untouched.
            handler = _FAST_APPLY.get(event_type) if self._loop_fast else None
        record = (
            handler,
            bool(event_type.housekeeping),
            issubclass(event_type, SchedulerTickEvent),
            issubclass(event_type, RequestArrivalEvent),
        )
        self._dispatch_cache[event_type] = record
        return record

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_event(self, hook: EventHook) -> EventHook:
        """Call ``hook(simulation, event)`` after every handled event."""
        self._event_hooks.append(hook)
        return hook

    def on_progress(self, hook: SimulationHook, *, every_events: int = 1000) -> SimulationHook:
        """Call ``hook(simulation)`` every ``every_events`` processed events."""
        if every_events <= 0:
            raise ValueError(f"every_events must be positive, got {every_events}")
        self._progress_hooks.append((hook, every_events))
        return hook

    def on_horizon_reached(self, hook: SimulationHook) -> SimulationHook:
        """Call ``hook(simulation)`` once if the run truncates at ``max_time_ms``."""
        self._horizon_hooks.append(hook)
        return hook

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> RunSummary:
        """Process events until the workload drains; returns the run summary.

        The run stops early — marking the summary ``truncated`` — when the
        next pending event lies beyond ``max_time_ms`` (the event stays in
        the queue and ``now_ms`` never advances past the horizon) or when
        ``max_events`` is exhausted.  Housekeeping events (container-expiry
        timers) neither keep the run alive nor count toward the horizon:
        the loop drains them only while productive events remain, exactly
        like the per-tick expiry scan stops when the workload does.
        """
        if self._loop_fast:
            return self._run_fast()
        while self.events.has_real:
            if self._processed_events >= self.config.max_events:
                self._truncated = True
                break
            if self.events.peek_real_time() > self.config.max_time_ms:
                self._truncated = True
                for horizon_hook in self._horizon_hooks:
                    horizon_hook(self)
                break
            event = self.events.pop()
            self.now_ms = max(self.now_ms, event.time_ms)
            if isinstance(event, SchedulerTickEvent):
                # Engine-owned invariant: the pending tick is consumed the
                # moment it is popped, no matter which handler processes it.
                self._tick_scheduled = False
            elif isinstance(event, RequestArrivalEvent) and self._arrival_source is not None:
                # Engine-owned invariant for streaming workloads: popping an
                # arrival schedules the next one, regardless of which
                # handler processes the event.
                self._schedule_next_arrival()
            self._dispatch(event)
            # Housekeeping events are free: counting them against
            # max_events (or the progress cadence) would make indexed runs
            # (which schedule expiry timers) diverge from scan runs.
            if not event.housekeeping:
                self._processed_events += 1
            for event_hook in self._event_hooks:
                event_hook(self, event)
            if not event.housekeeping:
                for progress_hook, every in self._progress_hooks:
                    if self._processed_events % every == 0:
                        progress_hook(self)
            self._maybe_schedule_tick()
        self.metrics.truncated = self._truncated
        return self.metrics.summary()

    def _run_fast(self) -> RunSummary:
        """The ``loop_mode="fast"`` drain loop.

        Semantically identical to the compat loop in :meth:`run` — same
        stop conditions, same per-event bookkeeping, same hook cadence —
        but with the per-event constant costs stripped: handlers, the
        housekeeping flag and the tick/arrival engine invariants come from
        the per-type dispatch cache instead of MRO walks and ``isinstance``
        checks; hook loops are skipped outright while no hooks are
        registered; the split heaps are popped inline instead of through
        :meth:`FastEventLoop.pop`; the tick reschedule check reads the
        controller's pending-job counter without a method call; and the
        cyclic garbage collector is paused for the duration of the drain —
        the loop allocates and drops large object graphs (jobs, tasks,
        events) that are all acyclic, so collector sweeps only add pauses.
        """
        events = self.events
        config = self.config
        controller = self.controller
        max_events = config.max_events
        max_time_ms = config.max_time_ms
        tick_interval_ms = config.controller.tick_interval_ms
        dispatch_cache = self._dispatch_cache
        real = events._real
        housekeeping_heap = events._housekeeping
        heappop = heapq.heappop
        heappush = heapq.heappush
        counter = events._counter

        event_hooks = self._event_hooks
        progress_hooks = self._progress_hooks

        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            processed = self._processed_events
            while real:
                if processed >= max_events:
                    self._truncated = True
                    break
                if real[0][0] > max_time_ms:
                    self._truncated = True
                    for horizon_hook in self._horizon_hooks:
                        horizon_hook(self)
                    break
                if housekeeping_heap and housekeeping_heap[0] < real[0]:
                    event = heappop(housekeeping_heap)[3]
                else:
                    event = heappop(real)[3]
                time_ms = event.time_ms
                if time_ms > self.now_ms:
                    self.now_ms = time_ms
                if self._dispatch_version != Simulation._handlers_version:
                    dispatch_cache.clear()
                    self._dispatch_version = Simulation._handlers_version
                record = dispatch_cache.get(type(event))
                if record is None:
                    record = self._dispatch_record(type(event))
                handler, housekeeping, is_tick, is_arrival = record
                if is_tick:
                    self._tick_scheduled = False
                elif is_arrival and self._arrival_source is not None:
                    self._pending_arrivals -= 1
                    if self._pending_arrivals <= 0:
                        self._push_arrival_chunk()
                if handler is None:
                    event.apply(self)
                else:
                    handler(self, event)
                if not housekeeping:
                    processed += 1
                    self._processed_events = processed
                if event_hooks:
                    for event_hook in event_hooks:
                        event_hook(self, event)
                if progress_hooks and not housekeeping:
                    for progress_hook, every in progress_hooks:
                        if processed % every == 0:
                            progress_hook(self)
                if not self._tick_scheduled and controller._pending_jobs > 0:
                    self._tick_scheduled = True
                    # Inlined ``events.push`` (tick times are never negative;
                    # ticks are real events with the default sort priority 1).
                    tick_time = self.now_ms + tick_interval_ms
                    heappush(
                        real,
                        (tick_time, 1, next(counter), SchedulerTickEvent(time_ms=tick_time)),
                    )
        finally:
            if gc_was_enabled:
                gc.enable()
        self.metrics.truncated = self._truncated
        return self.metrics.summary()

    def _maybe_schedule_tick(self) -> None:
        """Keep the controller ticking while work is pending."""
        if self._tick_scheduled:
            return
        if not self.controller.has_pending_work():
            return
        self._tick_scheduled = True
        self.events.push(
            SchedulerTickEvent(time_ms=self.now_ms + self.config.controller.tick_interval_ms)
        )

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and experiments)
    # ------------------------------------------------------------------
    @property
    def processed_events(self) -> int:
        """Number of productive (non-housekeeping) events handled so far."""
        return self._processed_events

    @property
    def truncated(self) -> bool:
        """True when the run stopped at the horizon or the event cap."""
        return self._truncated

    @property
    def streaming_workload(self) -> bool:
        """True when the workload is pulled lazily from a RequestStream."""
        return self._streaming_workload

    def config_space(self) -> ConfigurationSpace:
        """The configuration space the run uses."""
        return self.profile_store.space

    def pricing(self) -> PricingModel:
        """The pricing model the run uses."""
        return self.profile_store.pricing


# Default dispatch: any event type without a more specific handler applies
# itself.  Registered once at import time; experiments can shadow it for
# individual event types via ``Simulation.register_handler``.  Named (not a
# lambda) so the fast loop's dispatch cache can recognise it by identity and
# call ``event.apply`` without the extra indirection.
def _apply_dispatch(simulation: Simulation, event: Event) -> None:
    event.apply(simulation)


Simulation.register_handler(Event, _apply_dispatch)


# Fast-loop trampolines: each mirrors the corresponding ``Event.apply`` body
# exactly, skipping the ``apply`` frame.  Keyed by *exact* concrete type in
# ``_FAST_APPLY`` — subclasses (which may override ``apply``) never match and
# keep the default ``event.apply`` route.
def _fast_arrival_apply(simulation: Simulation, event: "RequestArrivalEvent") -> None:
    simulation.controller.on_request_arrival(event.request, simulation.now_ms)


def _fast_completion_apply(simulation: Simulation, event: "TaskCompletionEvent") -> None:
    # These trampolines are only installed for fast-mode simulations, whose
    # controller always runs in fast mode — skip the ``on_task_completion``
    # mode branch as well.
    simulation.controller._on_task_completion_fast(event.task, simulation.now_ms)


def _fast_tick_apply(simulation: Simulation, event: SchedulerTickEvent) -> None:
    simulation.controller.on_tick(simulation.now_ms)


def _fast_prewarm_apply(simulation: Simulation, event: "PrewarmCompleteEvent") -> None:
    simulation.controller.on_prewarm_complete(event.container, simulation.now_ms)


def _fast_expire_apply(simulation: Simulation, event: "ContainerExpireEvent") -> None:
    container = event.container
    if (
        container.state is ContainerState.WARM
        and container.expires_at_ms == event.time_ms
    ):
        container.mark_stopped()


_FAST_APPLY: dict[type, EventHandler] = {
    RequestArrivalEvent: _fast_arrival_apply,
    TaskCompletionEvent: _fast_completion_apply,
    SchedulerTickEvent: _fast_tick_apply,
    PrewarmCompleteEvent: _fast_prewarm_apply,
    ContainerExpireEvent: _fast_expire_apply,
}
