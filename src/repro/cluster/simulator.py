"""The discrete-event simulation driver.

:class:`Simulation` wires a workload (a list of requests), a scheduling
policy and the platform substrate (cluster, controller, prewarmer, metrics)
into one reproducible run and executes events until every request has
completed (or a configurable horizon is reached).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.controller import Controller, ControllerConfig
from repro.cluster.datatransfer import DataTransferModel
from repro.cluster.events import (
    Event,
    PrewarmCompleteEvent,
    RequestArrivalEvent,
    SchedulerTickEvent,
    TaskCompletionEvent,
)
from repro.cluster.metrics import MetricsCollector, RunSummary
from repro.cluster.policy_api import SchedulingContext, SchedulingPolicy
from repro.cluster.prewarm import PrewarmManager
from repro.profiles.configuration import ConfigurationSpace
from repro.profiles.perf_model import (
    AnalyticalPerformanceModel,
    NoisyPerformanceModel,
    PerformanceModel,
)
from repro.profiles.pricing import PricingModel
from repro.profiles.profiler import ProfileStore
from repro.utils.rng import derive_rng
from repro.workloads.dag import Workflow
from repro.workloads.request import Request

__all__ = ["EventLoop", "SimulationConfig", "Simulation"]


class EventLoop:
    """A min-heap of events ordered by time (ties broken by insertion order)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        """Schedule an event."""
        heapq.heappush(self._heap, (event.time_ms, next(self._counter), event))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("event loop is empty")
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> float:
        """Time of the earliest pending event."""
        if not self._heap:
            raise IndexError("event loop is empty")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        """True when no event is pending."""
        return not self._heap


@dataclass(frozen=True)
class SimulationConfig:
    """Reproducible configuration of one simulated run."""

    seed: int = 42
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    noise_sigma: float = 0.05
    #: Hard stop (ms of simulated time); inf = run until all events drain.
    max_time_ms: float = float("inf")
    #: Safety valve on the number of processed events.
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")


class Simulation:
    """One run: a policy scheduling a request stream on the emulated cluster."""

    def __init__(
        self,
        policy: SchedulingPolicy,
        requests: Sequence[Request],
        profile_store: ProfileStore,
        *,
        config: SimulationConfig | None = None,
        runtime_perf_model: PerformanceModel | None = None,
        transfer_model: DataTransferModel | None = None,
        setting_name: str = "",
    ) -> None:
        if not requests:
            raise ValueError("a simulation needs at least one request")
        self.config = config or SimulationConfig()
        self.policy = policy
        self.requests = list(requests)
        self.profile_store = profile_store
        self.cluster = ClusterState(config=self.config.cluster)
        self.metrics = MetricsCollector(policy_name=policy.name, setting_name=setting_name)
        self.events = EventLoop()
        self.now_ms = 0.0
        self._tick_scheduled = False
        self._processed_events = 0

        if runtime_perf_model is None:
            runtime_perf_model = NoisyPerformanceModel(
                base=AnalyticalPerformanceModel(),
                rng=derive_rng(self.config.seed, "runtime-noise", policy.name),
                sigma=self.config.noise_sigma,
            )
        self.runtime_perf_model = runtime_perf_model
        self.transfer_model = transfer_model or DataTransferModel()

        prewarmer = PrewarmManager(
            profile_store=profile_store, enabled=self.config.controller.prewarm_enabled
        )
        self.controller = Controller(
            policy=policy,
            cluster=self.cluster,
            profile_store=profile_store,
            runtime_perf_model=self.runtime_perf_model,
            pricing=profile_store.pricing,
            metrics=self.metrics,
            transfer_model=self.transfer_model,
            config=self.config.controller,
            prewarmer=prewarmer,
            event_sink=self.events.push,
        )

        workflows: dict[str, Workflow] = {}
        for request in self.requests:
            workflows.setdefault(request.app_name, request.workflow)
            self.controller.register_workflow(request.workflow)
        self.controller.initialize_warm_pool()

        context = SchedulingContext(
            profile_store=profile_store,
            cluster=self.cluster,
            config_space=profile_store.space,
            pricing=profile_store.pricing,
            workflows=workflows,
            transfer_model=self.transfer_model,
        )
        policy.bind(context)

        for request in self.requests:
            self.events.push(RequestArrivalEvent(time_ms=request.arrival_ms, request=request))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> RunSummary:
        """Process events until the workload drains; returns the run summary."""
        while not self.events.empty:
            if self._processed_events >= self.config.max_events:
                break
            event = self.events.pop()
            if event.time_ms > self.config.max_time_ms:
                break
            self.now_ms = max(self.now_ms, event.time_ms)
            self._handle(event)
            self._processed_events += 1
            self._maybe_schedule_tick()
        return self.metrics.summary()

    def _handle(self, event: Event) -> None:
        if isinstance(event, RequestArrivalEvent):
            self.controller.on_request_arrival(event.request, self.now_ms)
        elif isinstance(event, TaskCompletionEvent):
            self.controller.on_task_completion(event.task, self.now_ms)
        elif isinstance(event, SchedulerTickEvent):
            self._tick_scheduled = False
            self.controller.on_tick(self.now_ms)
        elif isinstance(event, PrewarmCompleteEvent):
            self.controller.on_prewarm_complete(event.container, self.now_ms)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event type {type(event).__name__}")

    def _maybe_schedule_tick(self) -> None:
        """Keep the controller ticking while work is pending."""
        if self._tick_scheduled:
            return
        if not self.controller.has_pending_work():
            return
        self._tick_scheduled = True
        self.events.push(
            SchedulerTickEvent(time_ms=self.now_ms + self.config.controller.tick_interval_ms)
        )

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and experiments)
    # ------------------------------------------------------------------
    @property
    def processed_events(self) -> int:
        """Number of events handled so far."""
        return self._processed_events

    def config_space(self) -> ConfigurationSpace:
        """The configuration space the run uses."""
        return self.profile_store.space

    def pricing(self) -> PricingModel:
        """The pricing model the run uses."""
        return self.profile_store.pricing
