"""Container / function-residency lifecycle model.

A serverless function executes inside a container that holds its DNN model.
The first time a function is placed on a node the container must be created
and the model loaded — the cold-start times of Table 3 (seconds to tens of
seconds).  Once the function is *resident* on the node, further invocations
are warm starts; with MIG/MPS-style GPU sharing a resident function can
serve several concurrent tasks (each task's compute is bounded separately by
the vCPU/vGPU reservations tracked by the invoker).  An idle resident
container is unloaded after the keep-alive window (OpenWhisk's fixed 10
minutes).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["ContainerState", "Container", "DEFAULT_KEEP_ALIVE_MS"]

#: OpenWhisk's fixed keep-alive policy: 10 minutes.
DEFAULT_KEEP_ALIVE_MS: float = 10 * 60 * 1000.0

_container_ids = itertools.count()


class ContainerState(enum.Enum):
    """Lifecycle states of a container."""

    #: Being created (cold start in progress, possibly triggered by the prewarmer).
    STARTING = "starting"
    #: Resident and idle; new tasks get warm starts.
    WARM = "warm"
    #: Resident with at least one task executing.
    BUSY = "busy"
    #: Unloaded (keep-alive expired); kept only for bookkeeping.
    STOPPED = "stopped"


@dataclass(slots=True)
class Container:
    """One function's residency on one invoker (slotted: hot-path record)."""

    function_name: str
    invoker_id: int
    state: ContainerState = ContainerState.STARTING
    #: Absolute time at which the container becomes warm (end of cold start).
    warm_at_ms: float = 0.0
    #: Absolute time at which an idle warm container expires.
    expires_at_ms: float = float("inf")
    #: Number of tasks currently executing in this container.
    active_tasks: int = 0
    container_id: int = field(default_factory=lambda: next(_container_ids))
    #: Lifecycle listener installed by the owning invoker; receives
    #: ``(container, old_state, new_state)`` after every state change so the
    #: invoker/cluster indexes stay incrementally consistent.
    _listener: Callable[["Container", ContainerState, ContainerState], None] | None = field(
        default=None, repr=False, compare=False
    )

    def bind_listener(
        self, listener: Callable[["Container", ContainerState, ContainerState], None] | None
    ) -> None:
        """Install the state-change listener (one owner at a time)."""
        self._listener = listener

    def _transition(self, new_state: ContainerState) -> None:
        old = self.state
        self.state = new_state
        if self._listener is not None and old is not new_state:
            self._listener(self, old, new_state)

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def mark_warm(self, now_ms: float, keep_alive_ms: float = DEFAULT_KEEP_ALIVE_MS) -> None:
        """Transition to WARM (idle, resident) and (re)arm the keep-alive timer."""
        if self.state == ContainerState.STOPPED:
            raise RuntimeError(f"container {self.container_id} is stopped and cannot be warmed")
        if self.active_tasks > 0:
            raise RuntimeError(
                f"container {self.container_id} still has {self.active_tasks} active tasks"
            )
        self.warm_at_ms = min(self.warm_at_ms, now_ms) if self.warm_at_ms else now_ms
        self.expires_at_ms = now_ms + keep_alive_ms
        self._transition(ContainerState.WARM)

    def assign_task(self) -> None:
        """A task starts executing in this container."""
        if self.state == ContainerState.STOPPED:
            raise RuntimeError(f"container {self.container_id} is stopped")
        self.active_tasks += 1
        self.expires_at_ms = float("inf")
        self._transition(ContainerState.BUSY)

    def release_task(self, now_ms: float, keep_alive_ms: float = DEFAULT_KEEP_ALIVE_MS) -> None:
        """A task finished; when the last one leaves, the container idles warm."""
        if self.active_tasks <= 0:
            raise RuntimeError(f"container {self.container_id} has no active task to release")
        self.active_tasks -= 1
        if self.active_tasks == 0:
            self.expires_at_ms = now_ms + keep_alive_ms
            self._transition(ContainerState.WARM)

    def mark_stopped(self) -> None:
        """Unload the container."""
        if self.active_tasks > 0:
            raise RuntimeError(
                f"container {self.container_id} cannot be stopped with active tasks"
            )
        self.expires_at_ms = float("-inf")
        self._transition(ContainerState.STOPPED)

    def mark_evicted(self) -> None:
        """Force-stop regardless of active tasks (the node was evicted).

        Unlike :meth:`mark_stopped` this drops any in-flight work: the
        controller decides separately whether that work is requeued or
        failed.  Resetting ``expires_at_ms`` to ``-inf`` makes every armed
        :class:`~repro.cluster.events.ContainerExpireEvent` miss its lazy
        cancellation guard, so stale expiry timers become no-ops.
        """
        self.active_tasks = 0
        self.expires_at_ms = float("-inf")
        self._transition(ContainerState.STOPPED)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_resident(self, now_ms: float) -> bool:
        """True if the function is loaded on the node (warm start possible)."""
        if self.state == ContainerState.BUSY:
            return True
        return (
            self.state == ContainerState.WARM
            and self.warm_at_ms <= now_ms
            and now_ms < self.expires_at_ms
        )

    def is_warm_idle(self, now_ms: float) -> bool:
        """True if the container is resident and currently idle."""
        return (
            self.state == ContainerState.WARM
            and self.warm_at_ms <= now_ms
            and now_ms < self.expires_at_ms
        )

    def is_expired(self, now_ms: float) -> bool:
        """True if an idle warm container has outlived its keep-alive window."""
        return self.state == ContainerState.WARM and now_ms >= self.expires_at_ms
