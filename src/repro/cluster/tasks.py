"""Task records: a batched function invocation dispatched to an invoker."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.profiles.configuration import Configuration
from repro.workloads.request import Job

__all__ = ["Task"]

_task_ids = itertools.count()


@dataclass(slots=True)
class Task:
    """One batched invocation of a serverless function on one invoker.

    The latency breakdown mirrors what the emulation charges a task for:
    scheduling overhead (optionally), a cold start if no warm container was
    available, inter-stage data transfer (local or remote depending on
    placement), and the execution time predicted by the (noisy) performance
    model.  Slotted: large runs create one Task per dispatched batch, and
    the compact layout both shrinks the record and speeds field access on
    the completion hot path.
    """

    app_name: str
    stage_id: str
    function_name: str
    jobs: list[Job]
    config: Configuration
    invoker_id: int
    #: When the controller dispatched the task.
    dispatch_ms: float
    #: Scheduling overhead charged before the task starts.
    overhead_ms: float = 0.0
    cold_start_ms: float = 0.0
    transfer_ms: float = 0.0
    exec_ms: float = 0.0
    #: Cost of holding the task's resources for its whole duration (cents).
    cost_cents: float = 0.0
    policy_name: str = ""
    task_id: int = field(default_factory=lambda: next(_task_ids))

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a task must contain at least one job")
        if len(self.jobs) > self.config.batch_size:
            raise ValueError(
                f"task holds {len(self.jobs)} jobs but its configuration only "
                f"allows a batch of {self.config.batch_size}"
            )

    # ------------------------------------------------------------------
    # Derived times
    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        """Number of jobs actually batched (may be below the config's batch)."""
        return len(self.jobs)

    @property
    def start_ms(self) -> float:
        """When the task starts occupying resources."""
        return self.dispatch_ms + self.overhead_ms

    @property
    def duration_ms(self) -> float:
        """Resource-holding duration (cold start + transfer + execution)."""
        return self.cold_start_ms + self.transfer_ms + self.exec_ms

    @property
    def finish_ms(self) -> float:
        """Absolute completion time."""
        return self.start_ms + self.duration_ms

    @property
    def was_cold_start(self) -> bool:
        """True if the task paid a cold start."""
        return self.cold_start_ms > 0.0

    @property
    def cost_per_job_cents(self) -> float:
        """Task cost split evenly over its jobs."""
        return self.cost_cents / len(self.jobs)

    def waiting_ms(self) -> float:
        """Mean time the task's jobs spent queueing before dispatch."""
        return sum(max(0.0, self.dispatch_ms - j.ready_ms) for j in self.jobs) / len(self.jobs)
