"""Inter-stage data transfer model.

When consecutive stages of a workflow run on the same invoker the output of
the predecessor can be passed through the local file system; otherwise it
must travel through remote storage (as in OpenWhisk/CouchDB or S3-style
object stores).  The ESG paper's data-locality policy exists exactly to turn
remote transfers into local ones, so the simulator charges a latency for
each according to the transferred size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ensure_non_negative, ensure_positive

__all__ = ["DataTransferModel"]


@dataclass(frozen=True)
class DataTransferModel:
    """Latency model for moving a stage's input data.

    Parameters
    ----------
    local_bandwidth_mb_per_s:
        Effective bandwidth when producer and consumer share a node
        (local file system / page cache).
    remote_bandwidth_mb_per_s:
        Effective bandwidth through remote storage (two network hops:
        upload by the producer is assumed overlapped; the consumer pays the
        download).
    local_latency_ms / remote_latency_ms:
        Fixed per-transfer latency (metadata operations, connection setup).
    """

    local_bandwidth_mb_per_s: float = 2000.0
    remote_bandwidth_mb_per_s: float = 100.0
    local_latency_ms: float = 0.2
    remote_latency_ms: float = 8.0

    def __post_init__(self) -> None:
        ensure_positive(self.local_bandwidth_mb_per_s, "local_bandwidth_mb_per_s")
        ensure_positive(self.remote_bandwidth_mb_per_s, "remote_bandwidth_mb_per_s")
        ensure_non_negative(self.local_latency_ms, "local_latency_ms")
        ensure_non_negative(self.remote_latency_ms, "remote_latency_ms")

    def local_transfer_ms(self, size_mb: float) -> float:
        """Latency of a same-node transfer of ``size_mb`` megabytes."""
        ensure_non_negative(size_mb, "size_mb")
        return self.local_latency_ms + 1000.0 * size_mb / self.local_bandwidth_mb_per_s

    def remote_transfer_ms(self, size_mb: float) -> float:
        """Latency of a cross-node transfer of ``size_mb`` megabytes."""
        ensure_non_negative(size_mb, "size_mb")
        return self.remote_latency_ms + 1000.0 * size_mb / self.remote_bandwidth_mb_per_s

    def transfer_ms(self, size_mb: float, *, local: bool) -> float:
        """Latency of a transfer, dispatching on locality."""
        if local:
            return self.local_transfer_ms(size_mb)
        return self.remote_transfer_ms(size_mb)
