"""The OpenWhisk-like controller: AFW queues, round-robin scanning, dispatch.

This is the component the ESG paper modifies ("ESG runs on the Controller
of a serverless platform").  The controller owns the app-function-wise job
queues, scans them round-robin, asks the plugged-in scheduling policy for a
configuration priority queue, tries the candidates against the invokers,
maintains a recheck list for queues that could not be placed, charges cold
starts / data transfers / scheduling overhead, and advances requests through
their workflow DAG as tasks complete.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Literal

from repro.cluster.cluster import ClusterState
from repro.cluster.container import Container, ContainerState
from repro.cluster.datatransfer import DataTransferModel
from repro.cluster.events import (
    ContainerExpireEvent,
    Event,
    PrewarmCompleteEvent,
    TaskCompletionEvent,
)
from repro.cluster.metrics import MetricsCollector
from repro.cluster.policy_api import AFWQueue, SchedulingPolicy
from repro.cluster.prewarm import PrewarmManager
from repro.cluster.tasks import Task
from repro.profiles.configuration import Configuration
from repro.profiles.perf_model import PerformanceModel
from repro.profiles.pricing import PricingModel
from repro.profiles.specs import FunctionSpec
from repro.profiles.profiler import ProfileStore
from repro.workloads.dag import Workflow
from repro.workloads.request import Job, Request

__all__ = ["ControllerConfig", "Controller"]

_INF = float("inf")


@dataclass(frozen=True)
class ControllerConfig:
    """Tunable behaviour of the controller (identical across policies)."""

    #: Interval between controller scheduling passes.
    tick_interval_ms: float = 2.0
    #: After this many failed recheck rounds a queue is force-dispatched with
    #: the minimum configuration ("to ensure progress", Section 3.1).
    recheck_rounds_before_min: int = 3
    #: Whether the measured / reported scheduling overhead delays the task.
    count_overhead_in_latency: bool = True
    #: Initial warm container placement: one per (app, stage) on its home
    #: invoker, on every invoker, or nowhere.
    initial_warm: Literal["home", "all", "none"] = "home"
    #: Enable the EWMA prewarmer.
    prewarm_enabled: bool = True

    def __post_init__(self) -> None:
        if self.tick_interval_ms <= 0:
            raise ValueError("tick_interval_ms must be positive")
        if self.recheck_rounds_before_min < 1:
            raise ValueError("recheck_rounds_before_min must be >= 1")
        if self.initial_warm not in ("home", "all", "none"):
            raise ValueError(f"invalid initial_warm {self.initial_warm!r}")


@dataclass
class Controller:
    """Platform controller wiring queues, policy, cluster and metrics together."""

    policy: SchedulingPolicy
    cluster: ClusterState
    profile_store: ProfileStore
    runtime_perf_model: PerformanceModel
    pricing: PricingModel
    metrics: MetricsCollector
    transfer_model: DataTransferModel = field(default_factory=DataTransferModel)
    config: ControllerConfig = field(default_factory=ControllerConfig)
    prewarmer: PrewarmManager | None = None
    #: Callback used to emit new events into the simulation's event loop.
    event_sink: Callable[[Event], None] = field(default=lambda event: None)
    #: ``loop_mode="fast"``: the simulation's FastEventLoop, set by the
    #: simulator so the hot dispatch/expiry paths can push heap entries
    #: directly instead of going through ``event_sink``; ``None`` keeps
    #: every emission on the sink callback (the compat anchor, and any
    #: embedder that wires a custom sink).
    fast_events: "object | None" = field(default=None, repr=False)
    #: ``loop_mode="fast"``: gate per-tick memoization (profile-spec
    #: lookups in :meth:`_dispatch`).  Compat mode keeps the original
    #: per-call lookups as the byte-identity parity anchor.
    fast_mode: bool = False

    _queues: dict[tuple[str, str], AFWQueue] = field(default_factory=dict, repr=False)
    _workflows: dict[str, Workflow] = field(default_factory=dict, repr=False)
    _recheck: list[tuple[str, str]] = field(default_factory=list, repr=False)
    _task_containers: dict[int, Container] = field(default_factory=dict, repr=False)
    _rr_offset: int = 0
    #: Keys of queues currently holding jobs (the scheduling "dirty set").
    _nonempty: set[tuple[str, str]] = field(default_factory=set, repr=False)
    #: Total jobs waiting across all queues (counter behind pending_jobs()).
    _pending_jobs: int = 0
    #: Cached sorted queue-key list; invalidated when a queue is created.
    _sorted_keys: list[tuple[str, str]] | None = field(default=None, repr=False)
    #: Armed keep-alive deadlines (indexed mode): a min-heap of
    #: ``(expires_at_ms, seq, container)`` drained at every tick so the
    #: prewarmer/scheduler never observe a stale-expired container, no
    #: matter how same-timestamp events interleave in the simulation loop.
    _expiry_heap: list[tuple[float, int, Container]] = field(default_factory=list, repr=False)
    _expiry_seq: "itertools.count[int]" = field(default_factory=itertools.count, repr=False)
    #: Fast-mode memo: function name -> profiled FunctionSpec (immutable for
    #: the life of a run; compat mode re-reads the profile store per dispatch).
    _spec_cache: dict[str, "FunctionSpec"] = field(default_factory=dict, repr=False)
    #: Fast-mode memo: one canonical :class:`Configuration` per
    #: ``(batch, vcpus, vgpus)`` shape, replacing the fresh frozen-dataclass
    #: allocation (plus validation) every clip would otherwise pay.
    _batch_cache: dict[tuple[int, int, int], Configuration] = field(
        default_factory=dict, repr=False
    )
    #: Fast-mode memo: ``(vcpus, vgpus)`` -> price rate in cents/ms.
    _rate_cache: dict[tuple[int, int], float] = field(default_factory=dict, repr=False)
    #: Fast-mode memo: function name -> ``(local, remote)`` transfer latency
    #: (pure in the function's input size and the fixed transfer model).
    _transfer_cache: dict[str, tuple[float, float]] = field(
        default_factory=dict, repr=False
    )
    #: Churn (dynamic cluster membership) state, armed by
    #: :meth:`enable_churn`.  Off by default so static runs pay nothing:
    #: the in-flight task map is only maintained while a churn schedule is
    #: active.
    _churn: bool = field(default=False, repr=False)
    #: What happens to tasks in flight on an evicted node.
    _on_evict: str = field(default="requeue", repr=False)
    #: Tasks whose invoker left before their completion event fired; their
    #: TaskCompletionEvents pop as no-ops (lazy cancellation).
    _cancelled_tasks: set[int] = field(default_factory=set, repr=False)
    #: task_id -> in-flight task (only maintained when churn is enabled).
    _inflight: dict[int, Task] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        # The cluster's index mode and the collector's storage mode are both
        # frozen at construction, so snapshot them once instead of chasing
        # the property chains on every tick.
        self._indexed: bool = self.cluster.indexed
        self._metrics_streaming: bool = self.metrics.is_streaming
        # Policies that model their scheduling overhead deterministically
        # let the fast path skip the wall-clock measurement around plan().
        self._skip_plan_timing: bool = self.fast_mode and getattr(
            self.policy, "deterministic_overhead", False
        )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def register_workflow(self, workflow: Workflow) -> None:
        """Make a workflow known (creates its AFW queues lazily)."""
        self._workflows.setdefault(workflow.name, workflow)

    def initialize_warm_pool(self) -> None:
        """Create the initial warm containers according to the config.

        ``"home"`` (default) warms one container per (application, stage) on
        its home invoker — the state a production deployment converges to
        after a few invocations under OpenWhisk's hash-based placement.
        ``"all"`` warms every function everywhere (no cold starts at all);
        ``"none"`` starts fully cold.
        """
        if self.config.initial_warm == "none":
            return
        for workflow in self._workflows.values():
            for stage in workflow.stages():
                if self.config.initial_warm == "home":
                    home = self.cluster.home_invoker_id(workflow.name, stage.function_name)
                    invoker = self.cluster.invoker(home)
                    if not invoker.has_warm_container(stage.function_name, 0.0):
                        self._arm_expiry(invoker.create_warm_container(stage.function_name, 0.0))
                else:  # "all"
                    for invoker in self.cluster:
                        if not invoker.has_warm_container(stage.function_name, 0.0):
                            self._arm_expiry(
                                invoker.create_warm_container(stage.function_name, 0.0)
                            )

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def queue_for(self, app_name: str, stage_id: str) -> AFWQueue:
        """Return (creating if needed) the AFW queue of (app, stage)."""
        key = (app_name, stage_id)
        if key not in self._queues:
            workflow = self._workflows[app_name]
            self._queues[key] = AFWQueue(
                app_name=app_name,
                stage_id=stage_id,
                function_name=workflow.function_of(stage_id),
                workflow=workflow,
                size_listener=self._queue_size_changed,
            )
            self._sorted_keys = None
        return self._queues[key]

    def _queue_size_changed(self, queue: AFWQueue, delta: int) -> None:
        """Maintain the non-empty set and pending counter on queue mutation."""
        self._pending_jobs += delta
        if queue.jobs:
            self._nonempty.add(queue.key)
        else:
            self._nonempty.discard(queue.key)

    def _all_keys_sorted(self) -> list[tuple[str, str]]:
        """The sorted queue keys, cached (queues are created, never removed)."""
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._queues)
        return self._sorted_keys

    def queues(self) -> list[AFWQueue]:
        """All existing AFW queues (deterministic order)."""
        return [self._queues[key] for key in self._all_keys_sorted()]

    def pending_jobs(self) -> int:
        """Total number of jobs waiting across all queues."""
        return self._pending_jobs

    def has_pending_work(self) -> bool:
        """True if any queue holds a job."""
        return self._pending_jobs > 0

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def on_request_arrival(self, request: Request, now_ms: float) -> None:
        """Register a new request and enqueue its source-stage jobs."""
        if self.fast_mode:
            workflow = request.workflow
            app_name = workflow.name
            self._workflows.setdefault(app_name, workflow)
            # Inlined ``metrics.register_request`` (live collector).
            metrics = self.metrics
            if self._metrics_streaming:
                metrics._total.registered += 1
                acc = metrics._per_app.get(app_name)
                if acc is None:
                    acc = metrics._app(app_name)
                acc.registered += 1
                if acc.slo_ms is None:
                    acc.slo_ms = request.slo_ms
                if request.completed_ms is not None:
                    # Synthetic feeds may register pre-completed requests.
                    metrics._fold_completion_fast(request)
            else:
                metrics.requests.append(request)
            topo = workflow.topology()
            queues = self._queues
            nonempty = self._nonempty
            for stage_id in topo.sources:
                key = (app_name, stage_id)
                queue = queues.get(key)
                if queue is None:
                    queue = self.queue_for(app_name, stage_id)
                # Inlined ``queue.push``: the job key always matches the
                # queue here, so the defensive validation and the listener
                # indirection reduce to the append plus the two counters.
                queue.jobs.append(Job(request=request, stage_id=stage_id, ready_ms=now_ms))
                self._pending_jobs += 1
                nonempty.add(key)
            prewarmer = self.prewarmer
            if prewarmer is not None:
                for stage in topo.stages:
                    prewarmer.observe_arrival(app_name, stage.function_name, now_ms)
            return
        self.register_workflow(request.workflow)
        self.metrics.register_request(request)
        for stage_id in request.workflow.sources():
            queue = self.queue_for(request.app_name, stage_id)
            queue.push(Job(request=request, stage_id=stage_id, ready_ms=now_ms))
        if self.prewarmer is not None:
            for stage in request.workflow.stages():
                self.prewarmer.observe_arrival(request.app_name, stage.function_name, now_ms)

    def on_task_completion(self, task: Task, now_ms: float) -> None:
        """Release resources, advance requests, enqueue successor jobs."""
        if self.fast_mode:
            self._on_task_completion_fast(task, now_ms)
            return
        if self._churn:
            if task.task_id in self._cancelled_tasks:
                # The task's invoker left mid-flight: resources and container
                # are gone already, and its jobs were requeued or failed.
                self._cancelled_tasks.discard(task.task_id)
                return
            self._inflight.pop(task.task_id, None)
        invoker = self.cluster.invoker(task.invoker_id)
        invoker.release(task.config)
        container = self._task_containers.pop(task.task_id, None)
        if container is not None:
            container.release_task(now_ms, invoker.keep_alive_ms)
            self._arm_expiry(container)

        for job in task.jobs:
            request = job.request
            if self._churn and request.evicted_ms is not None:
                # Terminally evicted (on_evict="fail"): surviving sibling
                # tasks still release resources above, but the request's DAG
                # does not advance any further.
                continue
            was_complete = request.is_complete
            request.record_stage_completion(task.stage_id, now_ms, task.invoker_id)
            if request.is_complete and not was_complete:
                # Exactly-once completion notification: retained collectors
                # ignore it, streaming collectors fold the latency sample.
                self.metrics.record_completion(request)
            for succ in request.workflow.successors(task.stage_id):
                if request.stage_is_ready(succ):
                    queue = self.queue_for(request.app_name, succ)
                    queue.push(Job(request=request, stage_id=succ, ready_ms=now_ms))

    def _on_task_completion_fast(self, task: Task, now_ms: float) -> None:
        """``loop_mode="fast"`` variant of :meth:`on_task_completion`.

        Same observable effects with the constant costs stripped: the
        resource release mutates the counters directly (the reserve/release
        pairing is controller-internal, so the defensive re-validation is
        skipped) and ends in the same single capacity notification; stage
        bookkeeping reads the workflow's cached topology instead of
        re-copying adjacency lists, and the request-completion fold keeps
        the original ``max`` over sink completion times.
        """
        if self._churn:
            if task.task_id in self._cancelled_tasks:
                self._cancelled_tasks.discard(task.task_id)
                return
            self._inflight.pop(task.task_id, None)
        invoker_id = task.invoker_id
        invoker = self.cluster.invokers[invoker_id]
        config = task.config
        invoker.gpu._used_vgpus -= config.vgpus
        invoker._used_vcpus -= config.vcpus
        # Inlined ``invoker._capacity_changed`` (one frame less per event).
        if not invoker._suspend_capacity_notify:
            capacity_cb = invoker._on_capacity_change
            if capacity_cb is not None:
                capacity_cb(invoker)
        container = self._task_containers.pop(task.task_id, None)
        if container is not None:
            # Inlined ``container.release_task``: the reserve/assign pairing
            # guarantees an active BUSY container, and the BUSY -> WARM
            # transition is invisible to the invoker's state listener (both
            # states are resident), so only the counters change.
            container.active_tasks -= 1
            if container.active_tasks == 0:
                container.expires_at_ms = now_ms + invoker.keep_alive_ms
                container.state = ContainerState.WARM
                self._arm_expiry(container)

        stage_id = task.stage_id
        app_name = task.app_name
        metrics = self.metrics
        streaming = self._metrics_streaming
        queues = self._queues
        for job in task.jobs:
            request = job.request
            if self._churn and request.evicted_ms is not None:
                continue
            topo = request.workflow.topology()
            scm = request.stage_completion_ms
            if stage_id in scm:
                raise ValueError(
                    f"stage {stage_id!r} of request {request.request_id} completed twice"
                )
            was_complete = request.completed_ms is not None
            scm[stage_id] = now_ms
            request.stage_invoker[stage_id] = invoker_id
            sinks = topo.sinks
            for sink in sinks:
                if sink not in scm:
                    break
            else:
                if len(sinks) == 1:
                    request.completed_ms = scm[sinks[0]]
                else:
                    request.completed_ms = max(scm[sink] for sink in sinks)
                if not was_complete and streaming:
                    # Retained mode derives completion by scanning, so only
                    # the streaming fold is charged here.
                    metrics._fold_completion_fast(request)
            successors = topo.succ[stage_id]
            if successors:
                pred_of = topo.pred
                for succ in successors:
                    for pred in pred_of[succ]:
                        if pred not in scm:
                            break
                    else:
                        key = (app_name, succ)
                        queue = queues.get(key)
                        if queue is None:
                            queue = self.queue_for(app_name, succ)
                        queue.jobs.append(Job(request=request, stage_id=succ, ready_ms=now_ms))
                        self._pending_jobs += 1
                        self._nonempty.add(key)

    def on_prewarm_complete(self, container: Container, now_ms: float) -> None:
        """A prewarmed container finished its cold start."""
        if container.state == ContainerState.STARTING:
            keep_alive = self.cluster.invoker(container.invoker_id).keep_alive_ms
            container.mark_warm(now_ms, keep_alive)
            self._arm_expiry(container)
        self.metrics.record_prewarm()

    def _arm_expiry(self, container: Container) -> None:
        """Schedule the container's keep-alive expiry (indexed mode only).

        Scan mode keeps the per-tick :meth:`ClusterState.expire_containers`
        sweep instead.  The deadline goes to two places: the controller's
        expiry heap (drained at every tick, which guarantees ticks observe
        exactly the containers the scan path would) and a
        :class:`ContainerExpireEvent` in the simulation loop (the wake-up
        between ticks).  Re-arming is handled lazily on both: a stale entry
        whose deadline no longer matches the container's ``expires_at_ms``
        is a no-op.
        """
        if (
            self._indexed
            and container.state is ContainerState.WARM
            and container.expires_at_ms != float("inf")
        ):
            deadline = container.expires_at_ms
            heapq.heappush(
                self._expiry_heap,
                (deadline, next(self._expiry_seq), container),
            )
            fe = self.fast_events
            if fe is not None:
                # Inlined ``FastEventLoop.push`` for the housekeeping heap:
                # ContainerExpireEvent keeps the default sort priority 1 and
                # its deadline (now + keep-alive) is always >= 0.
                heapq.heappush(
                    fe._housekeeping,
                    (deadline, 1, next(fe._counter), ContainerExpireEvent(time_ms=deadline, container=container)),
                )
            else:
                self.event_sink(ContainerExpireEvent(time_ms=deadline, container=container))

    def _drain_expired_containers(self, now_ms: float) -> None:
        """Stop every armed container whose deadline has passed (<= now)."""
        heap = self._expiry_heap
        while heap and heap[0][0] <= now_ms:
            deadline, _seq, container = heapq.heappop(heap)
            if (
                container.state is ContainerState.WARM
                and container.expires_at_ms == deadline
            ):
                container.mark_stopped()

    def on_tick(self, now_ms: float) -> None:
        """One controller round: expire containers, prewarm, scan queues."""
        if self._indexed:
            # Amortised O(due): mirrors the scan path's inclusive
            # ``now >= expires_at`` sweep without touching live containers,
            # and makes tick-time expiry independent of how same-timestamp
            # events happen to be ordered in the simulation heap.
            self._drain_expired_containers(now_ms)
        else:
            self.cluster.expire_containers(now_ms)
        if self.prewarmer is not None and self.config.prewarm_enabled:
            for plan in self.prewarmer.plan(self.cluster, now_ms):
                container = self._find_starting_container(plan.invoker_id, plan.function_name)
                if container is not None:
                    self.event_sink(
                        PrewarmCompleteEvent(time_ms=plan.ready_at_ms, container=container)
                    )
        self.run_scheduling_pass(now_ms)

    def _find_starting_container(self, invoker_id: int, function_name: str) -> Container | None:
        for container in self.cluster.invoker(invoker_id).containers_for(function_name):
            if container.state == ContainerState.STARTING:
                return container
        return None

    # ------------------------------------------------------------------
    # Cluster churn (join / leave / resize housekeeping events)
    # ------------------------------------------------------------------
    def enable_churn(self, on_evict: str = "requeue") -> None:
        """Arm the churn bookkeeping (in-flight task map, eviction policy).

        Called once by the simulation before the run when a
        :class:`~repro.cluster.churn.ChurnSchedule` is configured; static
        runs never pay for the extra per-dispatch dict write.
        """
        if on_evict not in ("requeue", "fail"):
            raise ValueError(f"on_evict must be 'requeue' or 'fail', got {on_evict!r}")
        self._churn = True
        self._on_evict = on_evict

    def on_invoker_join(self, vcpus: int | None, vgpus: int | None, now_ms: float) -> None:
        """A new node joins the cluster."""
        self.cluster.apply_join(vcpus, vgpus)

    def on_invoker_resize(
        self, invoker_id: int, vcpus: int, vgpus: int, now_ms: float
    ) -> None:
        """A node's capacity target changes (harvest shrink/grow)."""
        self.cluster.apply_resize(invoker_id, vcpus, vgpus)

    def on_invoker_leave(self, invoker_id: int, now_ms: float) -> None:
        """A node is evicted: drop its containers and settle in-flight work.

        The cluster tombstones the node (containers force-stopped through
        the lifecycle listeners, capacity zeroed); every task that was
        executing there is lazily cancelled — its pending
        ``TaskCompletionEvent`` becomes a no-op — and its jobs are either
        requeued on the AFW queues or failed with the ``evicted`` outcome,
        per the schedule's ``on_evict`` policy.
        """
        invoker = self.cluster.invoker(invoker_id)
        if not invoker.active:
            return
        doomed = sorted(
            (task for task in self._inflight.values() if task.invoker_id == invoker_id),
            key=lambda task: task.task_id,
        )
        self.cluster.apply_leave(invoker_id)
        requeued = 0
        for task in doomed:
            del self._inflight[task.task_id]
            self._cancelled_tasks.add(task.task_id)
            self._task_containers.pop(task.task_id, None)
            self.metrics.record_task_evicted()
            if self._on_evict == "requeue":
                for job in task.jobs:
                    request = job.request
                    if request.evicted_ms is not None or request.completed_ms is not None:
                        continue
                    queue = self.queue_for(task.app_name, task.stage_id)
                    queue.push(Job(request=request, stage_id=task.stage_id, ready_ms=now_ms))
                    requeued += 1
            else:
                for job in task.jobs:
                    self._evict_request(job.request, now_ms)
        if requeued:
            self.metrics.record_requeued_jobs(requeued)

    def _evict_request(self, request: Request, now_ms: float) -> None:
        """Terminally fail ``request`` with the ``evicted`` outcome."""
        if request.evicted_ms is not None or request.completed_ms is not None:
            return
        request.evicted_ms = now_ms
        self.metrics.record_request_evicted(request)
        self._purge_request_jobs(request)

    def _purge_request_jobs(self, request: Request) -> None:
        """Drop every queued job of ``request`` (it will never be scheduled).

        Rebuilds each affected deque in place and maintains the pending
        counter / non-empty set directly, the same way the fast dispatch
        path does.
        """
        for key in self._all_keys_sorted():
            queue = self._queues[key]
            jobs = queue.jobs
            if not jobs:
                continue
            kept = [job for job in jobs if job.request is not request]
            removed = len(jobs) - len(kept)
            if not removed:
                continue
            jobs.clear()
            jobs.extend(kept)
            self._pending_jobs -= removed
            if not jobs:
                self._nonempty.discard(key)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def run_scheduling_pass(self, now_ms: float) -> int:
        """Scan the queues round-robin once; returns the number of dispatches.

        Indexed mode visits only the queues in the non-empty "dirty" set, in
        the exact cyclic order the full scan would have reached them — an
        empty queue is a no-op in the scan (its ``continue`` also skips the
        recheck retry), so the filtered walk dispatches identically while
        touching O(non-empty) queues instead of O(all).
        """
        if self._indexed:
            keys = self._all_keys_sorted()
            if not keys:
                return 0
            n = len(keys)
            if self.fast_mode and len(self._nonempty) <= 1:
                # Rotating a list of at most one element is the identity, so
                # the pivot lookup and bisect split are skipped outright —
                # the common shape of single-application streaming runs.
                # repro: allow[REP004] guarded by len(_nonempty) <= 1 above — every ordering of at most one element is equal
                order = list(self._nonempty)
            else:
                pivot = keys[self._rr_offset % n]
                nonempty = sorted(self._nonempty)
                split = bisect_left(nonempty, pivot)
                order = nonempty[split:] + nonempty[:split]
        else:
            keys = sorted(self._queues)
            if not keys:
                return 0
            n = len(keys)
            order = [keys[(self._rr_offset + i) % n] for i in range(n)]
        dispatched = 0
        self._rr_offset = (self._rr_offset + 1) % n

        for key in order:
            queue = self._queues[key]
            if queue.is_empty:
                continue
            # A queue may yield several tasks per visit (e.g. many small
            # batches when resources are plentiful); cap the iterations so a
            # single visit cannot starve the other queues.
            any_dispatch = False
            for _ in range(8):
                if queue.is_empty or not self._try_schedule_queue(queue, now_ms):
                    break
                any_dispatch = True
                dispatched += 1
            if any_dispatch:
                queue.recheck_rounds = 0
                if key in self._recheck:
                    self._recheck.remove(key)
            elif not queue.is_empty and key not in self._recheck:
                self._recheck.append(key)
            # After finishing a queue, retry the recheck list (Section 3.1).
            dispatched += self._process_recheck_list(now_ms)
        return dispatched

    def _process_recheck_list(self, now_ms: float) -> int:
        """Retry queues parked in the recheck list; force-dispatch stale ones."""
        if not self._recheck:
            return 0
        dispatched = 0
        for key in list(self._recheck):
            queue = self._queues[key]
            if queue.is_empty:
                self._recheck.remove(key)
                queue.recheck_rounds = 0
                continue
            if self._try_schedule_queue(queue, now_ms):
                dispatched += 1
                self._recheck.remove(key)
                queue.recheck_rounds = 0
                continue
            queue.recheck_rounds += 1
            if queue.recheck_rounds >= self.config.recheck_rounds_before_min:
                if self._force_minimum_dispatch(queue, now_ms):
                    dispatched += 1
                    self._recheck.remove(key)
                    queue.recheck_rounds = 0
        return dispatched

    def _try_schedule_queue(self, queue: AFWQueue, now_ms: float) -> bool:
        """Plan + dispatch one queue; returns True if a task was dispatched."""
        if self._skip_plan_timing:
            # The policy models its overhead deterministically, so the
            # wall-clock measurement around plan() would be discarded.
            decision = self.policy.plan(queue, now_ms)
            if decision is None:
                return False
            overhead_ms = decision.reported_overhead_ms
            if overhead_ms is None:
                overhead_ms = 0.0
        else:
            # repro: allow[REP001] compat fallback for policies that do not model their overhead — the measurement is discarded whenever reported_overhead_ms is set, and all built-in policies set it
            start = _time.perf_counter()
            decision = self.policy.plan(queue, now_ms)
            # repro: allow[REP001] second half of the fallback measurement above
            measured_ms = (_time.perf_counter() - start) * 1000.0
            if decision is None:
                return False
            overhead_ms = (
                decision.reported_overhead_ms
                if decision.reported_overhead_ms is not None
                else measured_ms
            )

        if self.fast_mode:
            # Inlined ``metrics.record_overhead`` (live collector).
            if overhead_ms < 0:
                raise ValueError(f"overhead must be >= 0, got {overhead_ms}")
            self.metrics.overhead_ms_samples.append(overhead_ms)
            if decision.used_preplanned:
                self.metrics.record_plan_attempt(miss=decision.plan_miss)
            qlen = len(queue.jobs)
            select_invoker = self.policy.select_invoker
            invokers = self.cluster.invokers
            for candidate in decision.candidates:
                if candidate.batch_size > qlen:
                    config = self._config_with_batch(candidate, qlen if qlen else 1)
                else:
                    config = candidate
                invoker_id = select_invoker(config, queue, now_ms)
                if invoker_id is None:
                    continue
                invoker = invokers[invoker_id]
                if config.vcpus > invoker.total_vcpus - invoker._used_vcpus:
                    continue
                gpu = invoker.gpu
                if config.vgpus > gpu.total_vgpus - gpu._used_vgpus:
                    continue
                self._dispatch_fast(queue, config, invoker_id, now_ms, overhead_ms)
                return True
            return False

        self.metrics.record_overhead(overhead_ms)
        if decision.used_preplanned:
            self.metrics.record_plan_attempt(miss=decision.plan_miss)

        for candidate in decision.candidates:
            config = self._clip_to_queue(candidate, queue)
            invoker_id = self.policy.select_invoker(config, queue, now_ms)
            if invoker_id is None:
                continue
            invoker = self.cluster.invoker(invoker_id)
            if not invoker.can_fit(config):
                continue
            self._dispatch(queue, config, invoker_id, now_ms, overhead_ms)
            return True
        return False

    def _force_minimum_dispatch(self, queue: AFWQueue, now_ms: float) -> bool:
        """Dispatch the queue head with the minimum configuration if possible."""
        config = self.profile_store.space.minimum
        invoker_id = self.policy.select_invoker(config, queue, now_ms)
        if invoker_id is None or not self.cluster.invoker(invoker_id).can_fit(config):
            fallback = self.cluster.most_available_invoker(config)
            if fallback is None:
                return False
            invoker_id = fallback.invoker_id
        self.metrics.record_forced_min_dispatch()
        self.metrics.record_overhead(0.0)
        self._dispatch(queue, config, invoker_id, now_ms, 0.0)
        return True

    def _clip_to_queue(self, config: Configuration, queue: AFWQueue) -> Configuration:
        """Cap the batch size at the number of queued jobs."""
        if config.batch_size > len(queue):
            return config.with_batch(max(1, len(queue)))
        return config

    def _config_with_batch(self, config: Configuration, batch_size: int) -> Configuration:
        """Canonical clipped configuration (fast mode).

        Equal by value to ``config.with_batch(batch_size)``; the memo keeps
        one frozen instance per shape so repeated clips cost a dict lookup
        instead of an allocation plus field validation.
        """
        key = (batch_size, config.vcpus, config.vgpus)
        cached = self._batch_cache.get(key)
        if cached is None:
            cached = config.with_batch(batch_size)
            self._batch_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        queue: AFWQueue,
        config: Configuration,
        invoker_id: int,
        now_ms: float,
        overhead_ms: float,
    ) -> Task:
        """Create the task, charge its latency components, reserve resources."""
        if self.fast_mode:
            return self._dispatch_fast(queue, config, invoker_id, now_ms, overhead_ms)
        invoker = self.cluster.invoker(invoker_id)
        spec = self.profile_store.profile(queue.function_name).spec
        jobs = queue.pop_batch(min(config.batch_size, len(queue)))
        effective = config.with_batch(len(jobs)) if len(jobs) != config.batch_size else config

        # Container: warm start if the function is resident on the node, else
        # cold-start a new container (which then stays resident).
        container = invoker.resident_container(queue.function_name, now_ms)
        if container is not None:
            cold_ms = 0.0
        else:
            cold_ms = spec.cold_start_ms
            container = Container(
                function_name=queue.function_name,
                invoker_id=invoker_id,
                state=ContainerState.STARTING,
                warm_at_ms=now_ms + cold_ms,
            )
            invoker.add_container(container)
        container.assign_task()

        # Data transfer: local when the predecessor stage ran on this node.
        transfer_ms = 0.0
        for job in jobs:
            preds = job.request.workflow.predecessors(job.stage_id)
            if not preds:
                # Source stages fetch the user input from remote storage for
                # every policy alike.
                job_transfer = self.transfer_model.remote_transfer_ms(spec.input_mb)
                self.metrics.record_transfer(local=False)
            else:
                pred_invoker = job.request.predecessor_invoker(job.stage_id)
                local = pred_invoker == invoker_id
                job_transfer = self.transfer_model.transfer_ms(spec.input_mb, local=local)
                self.metrics.record_transfer(local=local)
            transfer_ms = max(transfer_ms, job_transfer)

        exec_ms = self.runtime_perf_model.latency_ms(spec, effective)
        charged_overhead = overhead_ms if self.config.count_overhead_in_latency else 0.0

        task = Task(
            app_name=queue.app_name,
            stage_id=queue.stage_id,
            function_name=queue.function_name,
            jobs=jobs,
            config=effective,
            invoker_id=invoker_id,
            dispatch_ms=now_ms,
            overhead_ms=charged_overhead,
            cold_start_ms=cold_ms,
            transfer_ms=transfer_ms,
            exec_ms=exec_ms,
            policy_name=self.policy.name,
        )
        task.cost_cents = self.pricing.task_cost_cents(effective, task.duration_ms)

        invoker.reserve(effective)
        self._task_containers[task.task_id] = container
        if self._churn:
            self._inflight[task.task_id] = task
        self.metrics.record_task(task)
        self.event_sink(TaskCompletionEvent(time_ms=task.finish_ms, task=task))
        return task

    def _dispatch_fast(
        self,
        queue: AFWQueue,
        config: Configuration,
        invoker_id: int,
        now_ms: float,
        overhead_ms: float,
    ) -> Task:
        """``loop_mode="fast"`` variant of :meth:`_dispatch`.

        Builds the identical task with the per-dispatch constant costs
        memoized: the function spec, the clipped configuration, the two
        possible transfer latencies and the price rate are each pure in
        run-constant inputs, and the residency scan / resource reservation
        mutate the same counters the invoker methods would.  Every float is
        produced by the same operations in the same order as the compat
        path (``duration = cold + transfer + exec``, ``finish = (dispatch +
        overhead) + duration``, ``cost = rate * duration``), so summaries
        stay byte-identical.
        """
        invoker = self.cluster.invokers[invoker_id]
        function_name = queue.function_name
        spec = self._spec_cache.get(function_name)
        if spec is None:
            spec = self.profile_store.profile(function_name).spec
            self._spec_cache[function_name] = spec
        job_deque = queue.jobs
        qlen = len(job_deque)
        batch = config.batch_size
        # Inlined ``queue.pop_batch``: callers guarantee a non-empty queue
        # and a positive batch, so validation and the listener indirection
        # reduce to the poplefts plus the two counters.
        njobs = batch if batch < qlen else qlen
        popleft = job_deque.popleft
        jobs = [popleft() for _ in range(njobs)]
        self._pending_jobs -= njobs
        if not job_deque:
            self._nonempty.discard((queue.app_name, queue.stage_id))
        effective = self._config_with_batch(config, njobs) if njobs != batch else config

        container = None
        for candidate in invoker._live.get(function_name, ()):
            state = candidate.state
            if state is ContainerState.BUSY or (
                state is ContainerState.WARM
                and candidate.warm_at_ms <= now_ms < candidate.expires_at_ms
            ):
                container = candidate
                break
        if container is not None:
            cold_ms = 0.0
            # Inlined ``container.assign_task``: the container is resident
            # (WARM or BUSY), and the WARM -> BUSY edge is invisible to the
            # invoker's state listener, so only the counters change.
            container.active_tasks += 1
            container.expires_at_ms = _INF
            container.state = ContainerState.BUSY
        else:
            cold_ms = spec.cold_start_ms
            container = Container(
                function_name=function_name,
                invoker_id=invoker_id,
                state=ContainerState.STARTING,
                warm_at_ms=now_ms + cold_ms,
            )
            invoker.add_container(container)
            # STARTING -> BUSY must go through the listener (it maintains
            # the resident-candidate index), so the cold path keeps the
            # regular transition.
            container.assign_task()

        transfers = self._transfer_cache.get(function_name)
        if transfers is None:
            transfers = (
                self.transfer_model.local_transfer_ms(spec.input_mb),
                self.transfer_model.remote_transfer_ms(spec.input_mb),
            )
            self._transfer_cache[function_name] = transfers
        local_transfer, remote_transfer = transfers

        metrics = self.metrics
        stage_id = queue.stage_id
        transfer_ms = 0.0
        for job in jobs:
            request = job.request
            preds = request.workflow.topology().pred[stage_id]
            if not preds:
                job_transfer = remote_transfer
                metrics.remote_transfers += 1
            else:
                stage_invoker = request.stage_invoker
                if len(preds) == 1:
                    pred_invoker = stage_invoker.get(preds[0])
                else:
                    done = [p for p in preds if p in stage_invoker]
                    if done:
                        scm = request.stage_completion_ms
                        pred_invoker = stage_invoker[max(done, key=scm.__getitem__)]
                    else:
                        pred_invoker = None
                if pred_invoker == invoker_id:
                    job_transfer = local_transfer
                    metrics.local_transfers += 1
                else:
                    job_transfer = remote_transfer
                    metrics.remote_transfers += 1
            if job_transfer > transfer_ms:
                transfer_ms = job_transfer

        exec_ms = self.runtime_perf_model.latency_ms(spec, effective)
        charged_overhead = overhead_ms if self.config.count_overhead_in_latency else 0.0
        duration_ms = cold_ms + transfer_ms + exec_ms

        task = Task(
            app_name=queue.app_name,
            stage_id=stage_id,
            function_name=function_name,
            jobs=jobs,
            config=effective,
            invoker_id=invoker_id,
            dispatch_ms=now_ms,
            overhead_ms=charged_overhead,
            cold_start_ms=cold_ms,
            transfer_ms=transfer_ms,
            exec_ms=exec_ms,
            policy_name=self.policy.name,
        )
        rate_key = (effective.vcpus, effective.vgpus)
        rate = self._rate_cache.get(rate_key)
        if rate is None:
            rate = self.pricing.rate_cents_per_ms(effective)
            self._rate_cache[rate_key] = rate
        task.cost_cents = rate * duration_ms

        invoker.gpu._used_vgpus += effective.vgpus
        invoker._used_vcpus += effective.vcpus
        # Inlined ``invoker._capacity_changed`` (one frame less per task).
        if not invoker._suspend_capacity_notify:
            capacity_cb = invoker._on_capacity_change
            if capacity_cb is not None:
                capacity_cb(invoker)
        self._task_containers[task.task_id] = container
        if self._churn:
            self._inflight[task.task_id] = task

        # Inlined ``metrics.record_task`` (live collector): identical float
        # expressions — ``start = dispatch + overhead``, ``finish = start +
        # duration``, and the horizon clamps of charged_duration_ms /
        # charged_cost_cents — on the values already in hand.
        if cold_ms > 0.0:
            metrics.cold_starts += 1
        else:
            metrics.warm_starts += 1
        if self._metrics_streaming:
            start_ms = now_ms + charged_overhead
            finish_ms = start_ms + duration_ms
            horizon = metrics.horizon_ms
            if finish_ms <= horizon:
                cost = task.cost_cents
                held_ms = duration_ms
            else:
                held_ms = horizon - start_ms
                if held_ms < 0.0:
                    held_ms = 0.0
                cost = (
                    task.cost_cents * (held_ms / duration_ms)
                    if duration_ms > 0.0
                    else 0.0
                )
            metrics._total.cost_cents += cost
            acc = metrics._per_app.get(task.app_name)
            if acc is None:
                acc = metrics._app(task.app_name)
            acc.cost_cents += cost
            metrics._vgpu_ms += effective.vgpus * held_ms
            metrics._vcpu_ms += effective.vcpus * held_ms
            # ``task.waiting_ms()`` with the same left-to-right fold: the
            # genexp sum starts at (int) 0, whose first addition is exact.
            waiting = 0
            for job in jobs:
                delay = now_ms - job.ready_ms
                waiting += delay if delay > 0.0 else 0.0
            metrics._waiting_ms.append(waiting / njobs)
        else:
            metrics.tasks.append(task)

        finish = now_ms + charged_overhead + duration_ms
        fe = self.fast_events
        if fe is not None:
            # Inlined ``FastEventLoop.push``: TaskCompletionEvent is a real
            # (non-housekeeping) event with the default sort priority 1, and
            # ``finish`` >= ``now_ms`` >= 0 so the push-time validation is
            # statically satisfied.
            heapq.heappush(fe._real, (finish, 1, next(fe._counter), TaskCompletionEvent(time_ms=finish, task=task)))
        else:
            self.event_sink(TaskCompletionEvent(time_ms=finish, task=task))
        return task
