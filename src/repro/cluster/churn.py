"""Capacity churn: timed invoker join / leave / resize schedules.

The paper evaluates ESG on a fixed testbed, but the serverless platforms it
targets increasingly run on *harvested* capacity — Harvest VMs (SOSP'21,
"Faster and Cheaper Serverless Computing on Harvested Resources") grow and
shrink while they run and can be evicted outright.  This module models that
as a :class:`ChurnSchedule`: a seed-derived, picklable list of timed
:class:`ChurnAction` entries that the simulation turns into housekeeping
events (:class:`~repro.cluster.events.InvokerJoinEvent` /
:class:`~repro.cluster.events.InvokerLeaveEvent` /
:class:`~repro.cluster.events.InvokerResizeEvent`).

Determinism contract: a schedule is a pure function of
``(spec, seed, cluster_config)`` via :func:`repro.utils.rng.derive_rng`, so
the same experiment seed reproduces the same churn in every loop mode,
index mode, metrics mode, and worker process.

>>> from repro.cluster.cluster import ClusterConfig
>>> spec = get_churn_spec("harvest-mild")
>>> schedule = spec.build(seed=42, cluster_config=ClusterConfig())
>>> schedule == spec.build(seed=42, cluster_config=ClusterConfig())
True
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.utils.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import ClusterConfig
    from repro.cluster.events import Event

__all__ = [
    "ChurnAction",
    "ChurnSchedule",
    "ChurnSpec",
    "CHURN_SPECS",
    "register_churn_spec",
    "get_churn_spec",
    "churn_spec_names",
    "resolve_churn",
]

#: Valid policies for in-flight work on an evicted node.
EVICTION_POLICIES = ("requeue", "fail")

_KINDS = ("join", "leave", "resize")


@dataclass(frozen=True)
class ChurnAction:
    """One timed cluster mutation.

    ``kind="join"`` adds a node (``vcpus``/``vgpus`` override the config's
    per-invoker shape when set); ``kind="leave"`` evicts ``invoker_id``;
    ``kind="resize"`` re-targets ``invoker_id`` to ``(vcpus, vgpus)``
    (harvested capacity shrink or grow).
    """

    time_ms: float
    kind: str
    invoker_id: int | None = None
    vcpus: int | None = None
    vgpus: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown churn action kind {self.kind!r}; expected one of {_KINDS}")
        if self.time_ms < 0:
            raise ValueError(f"churn action time_ms must be >= 0, got {self.time_ms}")
        if self.kind in ("leave", "resize") and self.invoker_id is None:
            raise ValueError(f"churn action kind={self.kind!r} requires invoker_id")
        if self.kind == "resize" and (self.vcpus is None or self.vgpus is None):
            raise ValueError("churn action kind='resize' requires vcpus and vgpus")

    def to_event(self) -> "Event":
        """The housekeeping event that applies this action."""
        # Imported lazily so this module stays importable before the rest of
        # the cluster package: built-in scenarios resolve churn-spec names at
        # workloads import time, which can land mid-way through
        # ``repro.cluster.__init__`` (events -> tasks -> workloads cycle).
        from repro.cluster.events import (
            InvokerJoinEvent,
            InvokerLeaveEvent,
            InvokerResizeEvent,
        )

        if self.kind == "join":
            return InvokerJoinEvent(time_ms=self.time_ms, vcpus=self.vcpus, vgpus=self.vgpus)
        if self.kind == "leave":
            return InvokerLeaveEvent(time_ms=self.time_ms, invoker_id=self.invoker_id)
        return InvokerResizeEvent(
            time_ms=self.time_ms,
            invoker_id=self.invoker_id,
            vcpus=self.vcpus,
            vgpus=self.vgpus,
        )


@dataclass(frozen=True)
class ChurnSchedule:
    """A fully materialized, time-ordered churn plan for one run.

    Frozen and built from plain tuples so it pickles cleanly into spawn
    workers, and hashable/comparable so parity tests can assert two builds
    from the same seed are identical.
    """

    name: str
    actions: tuple[ChurnAction, ...]
    #: What happens to tasks in flight on an evicted node: ``"requeue"``
    #: puts their jobs back on the scheduling queues; ``"fail"`` terminates
    #: the owning requests with the ``evicted`` outcome.
    on_evict: str = "requeue"

    def __post_init__(self) -> None:
        if self.on_evict not in EVICTION_POLICIES:
            raise ValueError(
                f"on_evict must be one of {EVICTION_POLICIES}, got {self.on_evict!r}"
            )
        object.__setattr__(self, "actions", tuple(self.actions))
        times = [action.time_ms for action in self.actions]
        if any(later < earlier for earlier, later in zip(times, times[1:])):
            raise ValueError("churn actions must be sorted by time_ms")


@dataclass(frozen=True)
class ChurnSpec:
    """A parametric churn generator: seed in, :class:`ChurnSchedule` out.

    Specs are what scenarios and :class:`~repro.experiments.runner.ExperimentConfig`
    carry: the concrete schedule is derived per run from the experiment seed
    (stream ``("churn", name)``) so sweeps over seeds also sweep the churn
    realization while staying exactly reproducible.
    """

    name: str
    #: Time of the first possible churn action.
    start_ms: float = 50.0
    #: Mean gap between actions; each gap is ``uniform(0.5, 1.5) * interval_ms``.
    interval_ms: float = 80.0
    num_events: int = 12
    #: Kind mix (must sum to <= 1; the remainder is dead probability mass
    #: that simply re-draws nothing — keep the sum at 1 for clarity).
    p_leave: float = 0.2
    p_join: float = 0.2
    p_resize: float = 0.6
    #: Resize targets are drawn as a fraction of the configured per-invoker
    #: shape in ``[resize_low, resize_high]`` (harvest shrink/grow band).
    resize_low: float = 0.25
    resize_high: float = 1.25
    #: A leave that would drop the active node count below this floor is
    #: converted into a join instead (the harvest control plane replenishes).
    min_active: int = 2
    on_evict: str = "requeue"
    #: Optional RNG stream label override (defaults to ``name``).
    stream: str | None = None

    def __post_init__(self) -> None:
        if self.num_events < 0:
            raise ValueError("num_events must be >= 0")
        if self.interval_ms <= 0:
            raise ValueError("interval_ms must be > 0")
        if self.start_ms < 0:
            raise ValueError("start_ms must be >= 0")
        if self.min_active < 1:
            raise ValueError("min_active must be >= 1")
        if not 0 < self.resize_low <= self.resize_high:
            raise ValueError("need 0 < resize_low <= resize_high")
        if min(self.p_leave, self.p_join, self.p_resize) < 0:
            raise ValueError("kind probabilities must be >= 0")
        if self.p_leave + self.p_join + self.p_resize > 1.0 + 1e-9:
            raise ValueError("kind probabilities must sum to <= 1")
        if self.on_evict not in EVICTION_POLICIES:
            raise ValueError(
                f"on_evict must be one of {EVICTION_POLICIES}, got {self.on_evict!r}"
            )

    def build(self, seed: int, cluster_config: "ClusterConfig") -> ChurnSchedule:
        """Materialize the schedule for one run.

        Mirrors the id assignment the cluster will actually perform (joins
        append ``len(invokers)``, ids are never reused) so every leave and
        resize targets a node that is active at that simulated time.
        """
        rng = derive_rng(seed, "churn", self.stream or self.name)
        active = list(range(cluster_config.num_invokers))
        next_id = cluster_config.num_invokers
        actions: list[ChurnAction] = []
        time_ms = float(self.start_ms)
        for _ in range(self.num_events):
            time_ms += float(rng.uniform(0.5, 1.5)) * float(self.interval_ms)
            draw = float(rng.random())
            if draw < self.p_leave:
                kind = "leave"
            elif draw < self.p_leave + self.p_join:
                kind = "join"
            elif draw < self.p_leave + self.p_join + self.p_resize:
                kind = "resize"
            else:
                continue
            if kind == "leave" and len(active) <= self.min_active:
                kind = "join"
            if kind == "join":
                actions.append(ChurnAction(time_ms=time_ms, kind="join"))
                active.append(next_id)
                next_id += 1
            elif kind == "leave":
                target = active[int(rng.integers(len(active)))]
                actions.append(
                    ChurnAction(time_ms=time_ms, kind="leave", invoker_id=target)
                )
                active.remove(target)
            else:
                target = active[int(rng.integers(len(active)))]
                fraction = float(rng.uniform(self.resize_low, self.resize_high))
                actions.append(
                    ChurnAction(
                        time_ms=time_ms,
                        kind="resize",
                        invoker_id=target,
                        vcpus=max(1, round(fraction * cluster_config.vcpus_per_invoker)),
                        vgpus=max(1, round(fraction * cluster_config.vgpus_per_invoker)),
                    )
                )
        return ChurnSchedule(name=self.name, actions=tuple(actions), on_evict=self.on_evict)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
CHURN_SPECS: dict[str, ChurnSpec] = {}


def register_churn_spec(spec: ChurnSpec, *, overwrite: bool = False) -> ChurnSpec:
    """Add ``spec`` to the registry under ``spec.name``."""
    if not overwrite and spec.name in CHURN_SPECS:
        raise ValueError(f"churn spec {spec.name!r} is already registered")
    CHURN_SPECS[spec.name] = spec
    return spec


def get_churn_spec(name: str) -> ChurnSpec:
    """Look up a registered churn spec by name."""
    try:
        return CHURN_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(CHURN_SPECS))
        raise KeyError(f"unknown churn spec {name!r}; known specs: {known}") from None


def churn_spec_names() -> list[str]:
    """Sorted names of every registered churn spec."""
    return sorted(CHURN_SPECS)


def resolve_churn(
    churn: "ChurnSpec | ChurnSchedule | str | None",
    seed: int,
    cluster_config: "ClusterConfig",
) -> ChurnSchedule | None:
    """Normalize any accepted churn form into a built schedule (or ``None``)."""
    if churn is None:
        return None
    if isinstance(churn, str):
        churn = get_churn_spec(churn)
    if isinstance(churn, ChurnSpec):
        return churn.build(seed, cluster_config)
    if isinstance(churn, ChurnSchedule):
        return churn
    raise TypeError(
        "churn must be None, a spec name, a ChurnSpec, or a ChurnSchedule; "
        f"got {type(churn).__name__}"
    )


def _register_builtin_specs() -> None:
    # Mild harvest: capacity mostly flexes in place, the occasional node
    # joins or is reclaimed. Matches the common Harvest-VM regime where
    # CPU counts change far more often than whole-VM evictions.
    register_churn_spec(
        ChurnSpec(
            name="harvest-mild",
            start_ms=40.0,
            interval_ms=90.0,
            num_events=12,
            p_leave=0.10,
            p_join=0.20,
            p_resize=0.70,
        )
    )
    # Severe harvest: frequent shrinkage plus real evictions; in-flight
    # work is requeued (the platform retries on surviving nodes).
    register_churn_spec(
        ChurnSpec(
            name="harvest-severe",
            start_ms=30.0,
            interval_ms=50.0,
            num_events=16,
            p_leave=0.35,
            p_join=0.15,
            p_resize=0.50,
            resize_low=0.20,
            resize_high=1.0,
        )
    )
    # Pure membership churn: nodes come and go, shapes never change.
    register_churn_spec(
        ChurnSpec(
            name="eviction-storm",
            start_ms=30.0,
            interval_ms=45.0,
            num_events=14,
            p_leave=0.50,
            p_join=0.40,
            p_resize=0.10,
        )
    )
    # Same storm, but evictions are fatal to in-flight requests — the
    # pessimistic platform that cannot retry (exercises the ``evicted``
    # request outcome end to end).
    register_churn_spec(
        replace(CHURN_SPECS["eviction-storm"], name="eviction-fail", on_evict="fail")
    )
    # A balanced mix of all three action kinds.
    register_churn_spec(
        ChurnSpec(
            name="churn-mixed",
            start_ms=40.0,
            interval_ms=70.0,
            num_events=12,
            p_leave=0.30,
            p_join=0.30,
            p_resize=0.40,
        )
    )


_register_builtin_specs()
