"""MIG-style shareable GPU model.

The resource model of the paper (Section 3.2): each physical GPU is
partitioned into the maximum number of MIG instances (7 on an A100); one
vGPU equals one MIG slice, and a function configured with multiple vGPUs
launches one kernel per slice.  For scheduling purposes the only state that
matters is how many slices are free, so the device tracks slice allocation
counts (slices are interchangeable thanks to MIG's hardware isolation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.utils.validation import ensure_positive_int

__all__ = ["GpuDevice"]


@dataclass
class GpuDevice:
    """One physical GPU partitioned into ``total_vgpus`` MIG slices."""

    device_id: int
    total_vgpus: int = 7
    _used_vgpus: int = field(default=0, repr=False)
    #: Invoked after every allocation-count change; the owning invoker hooks
    #: this to keep the cluster's free-capacity index consistent even when a
    #: caller mutates the device directly instead of going through
    #: :meth:`Invoker.reserve` / :meth:`Invoker.release`.
    _on_change: Callable[[], None] | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        ensure_positive_int(self.total_vgpus, "total_vgpus")

    def bind_on_change(self, callback: Callable[[], None] | None) -> None:
        """Install the post-change notification callback."""
        self._on_change = callback

    def _notify(self) -> None:
        if self._on_change is not None:
            self._on_change()

    @property
    def used_vgpus(self) -> int:
        """Number of slices currently allocated."""
        return self._used_vgpus

    @property
    def available_vgpus(self) -> int:
        """Number of free slices."""
        return self.total_vgpus - self._used_vgpus

    @property
    def utilization(self) -> float:
        """Fraction of slices in use (0.0 - 1.0)."""
        return self._used_vgpus / self.total_vgpus

    def can_allocate(self, vgpus: int) -> bool:
        """True if ``vgpus`` slices are currently free."""
        ensure_positive_int(vgpus, "vgpus")
        return vgpus <= self.available_vgpus

    def allocate(self, vgpus: int) -> None:
        """Allocate ``vgpus`` slices; raises ``RuntimeError`` if over capacity."""
        ensure_positive_int(vgpus, "vgpus")
        if vgpus > self.available_vgpus:
            raise RuntimeError(
                f"GPU {self.device_id}: cannot allocate {vgpus} vGPUs, "
                f"only {self.available_vgpus} of {self.total_vgpus} available"
            )
        self._used_vgpus += vgpus
        self._notify()

    def release(self, vgpus: int) -> None:
        """Release ``vgpus`` previously allocated slices."""
        ensure_positive_int(vgpus, "vgpus")
        if vgpus > self._used_vgpus:
            raise RuntimeError(
                f"GPU {self.device_id}: cannot release {vgpus} vGPUs, "
                f"only {self._used_vgpus} are allocated"
            )
        self._used_vgpus -= vgpus
        self._notify()
