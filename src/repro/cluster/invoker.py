"""Invoker (worker node) model.

An invoker is a computing node managed by the controller: it owns a fixed
number of vCPUs and one GPU partitioned into vGPUs (Table 2: 16 nodes, each
with 16 vCPUs and one A100 split into up to 7 MIG instances).  The invoker
tracks resource reservations of running tasks and the pool of containers
(warm, busy, starting) for each function.

Container and capacity state is maintained *incrementally*: the invoker
keeps one live (non-stopped) container list and a resident-candidate count
per function, updated by container lifecycle notifications, and reports
capacity and container-population changes to the owning
:class:`~repro.cluster.cluster.ClusterState` so cluster-wide queries (warm
sets, free-capacity lookups, container counts) never have to rescan every
node.  Queries iterate only live containers — a stopped container can never
satisfy any residency predicate, so results are identical to scanning the
full history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.container import DEFAULT_KEEP_ALIVE_MS, Container, ContainerState
from repro.cluster.gpu import GpuDevice
from repro.profiles.configuration import Configuration
from repro.utils.validation import ensure_positive_int

__all__ = ["Invoker"]

#: States in which a container makes its function *resident* on the node
#: (warm starts possible; tracked by the cluster's per-function warm index).
_RESIDENT_STATES = (ContainerState.WARM, ContainerState.BUSY)


@dataclass
class Invoker:
    """One worker node with vCPU/vGPU accounting and a container pool."""

    invoker_id: int
    total_vcpus: int = 16
    total_vgpus: int = 7
    keep_alive_ms: float = DEFAULT_KEEP_ALIVE_MS
    #: False once the node has left the cluster (churn eviction).  Departed
    #: invokers stay in the cluster's list as zero-capacity tombstones so
    #: invoker ids remain stable; placement paths skip them because nothing
    #: fits on zero capacity.
    active: bool = True
    _used_vcpus: int = field(default=0, repr=False)
    gpu: GpuDevice = field(init=False)
    #: All containers ever created on this node, keyed by function name.
    _containers: dict[str, list[Container]] = field(default_factory=dict, repr=False)
    #: Live (non-stopped) containers per function, in insertion order.
    _live: dict[str, list[Container]] = field(default_factory=dict, repr=False)
    #: Number of WARM/BUSY containers per function (warm-index candidates).
    _resident_candidates: dict[str, int] = field(default_factory=dict, repr=False)
    #: Cluster callback: ``(invoker)`` after any free-capacity change.
    _on_capacity_change: Callable[["Invoker"], None] | None = field(
        default=None, repr=False, compare=False
    )
    #: Cluster callback: ``(invoker, function_name, live_delta)`` after any
    #: change to the function's container population on this node.
    _on_container_change: Callable[["Invoker", str, int], None] | None = field(
        default=None, repr=False, compare=False
    )
    #: Set while reserve()/release() update both resources, so the GPU's own
    #: change hook does not emit a second (half-updated) notification.
    _suspend_capacity_notify: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        ensure_positive_int(self.total_vcpus, "total_vcpus")
        ensure_positive_int(self.total_vgpus, "total_vgpus")
        self.gpu = GpuDevice(device_id=self.invoker_id, total_vgpus=self.total_vgpus)
        self.gpu.bind_on_change(self._capacity_changed)

    # ------------------------------------------------------------------
    # Cluster wiring
    # ------------------------------------------------------------------
    def bind_cluster_callbacks(
        self,
        on_capacity_change: Callable[["Invoker"], None] | None,
        on_container_change: Callable[["Invoker", str, int], None] | None,
    ) -> None:
        """Install the owning cluster's index-maintenance callbacks."""
        self._on_capacity_change = on_capacity_change
        self._on_container_change = on_container_change

    def _capacity_changed(self) -> None:
        if self._suspend_capacity_notify:
            return
        if self._on_capacity_change is not None:
            self._on_capacity_change(self)

    def _containers_changed(self, function_name: str, live_delta: int) -> None:
        if self._on_container_change is not None:
            self._on_container_change(self, function_name, live_delta)

    # ------------------------------------------------------------------
    # Resource accounting
    # ------------------------------------------------------------------
    @property
    def used_vcpus(self) -> int:
        """vCPUs currently reserved by running tasks."""
        return self._used_vcpus

    @property
    def available_vcpus(self) -> int:
        """Free vCPUs."""
        return self.total_vcpus - self._used_vcpus

    @property
    def used_vgpus(self) -> int:
        """vGPUs currently reserved by running tasks."""
        return self.gpu.used_vgpus

    @property
    def available_vgpus(self) -> int:
        """Free vGPUs."""
        return self.gpu.available_vgpus

    def can_fit(self, config: Configuration) -> bool:
        """True if the node currently has the resources ``config`` needs."""
        return config.vcpus <= self.available_vcpus and self.gpu.can_allocate(config.vgpus)

    def reserve(self, config: Configuration) -> None:
        """Reserve the resources of ``config``; raises if they do not fit."""
        if config.vcpus > self.available_vcpus:
            raise RuntimeError(
                f"invoker {self.invoker_id}: cannot reserve {config.vcpus} vCPUs, "
                f"only {self.available_vcpus} of {self.total_vcpus} available"
            )
        self._suspend_capacity_notify = True
        try:
            self.gpu.allocate(config.vgpus)
        finally:
            self._suspend_capacity_notify = False
        self._used_vcpus += config.vcpus
        self._capacity_changed()

    def release(self, config: Configuration) -> None:
        """Release resources previously reserved with :meth:`reserve`."""
        if config.vcpus > self._used_vcpus:
            raise RuntimeError(
                f"invoker {self.invoker_id}: cannot release {config.vcpus} vCPUs, "
                f"only {self._used_vcpus} are reserved"
            )
        self._suspend_capacity_notify = True
        try:
            self.gpu.release(config.vgpus)
        finally:
            self._suspend_capacity_notify = False
        self._used_vcpus -= config.vcpus
        self._capacity_changed()

    # ------------------------------------------------------------------
    # Fragmentation / utilization metrics (used by baseline placement)
    # ------------------------------------------------------------------
    @property
    def cpu_utilization(self) -> float:
        """Fraction of vCPUs in use."""
        return self._used_vcpus / self.total_vcpus

    @property
    def gpu_utilization(self) -> float:
        """Fraction of vGPUs in use."""
        return self.gpu.utilization

    def remaining_after(self, config: Configuration) -> tuple[int, int]:
        """(vCPUs, vGPUs) that would remain free after placing ``config``."""
        return (self.available_vcpus - config.vcpus, self.available_vgpus - config.vgpus)

    def fragmentation_score_after(self, config: Configuration) -> float:
        """Leftover-capacity score used by fragmentation-minimising placement.

        Lower means a tighter fit (fewer stranded resources).  INFless and
        FaST-GShare prefer the node that minimises this score; the GPU share
        is weighted more heavily because vGPUs are the scarce resource.
        """
        rem_cpu, rem_gpu = self.remaining_after(config)
        return rem_cpu / self.total_vcpus + 2.0 * (rem_gpu / self.total_vgpus)

    # ------------------------------------------------------------------
    # Containers
    # ------------------------------------------------------------------
    def containers_for(self, function_name: str) -> list[Container]:
        """All (non-stopped) containers of ``function_name`` on this node."""
        return list(self._live.get(function_name, ()))

    def container_count(self, function_name: str) -> int:
        """Number of live (non-stopped) containers of the function."""
        return len(self._live.get(function_name, ()))

    def resident_candidate_count(self, function_name: str) -> int:
        """Number of WARM/BUSY containers of the function (warm-index state)."""
        return self._resident_candidates.get(function_name, 0)

    def resident_container(self, function_name: str, now_ms: float) -> Container | None:
        """Return a resident (warm or busy) container for the function, or ``None``."""
        for container in self._live.get(function_name, ()):
            if container.is_resident(now_ms):
                return container
        return None

    def warm_idle_container(self, function_name: str, now_ms: float) -> Container | None:
        """Return an idle warm container for the function, or ``None``."""
        for container in self._live.get(function_name, ()):
            if container.is_warm_idle(now_ms):
                return container
        return None

    def has_warm_container(self, function_name: str, now_ms: float) -> bool:
        """True if a warm-start is possible for the function right now."""
        return self.resident_container(function_name, now_ms) is not None

    def has_any_container(self, function_name: str, now_ms: float) -> bool:
        """True if the function has a resident or starting container on this node."""
        if self.resident_container(function_name, now_ms) is not None:
            return True
        for container in self._live.get(function_name, ()):
            if container.state == ContainerState.STARTING:
                return True
        return False

    def add_container(self, container: Container) -> None:
        """Register a container on this node."""
        if container.invoker_id != self.invoker_id:
            raise ValueError(
                f"container belongs to invoker {container.invoker_id}, not {self.invoker_id}"
            )
        name = container.function_name
        self._containers.setdefault(name, []).append(container)
        if container.state != ContainerState.STOPPED:
            self._live.setdefault(name, []).append(container)
            if container.state in _RESIDENT_STATES:
                self._resident_candidates[name] = self._resident_candidates.get(name, 0) + 1
            container.bind_listener(self._container_state_changed)
            self._containers_changed(name, +1)

    def _container_state_changed(
        self, container: Container, old: ContainerState, new: ContainerState
    ) -> None:
        """Keep the live list and resident-candidate counts consistent."""
        name = container.function_name
        delta = 0
        if new == ContainerState.STOPPED:
            live = self._live.get(name, [])
            for index, candidate in enumerate(live):
                if candidate is container:
                    del live[index]
                    delta = -1
                    break
            if old in _RESIDENT_STATES:
                self._resident_candidates[name] = self._resident_candidates.get(name, 1) - 1
        elif old == ContainerState.STARTING and new in _RESIDENT_STATES:
            self._resident_candidates[name] = self._resident_candidates.get(name, 0) + 1
        elif old in _RESIDENT_STATES and new in _RESIDENT_STATES:
            return  # WARM <-> BUSY: no index change.
        self._containers_changed(name, delta)

    def create_warm_container(self, function_name: str, now_ms: float) -> Container:
        """Create a container that is already warm (used for initial warm pools)."""
        container = Container(
            function_name=function_name,
            invoker_id=self.invoker_id,
            state=ContainerState.WARM,
            warm_at_ms=now_ms,
        )
        container.mark_warm(now_ms, self.keep_alive_ms)
        self.add_container(container)
        return container

    def evict_all_containers(self) -> list[Container]:
        """Force-stop every live container on this node (node eviction).

        Returns the containers that were dropped, in per-function insertion
        order.  Copies are required: :meth:`Container.mark_evicted` fires the
        state listener, which mutates ``_live`` while we iterate.
        """
        evicted: list[Container] = [
            container
            for containers in list(self._live.values())
            for container in list(containers)
        ]
        for container in evicted:
            container.mark_evicted()
        return evicted

    def expire_containers(self, now_ms: float) -> list[Container]:
        """Stop idle containers whose keep-alive elapsed; returns them."""
        expired: list[Container] = [
            container
            for containers in self._live.values()
            for container in containers
            if container.is_expired(now_ms)
        ]
        for container in expired:
            container.mark_stopped()
        return expired

    def warm_function_names(self, now_ms: float) -> list[str]:
        """Functions with at least one idle warm container on this node."""
        return sorted(
            name for name in self._live if self.has_warm_container(name, now_ms)
        )
