"""Invoker (worker node) model.

An invoker is a computing node managed by the controller: it owns a fixed
number of vCPUs and one GPU partitioned into vGPUs (Table 2: 16 nodes, each
with 16 vCPUs and one A100 split into up to 7 MIG instances).  The invoker
tracks resource reservations of running tasks and the pool of containers
(warm, busy, starting) for each function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.container import DEFAULT_KEEP_ALIVE_MS, Container, ContainerState
from repro.cluster.gpu import GpuDevice
from repro.profiles.configuration import Configuration
from repro.utils.validation import ensure_positive_int

__all__ = ["Invoker"]


@dataclass
class Invoker:
    """One worker node with vCPU/vGPU accounting and a container pool."""

    invoker_id: int
    total_vcpus: int = 16
    total_vgpus: int = 7
    keep_alive_ms: float = DEFAULT_KEEP_ALIVE_MS
    _used_vcpus: int = field(default=0, repr=False)
    gpu: GpuDevice = field(init=False)
    #: All containers ever created on this node, keyed by function name.
    _containers: dict[str, list[Container]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        ensure_positive_int(self.total_vcpus, "total_vcpus")
        ensure_positive_int(self.total_vgpus, "total_vgpus")
        self.gpu = GpuDevice(device_id=self.invoker_id, total_vgpus=self.total_vgpus)

    # ------------------------------------------------------------------
    # Resource accounting
    # ------------------------------------------------------------------
    @property
    def used_vcpus(self) -> int:
        """vCPUs currently reserved by running tasks."""
        return self._used_vcpus

    @property
    def available_vcpus(self) -> int:
        """Free vCPUs."""
        return self.total_vcpus - self._used_vcpus

    @property
    def used_vgpus(self) -> int:
        """vGPUs currently reserved by running tasks."""
        return self.gpu.used_vgpus

    @property
    def available_vgpus(self) -> int:
        """Free vGPUs."""
        return self.gpu.available_vgpus

    def can_fit(self, config: Configuration) -> bool:
        """True if the node currently has the resources ``config`` needs."""
        return config.vcpus <= self.available_vcpus and self.gpu.can_allocate(config.vgpus)

    def reserve(self, config: Configuration) -> None:
        """Reserve the resources of ``config``; raises if they do not fit."""
        if config.vcpus > self.available_vcpus:
            raise RuntimeError(
                f"invoker {self.invoker_id}: cannot reserve {config.vcpus} vCPUs, "
                f"only {self.available_vcpus} of {self.total_vcpus} available"
            )
        self.gpu.allocate(config.vgpus)
        self._used_vcpus += config.vcpus

    def release(self, config: Configuration) -> None:
        """Release resources previously reserved with :meth:`reserve`."""
        if config.vcpus > self._used_vcpus:
            raise RuntimeError(
                f"invoker {self.invoker_id}: cannot release {config.vcpus} vCPUs, "
                f"only {self._used_vcpus} are reserved"
            )
        self.gpu.release(config.vgpus)
        self._used_vcpus -= config.vcpus

    # ------------------------------------------------------------------
    # Fragmentation / utilization metrics (used by baseline placement)
    # ------------------------------------------------------------------
    @property
    def cpu_utilization(self) -> float:
        """Fraction of vCPUs in use."""
        return self._used_vcpus / self.total_vcpus

    @property
    def gpu_utilization(self) -> float:
        """Fraction of vGPUs in use."""
        return self.gpu.utilization

    def remaining_after(self, config: Configuration) -> tuple[int, int]:
        """(vCPUs, vGPUs) that would remain free after placing ``config``."""
        return (self.available_vcpus - config.vcpus, self.available_vgpus - config.vgpus)

    def fragmentation_score_after(self, config: Configuration) -> float:
        """Leftover-capacity score used by fragmentation-minimising placement.

        Lower means a tighter fit (fewer stranded resources).  INFless and
        FaST-GShare prefer the node that minimises this score; the GPU share
        is weighted more heavily because vGPUs are the scarce resource.
        """
        rem_cpu, rem_gpu = self.remaining_after(config)
        return rem_cpu / self.total_vcpus + 2.0 * (rem_gpu / self.total_vgpus)

    # ------------------------------------------------------------------
    # Containers
    # ------------------------------------------------------------------
    def containers_for(self, function_name: str) -> list[Container]:
        """All (non-stopped) containers of ``function_name`` on this node."""
        return [
            c
            for c in self._containers.get(function_name, [])
            if c.state != ContainerState.STOPPED
        ]

    def resident_container(self, function_name: str, now_ms: float) -> Container | None:
        """Return a resident (warm or busy) container for the function, or ``None``."""
        for container in self._containers.get(function_name, []):
            if container.is_resident(now_ms):
                return container
        return None

    def warm_idle_container(self, function_name: str, now_ms: float) -> Container | None:
        """Return an idle warm container for the function, or ``None``."""
        for container in self._containers.get(function_name, []):
            if container.is_warm_idle(now_ms):
                return container
        return None

    def has_warm_container(self, function_name: str, now_ms: float) -> bool:
        """True if a warm-start is possible for the function right now."""
        return self.resident_container(function_name, now_ms) is not None

    def has_any_container(self, function_name: str, now_ms: float) -> bool:
        """True if the function has a resident or starting container on this node."""
        if self.resident_container(function_name, now_ms) is not None:
            return True
        for container in self._containers.get(function_name, []):
            if container.state == ContainerState.STARTING:
                return True
        return False

    def add_container(self, container: Container) -> None:
        """Register a container on this node."""
        if container.invoker_id != self.invoker_id:
            raise ValueError(
                f"container belongs to invoker {container.invoker_id}, not {self.invoker_id}"
            )
        self._containers.setdefault(container.function_name, []).append(container)

    def create_warm_container(self, function_name: str, now_ms: float) -> Container:
        """Create a container that is already warm (used for initial warm pools)."""
        container = Container(
            function_name=function_name,
            invoker_id=self.invoker_id,
            state=ContainerState.WARM,
            warm_at_ms=now_ms,
        )
        container.mark_warm(now_ms, self.keep_alive_ms)
        self.add_container(container)
        return container

    def expire_containers(self, now_ms: float) -> list[Container]:
        """Stop idle containers whose keep-alive elapsed; returns them."""
        expired: list[Container] = []
        for containers in self._containers.values():
            for container in containers:
                if container.is_expired(now_ms):
                    container.mark_stopped()
                    expired.append(container)
        return expired

    def warm_function_names(self, now_ms: float) -> list[str]:
        """Functions with at least one idle warm container on this node."""
        return sorted(
            name
            for name in self._containers
            if self.has_warm_container(name, now_ms)
        )
