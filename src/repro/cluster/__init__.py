"""Serverless platform substrate: a discrete-event simulator of an
OpenWhisk-like controller and a cluster of GPU-sharing invoker nodes.

The paper evaluates ESG through emulation driven by measured function
profiles; this subpackage is that emulation framework.  It models:

* invoker nodes with vCPU and vGPU (MIG slice) accounting,
* container lifecycle (cold start, warm start, 10-minute keep-alive),
* EWMA-based pre-warming,
* data transfer between pipeline stages (local file system vs. remote
  storage, depending on placement),
* the controller with app-function-wise (AFW) job queues, round-robin
  scanning, a recheck list and pluggable scheduling policies,
* metrics collection (SLO hit rate, cost, latency, scheduling overhead,
  pre-planned configuration miss rate).
"""

from repro.cluster.autoscale import (
    AUTOSCALE_SPECS,
    AutoscaleAction,
    AutoscalePolicy,
    AutoscaleSpec,
    AutoscaleState,
    Autoscaler,
    LearnedAgent,
    PIDController,
    ThresholdController,
    autoscale_spec_names,
    get_autoscale_spec,
    register_autoscale_spec,
    resolve_autoscale,
)
from repro.cluster.churn import (
    CHURN_SPECS,
    ChurnAction,
    ChurnSchedule,
    ChurnSpec,
    churn_spec_names,
    get_churn_spec,
    register_churn_spec,
    resolve_churn,
)
from repro.cluster.cluster import ClusterConfig, ClusterState
from repro.cluster.container import Container, ContainerState
from repro.cluster.controller import Controller, ControllerConfig
from repro.cluster.datatransfer import DataTransferModel
from repro.cluster.events import (
    ContainerExpireEvent,
    Event,
    InvokerJoinEvent,
    InvokerLeaveEvent,
    InvokerResizeEvent,
    PrewarmCompleteEvent,
    RequestArrivalEvent,
    SchedulerTickEvent,
    TaskCompletionEvent,
)
from repro.cluster.gpu import GpuDevice
from repro.cluster.invoker import Invoker
from repro.cluster.metrics import MetricsCollector, MetricsConfig, RunSummary
from repro.cluster.policy_api import (
    AFWQueue,
    SchedulingContext,
    SchedulingDecision,
    SchedulingPolicy,
)
from repro.cluster.prewarm import PrewarmManager
from repro.cluster.simulator import Simulation, SimulationConfig
from repro.cluster.tasks import Task
from repro.cluster.topology import (
    TOPOLOGIES,
    ClusterTopology,
    TopologyRegistry,
    get_topology,
    parse_topology,
    register_topology,
    topology_names,
)

__all__ = [
    "ClusterConfig",
    "ClusterState",
    "ClusterTopology",
    "TopologyRegistry",
    "TOPOLOGIES",
    "register_topology",
    "get_topology",
    "topology_names",
    "parse_topology",
    "AutoscaleAction",
    "AutoscalePolicy",
    "AutoscaleSpec",
    "AutoscaleState",
    "Autoscaler",
    "AUTOSCALE_SPECS",
    "register_autoscale_spec",
    "get_autoscale_spec",
    "autoscale_spec_names",
    "resolve_autoscale",
    "LearnedAgent",
    "PIDController",
    "ThresholdController",
    "ChurnAction",
    "ChurnSchedule",
    "ChurnSpec",
    "CHURN_SPECS",
    "register_churn_spec",
    "get_churn_spec",
    "churn_spec_names",
    "resolve_churn",
    "ContainerExpireEvent",
    "Container",
    "ContainerState",
    "Controller",
    "ControllerConfig",
    "DataTransferModel",
    "Event",
    "RequestArrivalEvent",
    "SchedulerTickEvent",
    "TaskCompletionEvent",
    "PrewarmCompleteEvent",
    "InvokerJoinEvent",
    "InvokerLeaveEvent",
    "InvokerResizeEvent",
    "GpuDevice",
    "Invoker",
    "MetricsCollector",
    "MetricsConfig",
    "RunSummary",
    "AFWQueue",
    "SchedulingContext",
    "SchedulingDecision",
    "SchedulingPolicy",
    "PrewarmManager",
    "Simulation",
    "SimulationConfig",
    "Task",
]
