"""The interface between the controller and scheduling policies.

The controller (the platform) owns the AFW job queues, the cluster state
and the metrics; a *scheduling policy* — ESG or one of the baselines —
implements two decisions:

1. :meth:`SchedulingPolicy.plan`: given one AFW queue, produce a priority
   queue of candidate configurations for the jobs at its head;
2. :meth:`SchedulingPolicy.select_invoker`: given a chosen configuration,
   pick the worker node to run it on.

Keeping these behind one interface lets the evaluation hold everything else
constant — the paper stresses that "the only difference is the scheduling
algorithm".
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.cluster import ClusterState
from repro.cluster.datatransfer import DataTransferModel
from repro.profiles.configuration import Configuration, ConfigurationSpace
from repro.profiles.pricing import PricingModel
from repro.profiles.profiler import ProfileStore
from repro.workloads.dag import Workflow
from repro.workloads.request import Job, Request

__all__ = [
    "AFWQueue",
    "SchedulingContext",
    "SchedulingDecision",
    "SchedulingPolicy",
]


@dataclass
class AFWQueue:
    """App-function-wise job queue (Section 3.1).

    One queue exists per (application, stage) pair — even if two
    applications share the same DNN function they get separate queues, which
    is what enables the per-application data-locality policy.
    """

    app_name: str
    stage_id: str
    function_name: str
    workflow: Workflow
    jobs: deque[Job] = field(default_factory=deque)
    #: How many controller rounds this queue has spent in the recheck list.
    recheck_rounds: int = 0
    #: Controller hook called as ``(queue, delta)`` after every size change,
    #: letting it maintain the non-empty-queue set and pending-job counter
    #: without rescanning all queues per event.
    size_listener: Callable[["AFWQueue", int], None] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def key(self) -> tuple[str, str]:
        """Dictionary key of the queue: (application, stage)."""
        return (self.app_name, self.stage_id)

    # ------------------------------------------------------------------
    # Mutation (controller only)
    # ------------------------------------------------------------------
    def push(self, job: Job) -> None:
        """Append a job (jobs are kept in ready-time order)."""
        if job.stage_id != self.stage_id or job.app_name != self.app_name:
            raise ValueError(
                f"job for ({job.app_name}, {job.stage_id}) pushed to queue {self.key}"
            )
        self.jobs.append(job)
        if self.size_listener is not None:
            self.size_listener(self, 1)

    def pop_batch(self, batch_size: int) -> list[Job]:
        """Remove and return the ``batch_size`` oldest jobs."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if batch_size > len(self.jobs):
            raise ValueError(
                f"queue {self.key} holds {len(self.jobs)} jobs; cannot pop {batch_size}"
            )
        batch = [self.jobs.popleft() for _ in range(batch_size)]
        if self.size_listener is not None:
            self.size_listener(self, -batch_size)
        return batch

    # ------------------------------------------------------------------
    # Read-only views (policies)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def is_empty(self) -> bool:
        """True when no job is waiting."""
        return not self.jobs

    def oldest_job(self) -> Job:
        """The job waiting the longest (head of the queue)."""
        if not self.jobs:
            raise IndexError(f"queue {self.key} is empty")
        return self.jobs[0]

    def jobs_snapshot(self) -> tuple[Job, ...]:
        """Immutable snapshot of the queued jobs."""
        return tuple(self.jobs)

    def max_waiting_ms(self, now_ms: float) -> float:
        """Longest waiting time among queued jobs (0.0 when empty)."""
        if not self.jobs:
            return 0.0
        return max(job.waiting_ms(now_ms) for job in self.jobs)

    def min_remaining_budget_ms(self, now_ms: float) -> float:
        """Remaining SLO budget of the most urgent queued request."""
        if not self.jobs:
            raise IndexError(f"queue {self.key} is empty")
        return min(job.remaining_budget_ms(now_ms) for job in self.jobs)

    def most_urgent_request(self, now_ms: float) -> Request:
        """The queued request closest to its deadline."""
        if not self.jobs:
            raise IndexError(f"queue {self.key} is empty")
        job = min(self.jobs, key=lambda j: j.remaining_budget_ms(now_ms))
        return job.request


@dataclass
class SchedulingContext:
    """Everything a policy may consult when planning.

    Handed to the policy once via :meth:`SchedulingPolicy.bind` before the
    simulation starts, so policies can precompute (dominator trees, SLO
    distributions, offline BO training, ...).
    """

    profile_store: ProfileStore
    cluster: ClusterState
    config_space: ConfigurationSpace
    pricing: PricingModel
    workflows: dict[str, Workflow]
    transfer_model: DataTransferModel = field(default_factory=DataTransferModel)


@dataclass
class SchedulingDecision:
    """Output of :meth:`SchedulingPolicy.plan` for one AFW queue.

    Parameters
    ----------
    candidates:
        Configuration priority queue for the *current* stage, best first
        (for ESG: lowest estimated resource cost).  The controller tries
        them in order until one fits on some invoker.
    planned_path:
        Optional full per-stage plan (used by static planners and for
        diagnostics).
    used_preplanned:
        True when the decision comes from a configuration planned ahead of
        time (static planners such as Orion and Aquatope).  The controller
        counts these as "plan attempts" for the Table 4 miss-rate metric.
    plan_miss:
        True when a pre-planned configuration could not be applied (e.g. its
        batch size exceeds the queue length) — the Table 4 metric.
    reported_overhead_ms:
        If set, the controller charges this value as scheduling overhead
        instead of the measured wall-clock planning time (used by Orion's
        search-cutoff experiment, where the overhead is a controlled
        variable).
    """

    candidates: Sequence[Configuration]
    planned_path: dict[str, Configuration] | None = None
    used_preplanned: bool = False
    plan_miss: bool = False
    reported_overhead_ms: float | None = None

    def __post_init__(self) -> None:
        if len(self.candidates) == 0:
            raise ValueError("a SchedulingDecision needs at least one candidate configuration")

    @property
    def best(self) -> Configuration:
        """The highest-priority candidate."""
        return self.candidates[0]


class SchedulingPolicy(abc.ABC):
    """Interface implemented by ESG and by every baseline scheduler."""

    #: Human-readable policy name used in reports and figures.
    name: str = "abstract"

    #: Set by the simulation before :meth:`bind` when it runs with
    #: ``loop_mode="fast"``.  Policies may gate internal memoization on
    #: this flag; any cache so gated must preserve byte-identical
    #: decisions — compat mode is the parity anchor that proves it.
    fast_mode: bool = False

    #: Policies whose :attr:`SchedulingDecision.reported_overhead_ms` is
    #: always a deterministic model (never ``None``) may set this to let the
    #: fast loop skip the wall-clock plan timing entirely — the measured
    #: value would be discarded in favour of the reported one anyway.
    deterministic_overhead: bool = False

    def __init__(self) -> None:
        self._context: SchedulingContext | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, context: SchedulingContext) -> None:
        """Attach the scheduling context; called once before the run starts."""
        self._context = context
        self.on_bind(context)

    def on_bind(self, context: SchedulingContext) -> None:
        """Hook for per-run precomputation (override as needed)."""

    @property
    def context(self) -> SchedulingContext:
        """The bound context (raises if :meth:`bind` was not called)."""
        if self._context is None:
            raise RuntimeError(f"policy {self.name!r} has not been bound to a context")
        return self._context

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def plan(self, queue: AFWQueue, now_ms: float) -> SchedulingDecision | None:
        """Produce candidate configurations for the jobs in ``queue``.

        Returning ``None`` means "do not schedule this queue right now".
        """

    def select_invoker(
        self, config: Configuration, queue: AFWQueue, now_ms: float
    ) -> int | None:
        """Pick the invoker to run a task of ``config`` for ``queue``.

        The default implements OpenWhisk's behaviour: the home invoker if it
        has capacity, otherwise a deterministic scan over the other nodes,
        preferring ones with a warm container.  Policies override this —
        ESG with its locality-first dispatch, INFless/FaST-GShare with
        fragmentation-minimising placement.

        Returns the invoker id, or ``None`` if no node can host ``config``.
        """
        cluster = self.context.cluster
        home = cluster.home_invoker_id(queue.app_name, queue.function_name)
        if cluster.invoker(home).can_fit(config):
            return home
        n = len(cluster)
        warm_fallback: int | None = None
        for offset in range(1, n):
            candidate = (home + offset) % n
            invoker = cluster.invoker(candidate)
            if not invoker.can_fit(config):
                continue
            if invoker.has_warm_container(queue.function_name, now_ms):
                return candidate
            if warm_fallback is None:
                warm_fallback = candidate
        return warm_fallback

    # ------------------------------------------------------------------
    # Capability flags used by the ablation study
    # ------------------------------------------------------------------
    @property
    def uses_gpu_sharing(self) -> bool:
        """False when the policy always grabs whole GPUs (ablation)."""
        return True

    @property
    def uses_batching(self) -> bool:
        """False when the policy never batches jobs (ablation)."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
