"""Named cluster topologies: cluster size as a first-class sweep axis.

The paper evaluates on one fixed testbed (Table 2: 16 nodes x 16 vCPUs x 7
vGPUs).  A :class:`ClusterTopology` names a cluster shape as plain picklable
data so experiments can sweep it like any other axis — a scenario can pin a
topology, the CLI can override it (``--topology``, ``--num-invokers``), and
``benchmarks/bench_cluster_scale.py`` sweeps it from the paper's 16 nodes to
1024.

Topologies resolve to the :class:`~repro.cluster.cluster.ClusterConfig`
carried by :class:`~repro.cluster.simulator.SimulationConfig`; they add the
registry/parsing layer (names and ``NxCxG`` specs) on top.

Examples
--------
>>> get_topology("paper-16").num_invokers
16
>>> parse_topology("256x16x7").name
'256x16x7'
>>> parse_topology("64").num_invokers
64
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.cluster.cluster import ClusterConfig
from repro.cluster.container import DEFAULT_KEEP_ALIVE_MS
from repro.utils.validation import ensure_positive_int

__all__ = [
    "ClusterTopology",
    "TOPOLOGIES",
    "TopologyRegistry",
    "register_topology",
    "get_topology",
    "topology_names",
    "parse_topology",
]


@dataclass(frozen=True)
class ClusterTopology:
    """One named, picklable cluster shape."""

    name: str
    num_invokers: int
    vcpus_per_invoker: int = 16
    vgpus_per_invoker: int = 7
    keep_alive_ms: float = DEFAULT_KEEP_ALIVE_MS
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("topology name must be non-empty")
        ensure_positive_int(self.num_invokers, "num_invokers")
        ensure_positive_int(self.vcpus_per_invoker, "vcpus_per_invoker")
        ensure_positive_int(self.vgpus_per_invoker, "vgpus_per_invoker")
        if self.keep_alive_ms <= 0:
            raise ValueError(f"keep_alive_ms must be > 0, got {self.keep_alive_ms}")

    @property
    def total_vcpus(self) -> int:
        """Aggregate vCPU capacity."""
        return self.num_invokers * self.vcpus_per_invoker

    @property
    def total_vgpus(self) -> int:
        """Aggregate vGPU capacity."""
        return self.num_invokers * self.vgpus_per_invoker

    def to_cluster_config(self, *, index_mode: str = "indexed") -> ClusterConfig:
        """Resolve to the :class:`ClusterConfig` the simulator consumes."""
        return ClusterConfig(
            num_invokers=self.num_invokers,
            vcpus_per_invoker=self.vcpus_per_invoker,
            vgpus_per_invoker=self.vgpus_per_invoker,
            keep_alive_ms=self.keep_alive_ms,
            index_mode=index_mode,  # type: ignore[arg-type]
        )


class TopologyRegistry:
    """Name -> :class:`ClusterTopology` mapping with informative failures."""

    def __init__(self) -> None:
        self._topologies: dict[str, ClusterTopology] = {}

    def register(self, topology: ClusterTopology, *, replace: bool = False) -> ClusterTopology:
        """Add ``topology`` under its name; refuses silent redefinition."""
        if topology.name in self._topologies and not replace:
            raise ValueError(
                f"topology {topology.name!r} is already registered; "
                f"pass replace=True to override"
            )
        self._topologies[topology.name] = topology
        return topology

    def get(self, name: str) -> ClusterTopology:
        """Look up a topology, listing the known names on failure."""
        try:
            return self._topologies[name]
        except KeyError:
            raise KeyError(
                f"unknown topology {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        """All registered names, in registration order."""
        return list(self._topologies)

    def __iter__(self) -> Iterator[ClusterTopology]:
        return iter(self._topologies.values())

    def __len__(self) -> int:
        return len(self._topologies)

    def __contains__(self, name: str) -> bool:
        return name in self._topologies


#: The process-wide registry the CLI, scenarios and benchmarks consult.
TOPOLOGIES = TopologyRegistry()


def register_topology(topology: ClusterTopology, *, replace: bool = False) -> ClusterTopology:
    """Register ``topology`` in the global :data:`TOPOLOGIES` registry."""
    return TOPOLOGIES.register(topology, replace=replace)


def get_topology(name: str | ClusterTopology) -> ClusterTopology:
    """Resolve a topology name (or pass a topology object through)."""
    if isinstance(name, ClusterTopology):
        return name
    return TOPOLOGIES.get(name)


def topology_names() -> list[str]:
    """Names in the global :data:`TOPOLOGIES` registry."""
    return TOPOLOGIES.names()


def parse_topology(spec: str) -> ClusterTopology:
    """Parse a CLI topology spec: a registered name, ``N``, or ``NxCxG``.

    ``N`` scales the node count keeping the paper's per-node shape;
    ``NxCxG`` sets nodes, vCPUs per node and vGPUs per node explicitly.
    """
    spec = spec.strip()
    if spec in TOPOLOGIES:
        return TOPOLOGIES.get(spec)
    parts = spec.lower().split("x")
    try:
        numbers = [int(part) for part in parts]
    except ValueError:
        raise ValueError(
            f"invalid topology spec {spec!r}: expected a registered name "
            f"({', '.join(topology_names())}), an invoker count N, or NxCxG"
        ) from None
    if len(numbers) == 1:
        return ClusterTopology(name=spec, num_invokers=numbers[0])
    if len(numbers) == 3:
        return ClusterTopology(
            name=spec,
            num_invokers=numbers[0],
            vcpus_per_invoker=numbers[1],
            vgpus_per_invoker=numbers[2],
        )
    raise ValueError(f"invalid topology spec {spec!r}: expected N or NxCxG")


def _register_builtin_topologies() -> None:
    register_topology(
        ClusterTopology(
            name="paper-16",
            num_invokers=16,
            description="Table 2 testbed: 16 nodes x 16 vCPUs x 7 MIG vGPUs",
        )
    )
    register_topology(
        ClusterTopology(
            name="rack-64",
            num_invokers=64,
            description="One rack: 4x the paper testbed",
        )
    )
    register_topology(
        ClusterTopology(
            name="pod-256",
            num_invokers=256,
            description="One pod: 16x the paper testbed",
        )
    )
    register_topology(
        ClusterTopology(
            name="datacenter-1024",
            num_invokers=1024,
            description="Scale-out target: 64x the paper testbed",
        )
    )


_register_builtin_topologies()
