"""Event types for the discrete-event simulation.

Dispatch is polymorphic: every concrete event implements :meth:`Event.apply`,
which receives the :class:`~repro.cluster.simulator.Simulation` and performs
the state transition.  The simulator routes events through a handler
registry whose default entry simply calls ``event.apply(simulation)``, so
new scenario types can either subclass :class:`Event` (and implement
``apply``) or register an external handler via
:meth:`Simulation.register_handler` — no ``isinstance`` chain to extend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar

from repro.cluster.container import Container, ContainerState
from repro.cluster.tasks import Task
from repro.workloads.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.cluster.simulator import Simulation

__all__ = [
    "Event",
    "RequestArrivalEvent",
    "TaskCompletionEvent",
    "SchedulerTickEvent",
    "PrewarmCompleteEvent",
    "ContainerExpireEvent",
    "InvokerJoinEvent",
    "InvokerLeaveEvent",
    "InvokerResizeEvent",
]


@dataclass(frozen=True, slots=True)
class Event:
    """Base class: something that happens at an absolute simulation time.

    Events are slotted and carry no per-instance ``__post_init__``: millions
    of them are created per large run, so the ``time_ms >= 0`` invariant is
    enforced once at the scheduling boundary (``EventLoop.push``) instead of
    per construction.  Subclasses defined outside this module may omit
    ``slots=True``; they simply keep a ``__dict__``.
    """

    #: Housekeeping events (e.g. container-expiry timers) never keep a run
    #: alive on their own: the simulator drains them only while productive
    #: events remain, and they are invisible to the horizon check — exactly
    #: mirroring the per-tick expiry scan, which also stops when the
    #: workload does.
    housekeeping: ClassVar[bool] = False

    #: Tie-break rank among events scheduled for the same instant (lower
    #: pops first; push order breaks remaining ties).  Request arrivals rank
    #: ahead of everything else: a materialized run pushes every arrival
    #: before the first event is processed, so at equal timestamps arrivals
    #: always popped first — making that explicit keeps streaming runs
    #: (which push each arrival mid-run, as the previous one fires)
    #: byte-identical to materialized runs even on exact time collisions.
    sort_priority: ClassVar[int] = 1

    time_ms: float

    def apply(self, simulation: "Simulation") -> None:
        """Perform this event's state transition on ``simulation``."""
        raise NotImplementedError(
            f"{type(self).__name__} implements neither apply() nor a registered handler"
        )


@dataclass(frozen=True, slots=True)
class RequestArrivalEvent(Event):
    """A new application request arrives at the platform."""

    sort_priority: ClassVar[int] = 0

    request: Request = field(compare=False)

    def apply(self, simulation: "Simulation") -> None:
        simulation.controller.on_request_arrival(self.request, simulation.now_ms)


@dataclass(frozen=True, slots=True)
class TaskCompletionEvent(Event):
    """A dispatched task finishes executing on its invoker."""

    task: Task = field(compare=False)

    def apply(self, simulation: "Simulation") -> None:
        simulation.controller.on_task_completion(self.task, simulation.now_ms)


@dataclass(frozen=True, slots=True)
class SchedulerTickEvent(Event):
    """Periodic controller tick: scan the AFW queues round-robin.

    The simulator resets its tick-pending flag itself when it pops one of
    these (so shadowing this handler cannot stall re-scheduling); ``apply``
    only has to run the controller scan.
    """

    def apply(self, simulation: "Simulation") -> None:
        simulation.controller.on_tick(simulation.now_ms)


@dataclass(frozen=True, slots=True)
class PrewarmCompleteEvent(Event):
    """A prewarmed container finishes its cold start and becomes warm."""

    container: Container = field(compare=False)

    def apply(self, simulation: "Simulation") -> None:
        simulation.controller.on_prewarm_complete(self.container, simulation.now_ms)


@dataclass(frozen=True, slots=True)
class ContainerExpireEvent(Event):
    """An idle warm container's keep-alive timer elapses.

    Scheduled by the controller whenever a container (re)arms its keep-alive
    (indexed mode's replacement for the per-tick ``expire_containers`` scan).
    Cancellation is lazy: if the container was re-armed, went busy, or was
    already stopped, the armed deadline no longer matches ``time_ms`` and
    the event is a no-op — the standard timer-heap idiom.
    """

    housekeeping: ClassVar[bool] = True

    container: Container = field(compare=False)

    def apply(self, simulation: "Simulation") -> None:
        container = self.container
        if (
            container.state is ContainerState.WARM
            and container.expires_at_ms == self.time_ms
        ):
            container.mark_stopped()


@dataclass(frozen=True, slots=True)
class InvokerJoinEvent(Event):
    """A new invoker joins the cluster (churn schedule).

    Housekeeping like every churn event: capacity changes only matter while
    productive work remains, so a schedule extending past the workload's end
    never keeps the run alive or trips the horizon — identically in both
    loop modes.
    """

    housekeeping: ClassVar[bool] = True

    #: Node shape; ``None`` means the cluster config's per-invoker defaults.
    vcpus: int | None = None
    vgpus: int | None = None

    def apply(self, simulation: "Simulation") -> None:
        simulation.controller.on_invoker_join(self.vcpus, self.vgpus, simulation.now_ms)


@dataclass(frozen=True, slots=True)
class InvokerLeaveEvent(Event):
    """An invoker is evicted from the cluster (churn schedule).

    All resident containers are force-stopped and in-flight tasks follow the
    schedule's ``on_evict`` policy (requeue their jobs, or fail the owning
    requests with the ``evicted`` outcome).
    """

    housekeeping: ClassVar[bool] = True

    invoker_id: int

    def apply(self, simulation: "Simulation") -> None:
        simulation.controller.on_invoker_leave(self.invoker_id, simulation.now_ms)


@dataclass(frozen=True, slots=True)
class InvokerResizeEvent(Event):
    """An invoker's capacity target changes (harvested-VM shrink/grow).

    The applied size is clamped to ``max(1, target, in_use)``: harvesting
    only takes idle capacity, it never reclaims cores or slices from under
    running tasks.
    """

    housekeeping: ClassVar[bool] = True

    invoker_id: int
    vcpus: int
    vgpus: int

    def apply(self, simulation: "Simulation") -> None:
        simulation.controller.on_invoker_resize(
            self.invoker_id, self.vcpus, self.vgpus, simulation.now_ms
        )
