"""Event types for the discrete-event simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.container import Container
from repro.cluster.tasks import Task
from repro.workloads.request import Request

__all__ = [
    "Event",
    "RequestArrivalEvent",
    "TaskCompletionEvent",
    "SchedulerTickEvent",
    "PrewarmCompleteEvent",
]


@dataclass(frozen=True)
class Event:
    """Base class: something that happens at an absolute simulation time."""

    time_ms: float

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError(f"event time must be >= 0, got {self.time_ms}")


@dataclass(frozen=True)
class RequestArrivalEvent(Event):
    """A new application request arrives at the platform."""

    request: Request = field(compare=False)


@dataclass(frozen=True)
class TaskCompletionEvent(Event):
    """A dispatched task finishes executing on its invoker."""

    task: Task = field(compare=False)


@dataclass(frozen=True)
class SchedulerTickEvent(Event):
    """Periodic controller tick: scan the AFW queues round-robin."""


@dataclass(frozen=True)
class PrewarmCompleteEvent(Event):
    """A prewarmed container finishes its cold start and becomes warm."""

    container: Container = field(compare=False)
