"""Metrics collection and run summaries.

Everything the paper's evaluation reports is derived from the quantities
collected here: SLO hit rates and costs (Figures 6 and 8), per-application
end-to-end latencies (Figure 7), pre-planned configuration miss rates
(Table 4), scheduling overhead distributions (Figures 9-11) and
GPU-efficiency indicators for the ablation (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.tasks import Task
from repro.utils.stats import SummaryStats, summarize
from repro.workloads.request import Request

__all__ = ["MetricsCollector", "RunSummary"]


@dataclass(frozen=True)
class RunSummary:
    """Aggregate results of one simulated run (one policy, one setting)."""

    policy: str
    setting: str
    num_requests: int
    num_completed: int
    slo_hit_rate: float
    total_cost_cents: float
    cost_per_request_cents: float
    mean_latency_ms: float
    p95_latency_ms: float
    mean_overhead_ms: float
    p95_overhead_ms: float
    plan_attempts: int
    plan_misses: int
    cold_starts: int
    warm_starts: int
    local_transfers: int
    remote_transfers: int
    forced_min_dispatches: int
    mean_waiting_ms: float
    total_vgpu_ms: float
    total_vcpu_ms: float
    per_app_slo_hit_rate: dict[str, float]
    per_app_cost_cents: dict[str, float]
    per_app_mean_latency_ms: dict[str, float]
    #: True when the run stopped before the event queue drained (horizon
    #: ``max_time_ms`` reached or ``max_events`` exhausted).
    truncated: bool = False

    @property
    def plan_miss_rate(self) -> float:
        """Fraction of scheduling attempts whose pre-planned config failed."""
        if self.plan_attempts == 0:
            return 0.0
        return self.plan_misses / self.plan_attempts

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary used by the report renderers."""
        return {
            "policy": self.policy,
            "setting": self.setting,
            "num_requests": self.num_requests,
            "num_completed": self.num_completed,
            "slo_hit_rate": self.slo_hit_rate,
            "total_cost_cents": self.total_cost_cents,
            "cost_per_request_cents": self.cost_per_request_cents,
            "mean_latency_ms": self.mean_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "mean_overhead_ms": self.mean_overhead_ms,
            "p95_overhead_ms": self.p95_overhead_ms,
            "plan_miss_rate": self.plan_miss_rate,
            "cold_starts": self.cold_starts,
            "warm_starts": self.warm_starts,
            "local_transfers": self.local_transfers,
            "remote_transfers": self.remote_transfers,
            "forced_min_dispatches": self.forced_min_dispatches,
            "mean_waiting_ms": self.mean_waiting_ms,
            "total_vgpu_ms": self.total_vgpu_ms,
            "total_vcpu_ms": self.total_vcpu_ms,
            "truncated": self.truncated,
        }


@dataclass
class MetricsCollector:
    """Collects per-request and per-task observations during a run."""

    policy_name: str = ""
    setting_name: str = ""
    requests: list[Request] = field(default_factory=list)
    tasks: list[Task] = field(default_factory=list)
    overhead_ms_samples: list[float] = field(default_factory=list)
    plan_attempts: int = 0
    plan_misses: int = 0
    cold_starts: int = 0
    warm_starts: int = 0
    local_transfers: int = 0
    remote_transfers: int = 0
    forced_min_dispatches: int = 0
    prewarm_count: int = 0
    #: Set by the simulator when the run stops before the queue drains.
    truncated: bool = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def register_request(self, request: Request) -> None:
        """Register an arriving request (the SLO hit-rate denominator)."""
        self.requests.append(request)

    def record_task(self, task: Task) -> None:
        """Record a dispatched task and its latency breakdown."""
        self.tasks.append(task)
        if task.was_cold_start:
            self.cold_starts += 1
        else:
            self.warm_starts += 1

    def record_overhead(self, overhead_ms: float) -> None:
        """Record one scheduling-overhead sample (one plan() invocation)."""
        if overhead_ms < 0:
            raise ValueError(f"overhead must be >= 0, got {overhead_ms}")
        self.overhead_ms_samples.append(overhead_ms)

    def record_plan_attempt(self, *, miss: bool) -> None:
        """Record one attempt to apply a pre-planned configuration."""
        self.plan_attempts += 1
        if miss:
            self.plan_misses += 1

    def record_transfer(self, *, local: bool) -> None:
        """Record one inter-stage data transfer."""
        if local:
            self.local_transfers += 1
        else:
            self.remote_transfers += 1

    def record_forced_min_dispatch(self) -> None:
        """Record a queue dispatched with the minimum config after rechecks."""
        self.forced_min_dispatches += 1

    def record_prewarm(self) -> None:
        """Record one prewarm container launch."""
        self.prewarm_count += 1

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def completed_requests(self, app_name: str | None = None) -> list[Request]:
        """Requests that finished (optionally filtered by application)."""
        return [
            r
            for r in self.requests
            if r.is_complete and (app_name is None or r.app_name == app_name)
        ]

    def slo_hit_rate(self, app_name: str | None = None) -> float:
        """Fraction of *all* registered requests that completed within SLO."""
        relevant = [r for r in self.requests if app_name is None or r.app_name == app_name]
        if not relevant:
            return 0.0
        hits = sum(1 for r in relevant if r.slo_hit)
        return hits / len(relevant)

    def latencies_ms(self, app_name: str | None = None) -> list[float]:
        """End-to-end latencies of completed requests, in completion order."""
        done = sorted(self.completed_requests(app_name), key=lambda r: r.completed_ms)
        return [r.latency_ms for r in done]

    def total_cost_cents(self, app_name: str | None = None) -> float:
        """Sum of task costs (optionally of one application)."""
        return sum(
            t.cost_cents for t in self.tasks if app_name is None or t.app_name == app_name
        )

    def cost_per_request_cents(self, app_name: str | None = None) -> float:
        """Total cost divided by the number of registered requests."""
        relevant = [r for r in self.requests if app_name is None or r.app_name == app_name]
        if not relevant:
            return 0.0
        return self.total_cost_cents(app_name) / len(relevant)

    def plan_miss_rate(self) -> float:
        """Fraction of plan applications that missed (Table 4)."""
        if self.plan_attempts == 0:
            return 0.0
        return self.plan_misses / self.plan_attempts

    def overhead_summary(self) -> SummaryStats:
        """Distribution of scheduling overhead per plan() call (Figure 10)."""
        return summarize(self.overhead_ms_samples)

    def waiting_ms_samples(self) -> list[float]:
        """Queueing delay of every dispatched task."""
        return [t.waiting_ms() for t in self.tasks]

    def total_vgpu_ms(self) -> float:
        """vGPU-milliseconds consumed by all tasks (GPU efficiency metric)."""
        return sum(t.config.vgpus * t.duration_ms for t in self.tasks)

    def total_vcpu_ms(self) -> float:
        """vCPU-milliseconds consumed by all tasks."""
        return sum(t.config.vcpus * t.duration_ms for t in self.tasks)

    def app_names(self) -> list[str]:
        """Applications observed in this run (sorted)."""
        return sorted({r.app_name for r in self.requests})

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summary(self) -> RunSummary:
        """Condense the run into a :class:`RunSummary`."""
        latencies = self.latencies_ms()
        latency_stats = summarize(latencies) if latencies else None
        overheads = self.overhead_ms_samples
        overhead_stats = summarize(overheads) if overheads else None
        waiting = self.waiting_ms_samples()
        per_app_hit = {app: self.slo_hit_rate(app) for app in self.app_names()}
        per_app_cost = {app: self.total_cost_cents(app) for app in self.app_names()}
        per_app_latency = {}
        for app in self.app_names():
            app_lat = self.latencies_ms(app)
            per_app_latency[app] = sum(app_lat) / len(app_lat) if app_lat else 0.0

        return RunSummary(
            policy=self.policy_name,
            setting=self.setting_name,
            num_requests=len(self.requests),
            num_completed=len(self.completed_requests()),
            slo_hit_rate=self.slo_hit_rate(),
            total_cost_cents=self.total_cost_cents(),
            cost_per_request_cents=self.cost_per_request_cents(),
            mean_latency_ms=latency_stats.mean if latency_stats else 0.0,
            p95_latency_ms=latency_stats.p95 if latency_stats else 0.0,
            mean_overhead_ms=overhead_stats.mean if overhead_stats else 0.0,
            p95_overhead_ms=overhead_stats.p95 if overhead_stats else 0.0,
            plan_attempts=self.plan_attempts,
            plan_misses=self.plan_misses,
            cold_starts=self.cold_starts,
            warm_starts=self.warm_starts,
            local_transfers=self.local_transfers,
            remote_transfers=self.remote_transfers,
            forced_min_dispatches=self.forced_min_dispatches,
            mean_waiting_ms=(sum(waiting) / len(waiting)) if waiting else 0.0,
            total_vgpu_ms=self.total_vgpu_ms(),
            total_vcpu_ms=self.total_vcpu_ms(),
            per_app_slo_hit_rate=per_app_hit,
            per_app_cost_cents=per_app_cost,
            per_app_mean_latency_ms=per_app_latency,
            truncated=self.truncated,
        )
