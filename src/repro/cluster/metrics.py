"""Metrics collection and run summaries.

Everything the paper's evaluation reports is derived from the quantities
collected here: SLO hit rates and costs (Figures 6 and 8), per-application
end-to-end latencies (Figure 7), pre-planned configuration miss rates
(Table 4), scheduling overhead distributions (Figures 9-11) and
GPU-efficiency indicators for the ablation (Figure 12).

The collector runs in one of two modes (:class:`MetricsConfig`):

* ``"retained"`` (default) — every :class:`Request` and :class:`Task` object
  is kept for the whole run and the derived metrics re-scan them.  Fully
  debuggable: after a run you can inspect any individual request.
* ``"streaming"`` — each observation is folded into per-application
  accumulators at record time (counters, cost sums, Welford
  :class:`~repro.utils.stats.RunningStats`, and compact ``array('d')``
  buffers holding exactly the samples the paper's quantiles need) and the
  ``Request``/``Task`` objects are never retained.  The *collector's*
  memory per request drops from whole object graphs to a few dozen bytes:
  the Task/Job graphs (which only the collector keeps alive in retained
  mode) are freed as the run drains, and nothing survives the run beyond
  the accumulators.  The workload's own request list still scales with the
  run size — streaming removes the metrics layer from the memory equation,
  not the simulation input.

The two modes are **byte-identical**: every accumulator applies the same
floating-point operations in the same order as the retained scans, so
``summary()`` produces an equal :class:`RunSummary` either way (asserted by
the tier-1 parity suite, mirroring the cluster core's ``index_mode="scan"``
precedent).

Completed requests are ordered canonically by ``(completed_ms,
request_id)`` in both modes.  Resource-holding metrics (cost, vGPU-ms,
vCPU-ms) are clamped to the run horizon: a task dispatched before
``max_time_ms`` but finishing past it is only charged for the resource time
that falls inside the measured window (see :func:`charged_duration_ms`).
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.tasks import Task
from repro.utils.stats import RunningStats, SummaryStats, summarize
from repro.workloads.request import Request

__all__ = [
    "METRICS_MODES",
    "MetricsCollector",
    "MetricsConfig",
    "RunSummary",
    "charged_cost_cents",
    "charged_duration_ms",
]

#: Collector modes accepted by :class:`MetricsConfig`.
METRICS_MODES = ("retained", "streaming")


@dataclass(frozen=True)
class MetricsConfig:
    """How the :class:`MetricsCollector` stores its observations.

    ``mode="retained"`` keeps every request/task object alive (the default,
    debuggable path); ``mode="streaming"`` folds observations into compact
    per-application accumulators at record time and never retains the
    objects.  Summaries are byte-identical across modes.
    """

    mode: str = "retained"

    def __post_init__(self) -> None:
        if self.mode not in METRICS_MODES:
            raise ValueError(
                f"unknown metrics mode {self.mode!r}; expected one of {METRICS_MODES}"
            )


# ----------------------------------------------------------------------
# Horizon clamping
# ----------------------------------------------------------------------
def charged_duration_ms(task: Task, horizon_ms: float) -> float:
    """Resource-holding time of ``task`` clamped to the run horizon.

    A truncated run stops the clock at ``horizon_ms`` but tasks dispatched
    shortly before it keep their full ``duration_ms``; charging that full
    duration would bill resource time the measured window never observed
    (and inflate cost-per-request for truncated sweeps).  Only the portion
    of ``[start_ms, finish_ms]`` that lies inside the horizon is charged.
    """
    if task.finish_ms <= horizon_ms:
        return task.duration_ms
    return max(0.0, horizon_ms - task.start_ms)


def charged_cost_cents(task: Task, horizon_ms: float) -> float:
    """``task.cost_cents`` scaled to the fraction held inside the horizon."""
    if task.finish_ms <= horizon_ms:
        return task.cost_cents
    duration = task.duration_ms
    if duration <= 0.0:
        # A zero-length task past the horizon held nothing inside it.
        return 0.0
    return task.cost_cents * (max(0.0, horizon_ms - task.start_ms) / duration)


@dataclass(frozen=True)
class RunSummary:
    """Aggregate results of one simulated run (one policy, one setting)."""

    policy: str
    setting: str
    num_requests: int
    num_completed: int
    slo_hit_rate: float
    total_cost_cents: float
    cost_per_request_cents: float
    mean_latency_ms: float
    p95_latency_ms: float
    mean_overhead_ms: float
    p95_overhead_ms: float
    plan_attempts: int
    plan_misses: int
    cold_starts: int
    warm_starts: int
    local_transfers: int
    remote_transfers: int
    forced_min_dispatches: int
    mean_waiting_ms: float
    total_vgpu_ms: float
    total_vcpu_ms: float
    per_app_slo_hit_rate: dict[str, float]
    per_app_cost_cents: dict[str, float]
    per_app_mean_latency_ms: dict[str, float]
    #: True when the run stopped before the event queue drained (horizon
    #: ``max_time_ms`` reached or ``max_events`` exhausted).
    truncated: bool = False
    #: Requests terminally failed by node evictions (churn, ``on_evict="fail"``).
    num_evicted: int = 0
    #: In-flight tasks dropped by node evictions (both eviction policies).
    evicted_tasks: int = 0
    #: Jobs pushed back on the AFW queues after an eviction (``on_evict="requeue"``).
    requeued_jobs: int = 0

    @property
    def plan_miss_rate(self) -> float:
        """Fraction of scheduling attempts whose pre-planned config failed."""
        if self.plan_attempts == 0:
            return 0.0
        return self.plan_misses / self.plan_attempts

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary used by the report renderers."""
        return {
            "policy": self.policy,
            "setting": self.setting,
            "num_requests": self.num_requests,
            "num_completed": self.num_completed,
            "slo_hit_rate": self.slo_hit_rate,
            "total_cost_cents": self.total_cost_cents,
            "cost_per_request_cents": self.cost_per_request_cents,
            "mean_latency_ms": self.mean_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "mean_overhead_ms": self.mean_overhead_ms,
            "p95_overhead_ms": self.p95_overhead_ms,
            "plan_miss_rate": self.plan_miss_rate,
            "cold_starts": self.cold_starts,
            "warm_starts": self.warm_starts,
            "local_transfers": self.local_transfers,
            "remote_transfers": self.remote_transfers,
            "forced_min_dispatches": self.forced_min_dispatches,
            "mean_waiting_ms": self.mean_waiting_ms,
            "total_vgpu_ms": self.total_vgpu_ms,
            "total_vcpu_ms": self.total_vcpu_ms,
            "truncated": self.truncated,
            "num_evicted": self.num_evicted,
            "evicted_tasks": self.evicted_tasks,
            "requeued_jobs": self.requeued_jobs,
        }


class _AppAccumulator:
    """Streaming-mode accumulator for one application (or the whole run).

    Holds exactly what the summary needs: integer counters, the running cost
    sum, a Welford :class:`RunningStats` over latencies (cheap mean/std
    introspection without a sort), and three parallel compact buffers —
    ``completed_ms`` / ``request_ids`` / ``latency_ms`` — from which the
    exact latency quantiles are computed in canonical completion order.
    """

    __slots__ = (
        "registered",
        "completed",
        "slo_hits",
        "cost_cents",
        "completed_ms",
        "request_ids",
        "latency_ms",
        "latency_stats",
        "slo_ms",
    )

    def __init__(self) -> None:
        self.registered = 0
        self.completed = 0
        self.slo_hits = 0
        self.cost_cents = 0.0
        self.completed_ms = array("d")
        self.request_ids = array("q")
        self.latency_ms = array("d")
        self.latency_stats = RunningStats()
        #: SLO budget of the first registered request (all requests of one
        #: application share one SLO within a run); None until one arrives.
        self.slo_ms: float | None = None

    def fold_completion(self, request: Request) -> None:
        latency = request.latency_ms
        self.completed += 1
        if request.slo_hit:
            self.slo_hits += 1
        self.completed_ms.append(request.completed_ms)
        self.request_ids.append(request.request_id)
        self.latency_ms.append(latency)
        self.latency_stats.update(latency)

    def ordered_latencies(self) -> list[float]:
        """Latencies in canonical ``(completed_ms, request_id)`` order.

        Completion events fold in event-processing order; re-ordering via a
        single lexsort reproduces exactly the sequence the retained path
        builds, so every order-sensitive float reduction downstream (numpy
        pairwise means, left-to-right sums) is bit-identical.
        """
        if not self.latency_ms:
            return []
        order = np.lexsort(
            (np.asarray(self.request_ids), np.frombuffer(self.completed_ms, dtype=float))
        )
        return np.frombuffer(self.latency_ms, dtype=float)[order].tolist()


#: Error raised for any read of / record into a placeholder collector.
_PLACEHOLDER_ERROR = (
    "this MetricsCollector is a summary_only placeholder: no observations "
    "were recorded in it (only the counters and the truncated flag mirror "
    "the run); read the result's RunSummary for derived metrics"
)


class _PlaceholderSamples:
    """Stand-in for a placeholder collector's observation containers.

    Any attempt to read it — length, iteration, indexing, truthiness —
    raises the same explicit error as the guarded accessors, so code that
    reads ``metrics.overhead_ms_samples`` (or ``requests``/``tasks``)
    directly cannot silently compute from empty data.
    """

    def _raise(self):
        raise RuntimeError(_PLACEHOLDER_ERROR)

    def __len__(self):
        self._raise()

    def __iter__(self):
        self._raise()

    def __getitem__(self, index):
        self._raise()

    def __bool__(self):
        self._raise()

    def __repr__(self) -> str:
        return "<placeholder: no observations recorded>"


@dataclass
class MetricsCollector:
    """Collects per-request and per-task observations during a run.

    In retained mode (the default) ``requests`` and ``tasks`` hold every
    observed object and the derived metrics scan them; in streaming mode
    (``config.mode == "streaming"``) both lists stay empty and the same
    quantities are folded into accumulators at record time.  Streaming mode
    relies on :meth:`record_completion` being called exactly once when a
    request finishes (the controller does this); a request that is already
    complete when registered is folded immediately.
    """

    policy_name: str = ""
    setting_name: str = ""
    requests: list[Request] = field(default_factory=list)
    tasks: list[Task] = field(default_factory=list)
    overhead_ms_samples: list[float] = field(default_factory=list)
    plan_attempts: int = 0
    plan_misses: int = 0
    cold_starts: int = 0
    warm_starts: int = 0
    local_transfers: int = 0
    remote_transfers: int = 0
    forced_min_dispatches: int = 0
    prewarm_count: int = 0
    #: In-flight tasks dropped by node evictions (cluster churn).
    evicted_tasks: int = 0
    #: Jobs requeued after node evictions (``on_evict="requeue"``).
    requeued_jobs: int = 0
    #: Set by the simulator when the run stops before the queue drains.
    truncated: bool = False
    #: Storage mode (retained vs streaming accumulators).
    config: MetricsConfig = field(default_factory=MetricsConfig)
    #: The run's ``max_time_ms``; resource-holding metrics (cost, vGPU-ms,
    #: vCPU-ms) are clamped to it so truncated runs are not overcharged.
    horizon_ms: float = math.inf
    #: True for the stand-in collectors attached to ``summary_only`` engine
    #: results: counters and flags mirror the run's summary, but no request
    #: or task observations were ever recorded here.
    placeholder: bool = False

    def __post_init__(self) -> None:
        self._total = _AppAccumulator()
        self._per_app: dict[str, _AppAccumulator] = {}
        self._waiting_ms = array("d")
        self._vgpu_ms = 0.0
        self._vcpu_ms = 0.0
        #: Streaming-mode eviction counter (retained mode scans requests).
        self._evicted = 0
        if self.is_streaming:
            # Same append/iterate surface as the list, 8 bytes per sample.
            self.overhead_ms_samples = array("d", self.overhead_ms_samples)

    @property
    def is_streaming(self) -> bool:
        """True when observations fold into accumulators at record time."""
        return self.config.mode == "streaming"

    @classmethod
    def placeholder_from_summary(cls, summary: RunSummary) -> "MetricsCollector":
        """An explicit stand-in collector consistent with ``summary``.

        ``summary_only`` engine results do not ship per-request data back
        from workers, but code that inspects ``result.metrics`` must not be
        misled by a default-constructed collector whose ``truncated``/counter
        fields contradict the attached summary.  The placeholder carries the
        summary's flags and counters and sets :attr:`placeholder`; every
        observation-derived read — accessor methods (``num_requests``,
        ``slo_hit_rate``, ``latencies_ms``, ``summary()``, ...) *and* the
        raw ``requests``/``tasks``/``overhead_ms_samples`` containers —
        raises instead of silently answering from empty data
        (``prewarm_count`` is not part of the summary and stays 0).
        """
        collector = cls(
            policy_name=summary.policy,
            setting_name=summary.setting,
            plan_attempts=summary.plan_attempts,
            plan_misses=summary.plan_misses,
            cold_starts=summary.cold_starts,
            warm_starts=summary.warm_starts,
            local_transfers=summary.local_transfers,
            remote_transfers=summary.remote_transfers,
            forced_min_dispatches=summary.forced_min_dispatches,
            evicted_tasks=summary.evicted_tasks,
            requeued_jobs=summary.requeued_jobs,
            truncated=summary.truncated,
            placeholder=True,
        )
        # Direct field reads must fail as loudly as the guarded accessors.
        collector.requests = _PlaceholderSamples()
        collector.tasks = _PlaceholderSamples()
        collector.overhead_ms_samples = _PlaceholderSamples()
        return collector

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _check_not_placeholder(self) -> None:
        if self.placeholder:
            raise RuntimeError(_PLACEHOLDER_ERROR)

    def _app(self, app_name: str) -> _AppAccumulator:
        acc = self._per_app.get(app_name)
        if acc is None:
            acc = self._per_app[app_name] = _AppAccumulator()
        return acc

    def register_request(self, request: Request) -> None:
        """Register an arriving request (the SLO hit-rate denominator)."""
        self._check_not_placeholder()
        if self.is_streaming:
            self._total.registered += 1
            acc = self._app(request.app_name)
            acc.registered += 1
            if acc.slo_ms is None:
                acc.slo_ms = request.slo_ms
            if request.is_complete:
                # Synthetic feeds may register pre-completed requests; fold
                # them now (record_completion must then not be called again).
                self._fold_completion(request)
            return
        self.requests.append(request)

    def record_completion(self, request: Request) -> None:
        """Notify the collector that a registered request just completed.

        The controller calls this exactly once, at the moment the final sink
        stage finishes.  Retained mode derives completion by scanning, so the
        call is a no-op there; streaming mode folds the latency sample here.
        """
        self._check_not_placeholder()
        if not self.is_streaming:
            return
        if not request.is_complete:
            raise ValueError(
                f"request {request.request_id} has not completed; "
                "record_completion must be called after the final stage finishes"
            )
        self._fold_completion(request)

    def _fold_completion(self, request: Request) -> None:
        acc = self._app(request.app_name)
        if acc.completed >= acc.registered:
            # Cheap misuse guard: catches a request folded twice (registered
            # pre-completed *and* notified via record_completion) and
            # completions of never-registered requests, both of which would
            # otherwise silently corrupt rates (e.g. slo_hit_rate > 1).
            raise ValueError(
                f"completion of request {request.request_id} would exceed the "
                f"registered request count of app {request.app_name!r}; was the "
                "request registered, and its completion recorded only once?"
            )
        self._total.fold_completion(request)
        acc.fold_completion(request)

    def _fold_completion_fast(self, request: Request) -> None:
        """``loop_mode="fast"`` streaming fold (same observable state).

        Folds the identical sample into the identical buffers with the
        per-call constants stripped: the latency/SLO properties are inlined
        (``latency = completed - arrival``, ``hit = latency <= slo``) and
        the Welford :class:`RunningStats` update is deferred —
        :meth:`latency_running_stats` replays the buffered samples in fold
        order on first read, which reproduces the eager update sequence
        exactly.  The misuse guard is kept.
        """
        app_name = request.workflow.name
        acc = self._per_app.get(app_name)
        if acc is None:
            acc = self._per_app[app_name] = _AppAccumulator()
        if acc.completed >= acc.registered:
            raise ValueError(
                f"completion of request {request.request_id} would exceed the "
                f"registered request count of app {app_name!r}; was the "
                "request registered, and its completion recorded only once?"
            )
        completed_ms = request.completed_ms
        latency = completed_ms - request.arrival_ms
        hit = latency <= request.slo_ms
        request_id = request.request_id
        total = self._total
        total.completed += 1
        acc.completed += 1
        if hit:
            total.slo_hits += 1
            acc.slo_hits += 1
        total.completed_ms.append(completed_ms)
        acc.completed_ms.append(completed_ms)
        total.request_ids.append(request_id)
        acc.request_ids.append(request_id)
        total.latency_ms.append(latency)
        acc.latency_ms.append(latency)

    def record_task(self, task: Task) -> None:
        """Record a dispatched task and its latency breakdown."""
        self._check_not_placeholder()
        if task.was_cold_start:
            self.cold_starts += 1
        else:
            self.warm_starts += 1
        if self.is_streaming:
            cost = charged_cost_cents(task, self.horizon_ms)
            held_ms = charged_duration_ms(task, self.horizon_ms)
            self._total.cost_cents += cost
            self._app(task.app_name).cost_cents += cost
            self._vgpu_ms += task.config.vgpus * held_ms
            self._vcpu_ms += task.config.vcpus * held_ms
            self._waiting_ms.append(task.waiting_ms())
            return
        self.tasks.append(task)

    def record_overhead(self, overhead_ms: float) -> None:
        """Record one scheduling-overhead sample (one plan() invocation)."""
        self._check_not_placeholder()
        if overhead_ms < 0:
            raise ValueError(f"overhead must be >= 0, got {overhead_ms}")
        self.overhead_ms_samples.append(overhead_ms)

    def record_plan_attempt(self, *, miss: bool) -> None:
        """Record one attempt to apply a pre-planned configuration."""
        self._check_not_placeholder()
        self.plan_attempts += 1
        if miss:
            self.plan_misses += 1

    def record_transfer(self, *, local: bool) -> None:
        """Record one inter-stage data transfer."""
        self._check_not_placeholder()
        if local:
            self.local_transfers += 1
        else:
            self.remote_transfers += 1

    def record_forced_min_dispatch(self) -> None:
        """Record a queue dispatched with the minimum config after rechecks."""
        self._check_not_placeholder()
        self.forced_min_dispatches += 1

    def record_prewarm(self) -> None:
        """Record one prewarm container launch."""
        self._check_not_placeholder()
        self.prewarm_count += 1

    def record_task_evicted(self) -> None:
        """Record one in-flight task dropped by a node eviction."""
        self._check_not_placeholder()
        self.evicted_tasks += 1

    def record_requeued_jobs(self, count: int) -> None:
        """Record ``count`` jobs requeued after a node eviction."""
        self._check_not_placeholder()
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.requeued_jobs += count

    def record_request_evicted(self, request: Request) -> None:
        """Notify the collector that ``request`` was terminally evicted.

        The controller calls this exactly once, right after stamping
        ``request.evicted_ms``.  Retained mode derives the count by scanning
        the request list, so only streaming mode counts here — mirroring
        :meth:`record_completion`.
        """
        self._check_not_placeholder()
        if self.is_streaming:
            self._evicted += 1

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def completed_requests(self, app_name: str | None = None) -> list[Request]:
        """Requests that finished (optionally filtered by application)."""
        self._check_not_placeholder()
        if self.is_streaming:
            raise RuntimeError(
                "a streaming MetricsCollector does not retain Request objects; "
                "use MetricsConfig(mode='retained') to inspect individual requests"
            )
        return [
            r
            for r in self.requests
            if r.is_complete and (app_name is None or r.app_name == app_name)
        ]

    def num_requests(self, app_name: str | None = None) -> int:
        """Number of registered requests (optionally of one application)."""
        self._check_not_placeholder()
        if self.is_streaming:
            acc = self._total if app_name is None else self._per_app.get(app_name)
            return acc.registered if acc is not None else 0
        return sum(1 for r in self.requests if app_name is None or r.app_name == app_name)

    def num_completed(self, app_name: str | None = None) -> int:
        """Number of completed requests (optionally of one application)."""
        self._check_not_placeholder()
        if self.is_streaming:
            acc = self._total if app_name is None else self._per_app.get(app_name)
            return acc.completed if acc is not None else 0
        return len(self.completed_requests(app_name))

    def num_evicted(self) -> int:
        """Number of requests terminally failed by node evictions."""
        self._check_not_placeholder()
        if self.is_streaming:
            return self._evicted
        return sum(1 for r in self.requests if r.evicted_ms is not None)

    def app_slo_ms(self, app_name: str) -> float | None:
        """SLO budget of ``app_name``'s requests in this run (None if unseen).

        Every request of one application carries the same SLO within a run
        (setting factor x the app's base latency), so the first registered
        request's value stands for the app.  Served in both modes — in
        streaming mode no ``Request`` object survives, so the figure
        modules must read the SLO here rather than from a request list.
        """
        self._check_not_placeholder()
        if self.is_streaming:
            acc = self._per_app.get(app_name)
            return acc.slo_ms if acc is not None else None
        for request in self.requests:
            if request.app_name == app_name:
                return request.slo_ms
        return None

    def slo_hit_rate(self, app_name: str | None = None) -> float:
        """Fraction of *all* registered requests that completed within SLO."""
        self._check_not_placeholder()
        if self.is_streaming:
            acc = self._total if app_name is None else self._per_app.get(app_name)
            if acc is None or acc.registered == 0:
                return 0.0
            return acc.slo_hits / acc.registered
        relevant = [r for r in self.requests if app_name is None or r.app_name == app_name]
        if not relevant:
            return 0.0
        hits = sum(1 for r in relevant if r.slo_hit)
        return hits / len(relevant)

    def latencies_ms(self, app_name: str | None = None) -> list[float]:
        """End-to-end latencies of completed requests.

        Canonical order in both modes: ``(completed_ms, request_id)``
        ascending, so streaming buffers and retained scans produce the same
        sequence bit-for-bit.
        """
        self._check_not_placeholder()
        if self.is_streaming:
            acc = self._total if app_name is None else self._per_app.get(app_name)
            return acc.ordered_latencies() if acc is not None else []
        done = sorted(
            self.completed_requests(app_name),
            key=lambda r: (r.completed_ms, r.request_id),
        )
        return [r.latency_ms for r in done]

    def latency_running_stats(self, app_name: str | None = None) -> RunningStats:
        """Welford running mean/std of latencies (streaming mode only)."""
        self._check_not_placeholder()
        if not self.is_streaming:
            raise RuntimeError(
                "running latency stats are maintained in streaming mode only; "
                "retained mode can summarize(latencies_ms()) instead"
            )
        acc = self._total if app_name is None else self._per_app.get(app_name)
        if acc is None:
            return RunningStats()
        if acc.latency_stats.count != len(acc.latency_ms):
            # Fast-mode folds defer the Welford updates; replaying the
            # buffered samples in fold order reproduces the eager update
            # sequence bit for bit.
            stats = RunningStats()
            for sample in acc.latency_ms:
                stats.update(sample)
            acc.latency_stats = stats
        return acc.latency_stats

    def total_cost_cents(self, app_name: str | None = None) -> float:
        """Sum of task costs (optionally of one application).

        Each task is charged only for the resource time it held inside the
        run horizon (:func:`charged_cost_cents`).
        """
        self._check_not_placeholder()
        if self.is_streaming:
            acc = self._total if app_name is None else self._per_app.get(app_name)
            return acc.cost_cents if acc is not None else 0.0
        return sum(
            charged_cost_cents(t, self.horizon_ms)
            for t in self.tasks
            if app_name is None or t.app_name == app_name
        )

    def cost_per_request_cents(self, app_name: str | None = None) -> float:
        """Total cost divided by the number of registered requests."""
        self._check_not_placeholder()
        registered = self.num_requests(app_name)
        if registered == 0:
            return 0.0
        return self.total_cost_cents(app_name) / registered

    def plan_miss_rate(self) -> float:
        """Fraction of plan applications that missed (Table 4)."""
        if self.plan_attempts == 0:
            return 0.0
        return self.plan_misses / self.plan_attempts

    def overhead_summary(self) -> SummaryStats:
        """Distribution of scheduling overhead per plan() call (Figure 10)."""
        self._check_not_placeholder()
        return summarize(self.overhead_ms_samples)

    def waiting_ms_samples(self) -> list[float]:
        """Queueing delay of every dispatched task (task-record order)."""
        self._check_not_placeholder()
        if self.is_streaming:
            return list(self._waiting_ms)
        return [t.waiting_ms() for t in self.tasks]

    def total_vgpu_ms(self) -> float:
        """vGPU-milliseconds consumed inside the horizon (GPU efficiency)."""
        self._check_not_placeholder()
        if self.is_streaming:
            return self._vgpu_ms
        return sum(
            t.config.vgpus * charged_duration_ms(t, self.horizon_ms) for t in self.tasks
        )

    def total_vcpu_ms(self) -> float:
        """vCPU-milliseconds consumed inside the horizon."""
        self._check_not_placeholder()
        if self.is_streaming:
            return self._vcpu_ms
        return sum(
            t.config.vcpus * charged_duration_ms(t, self.horizon_ms) for t in self.tasks
        )

    def app_names(self) -> list[str]:
        """Applications observed in this run (sorted).

        Apps are observed through *requests* in both modes: an accumulator
        created only by task records (possible in synthetic feeds) is not an
        observed application, matching the retained scan's semantics.
        """
        self._check_not_placeholder()
        if self.is_streaming:
            return sorted(app for app, acc in self._per_app.items() if acc.registered > 0)
        return sorted({r.app_name for r in self.requests})

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summary(self) -> RunSummary:
        """Condense the run into a :class:`RunSummary`.

        The same code path serves both modes: every accessor above reads the
        streaming accumulators or scans the retained objects, applying
        identical float operations in an identical order — the foundation of
        the byte-identical parity guarantee.  In streaming mode this is a
        single pass over the compact buffers (one lexsort per scope) rather
        than O(apps x n) re-scans of the request/task lists.
        """
        self._check_not_placeholder()
        latencies = self.latencies_ms()
        latency_stats = summarize(latencies) if latencies else None
        overheads = self.overhead_ms_samples
        overhead_stats = summarize(overheads) if len(overheads) else None
        waiting = self.waiting_ms_samples()
        per_app_hit = {app: self.slo_hit_rate(app) for app in self.app_names()}
        per_app_cost = {app: self.total_cost_cents(app) for app in self.app_names()}
        per_app_latency = {}
        for app in self.app_names():
            app_lat = self.latencies_ms(app)
            per_app_latency[app] = sum(app_lat) / len(app_lat) if app_lat else 0.0

        return RunSummary(
            policy=self.policy_name,
            setting=self.setting_name,
            num_requests=self.num_requests(),
            num_completed=self.num_completed(),
            slo_hit_rate=self.slo_hit_rate(),
            total_cost_cents=self.total_cost_cents(),
            cost_per_request_cents=self.cost_per_request_cents(),
            mean_latency_ms=latency_stats.mean if latency_stats else 0.0,
            p95_latency_ms=latency_stats.p95 if latency_stats else 0.0,
            mean_overhead_ms=overhead_stats.mean if overhead_stats else 0.0,
            p95_overhead_ms=overhead_stats.p95 if overhead_stats else 0.0,
            plan_attempts=self.plan_attempts,
            plan_misses=self.plan_misses,
            cold_starts=self.cold_starts,
            warm_starts=self.warm_starts,
            local_transfers=self.local_transfers,
            remote_transfers=self.remote_transfers,
            forced_min_dispatches=self.forced_min_dispatches,
            mean_waiting_ms=(sum(waiting) / len(waiting)) if waiting else 0.0,
            total_vgpu_ms=self.total_vgpu_ms(),
            total_vcpu_ms=self.total_vcpu_ms(),
            per_app_slo_hit_rate=per_app_hit,
            per_app_cost_cents=per_app_cost,
            per_app_mean_latency_ms=per_app_latency,
            truncated=self.truncated,
            num_evicted=self.num_evicted(),
            evicted_tasks=self.evicted_tasks,
            requeued_jobs=self.requeued_jobs,
        )
