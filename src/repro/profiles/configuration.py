"""The serverless-function configuration model.

A *configuration* is the triple the ESG paper schedules over:

``(batch size, #vCPUs, #vGPUs)``

* **batch size** — how many queued jobs (invocations) are grouped into one
  task and processed by a single function invocation;
* **#vCPUs** — CPU resource units assigned to the container (memory is
  implicitly tied to vCPUs as on commercial platforms);
* **#vGPUs** — GPU resource units, where one vGPU is the minimum MIG
  partition of the shared GPU (up to 7 on an A100).

A :class:`ConfigurationSpace` enumerates the options available per function
and is shared by the ESG search, the baselines and the profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.utils.validation import ensure_positive_int

__all__ = ["Configuration", "ConfigurationSpace"]


@dataclass(frozen=True, order=True)
class Configuration:
    """One resource assignment for one serverless function invocation."""

    batch_size: int
    vcpus: int
    vgpus: int

    def __post_init__(self) -> None:
        ensure_positive_int(self.batch_size, "batch_size")
        ensure_positive_int(self.vcpus, "vcpus")
        ensure_positive_int(self.vgpus, "vgpus")

    def with_batch(self, batch_size: int) -> "Configuration":
        """Return a copy with a different batch size (used when clipping)."""
        return Configuration(batch_size=batch_size, vcpus=self.vcpus, vgpus=self.vgpus)

    def as_tuple(self) -> tuple[int, int, int]:
        """Return ``(batch_size, vcpus, vgpus)``."""
        return (self.batch_size, self.vcpus, self.vgpus)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(b={self.batch_size}, c={self.vcpus}, g={self.vgpus})"


#: Default option lists.  16 vCPUs and 7 vGPUs match the testbed node in
#: Table 2 of the paper; batch sizes follow the powers of two the paper uses
#: in its examples (Figure 3 shows batch sizes up to 8).
DEFAULT_BATCH_OPTIONS: tuple[int, ...] = (1, 2, 4, 8)
DEFAULT_VCPU_OPTIONS: tuple[int, ...] = (1, 2, 4, 8, 16)
DEFAULT_VGPU_OPTIONS: tuple[int, ...] = (1, 2, 4, 7)


@dataclass(frozen=True)
class ConfigurationSpace:
    """The set of configurations a single function may be assigned.

    The full scheduling space of an application is the Cartesian product of
    the per-function spaces; with ``m`` options per function and ``k``
    functions it has ``m**k`` paths, which is exactly the explosion ESG's
    pruning attacks.
    """

    batch_options: tuple[int, ...] = DEFAULT_BATCH_OPTIONS
    vcpu_options: tuple[int, ...] = DEFAULT_VCPU_OPTIONS
    vgpu_options: tuple[int, ...] = DEFAULT_VGPU_OPTIONS
    _configs: tuple[Configuration, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name, options in (
            ("batch_options", self.batch_options),
            ("vcpu_options", self.vcpu_options),
            ("vgpu_options", self.vgpu_options),
        ):
            if len(options) == 0:
                raise ValueError(f"{name} must not be empty")
            if any(o <= 0 for o in options):
                raise ValueError(f"{name} must contain positive integers, got {options}")
            if len(set(options)) != len(options):
                raise ValueError(f"{name} must not contain duplicates, got {options}")
        configs = tuple(
            Configuration(batch_size=b, vcpus=c, vgpus=g)
            for b in sorted(self.batch_options)
            for c in sorted(self.vcpu_options)
            for g in sorted(self.vgpu_options)
        )
        object.__setattr__(self, "batch_options", tuple(sorted(self.batch_options)))
        object.__setattr__(self, "vcpu_options", tuple(sorted(self.vcpu_options)))
        object.__setattr__(self, "vgpu_options", tuple(sorted(self.vgpu_options)))
        object.__setattr__(self, "_configs", configs)

    # ------------------------------------------------------------------
    # Enumeration helpers
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of configurations per function (``m`` in the paper)."""
        return len(self._configs)

    def configurations(self) -> tuple[Configuration, ...]:
        """Return every configuration (sorted by batch, vcpus, vgpus)."""
        return self._configs

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self._configs)

    def __len__(self) -> int:
        return len(self._configs)

    def __contains__(self, config: Configuration) -> bool:
        return (
            config.batch_size in self.batch_options
            and config.vcpus in self.vcpu_options
            and config.vgpus in self.vgpu_options
        )

    # ------------------------------------------------------------------
    # Commonly used corner points
    # ------------------------------------------------------------------
    @property
    def minimum(self) -> Configuration:
        """The minimum configuration (smallest batch, vCPUs and vGPUs).

        The paper uses this configuration to define the baseline latency
        ``L`` from which SLOs are derived, and as the forced fallback when a
        queue has waited too long in the recheck list.
        """
        return Configuration(
            batch_size=self.batch_options[0],
            vcpus=self.vcpu_options[0],
            vgpus=self.vgpu_options[0],
        )

    @property
    def maximum(self) -> Configuration:
        """The maximum configuration (largest batch, vCPUs and vGPUs)."""
        return Configuration(
            batch_size=self.batch_options[-1],
            vcpus=self.vcpu_options[-1],
            vgpus=self.vgpu_options[-1],
        )

    def restrict_batch(self, max_batch: int) -> "ConfigurationSpace":
        """Return a space whose batch options are capped at ``max_batch``.

        Used when a queue holds fewer jobs than the largest batch option: a
        configuration whose batch exceeds the queue length cannot be formed.
        At least the smallest batch option is always retained.
        """
        ensure_positive_int(max_batch, "max_batch")
        kept = tuple(b for b in self.batch_options if b <= max_batch)
        if not kept:
            kept = (self.batch_options[0],)
        return ConfigurationSpace(
            batch_options=kept,
            vcpu_options=self.vcpu_options,
            vgpu_options=self.vgpu_options,
        )

    @classmethod
    def paper_256(cls) -> "ConfigurationSpace":
        """A 256-configurations-per-function space.

        Section 5.3/5.4 of the paper quotes search times "in the case where
        each function has 256 configurations"; this constructor builds a
        4 x 8 x 8 space of that size for the overhead experiments.
        """
        return cls(
            batch_options=(1, 2, 4, 8),
            vcpu_options=(1, 2, 3, 4, 6, 8, 12, 16),
            vgpu_options=(1, 2, 3, 4, 5, 6, 7, 8),
        )

    @classmethod
    def small(cls) -> "ConfigurationSpace":
        """A compact space used in unit tests and quick examples."""
        return cls(
            batch_options=(1, 2, 4),
            vcpu_options=(1, 2, 4),
            vgpu_options=(1, 2),
        )


def product_space_size(space: ConfigurationSpace, num_functions: int) -> int:
    """Return the size of the joint configuration space ``m**k``.

    Convenience used in documentation/examples to illustrate the explosion
    the paper describes (Section 1: 5 options, 7 functions -> 78K without
    GPU sharing, 476 trillion with the three-dimensional configuration).
    """
    ensure_positive_int(num_functions, "num_functions")
    return space.size**num_functions


__all__.append("product_space_size")
__all__.append("DEFAULT_BATCH_OPTIONS")
__all__.append("DEFAULT_VCPU_OPTIONS")
__all__.append("DEFAULT_VGPU_OPTIONS")
