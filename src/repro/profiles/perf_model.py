"""Analytic performance model for DNN inference functions.

The paper drives its emulation from measured latencies of every function in
every configuration ("The emulations are based on actual performance of the
serverless functions measured on actual machines in various configurations
(batch size, CPU and GPU resource allocations)"), plus Gaussian noise to
model runtime variation.  Only the minimum-configuration latency is
published (Table 3), so this module extends it over the configuration cube
with well-established scaling behaviour of GPU inference serving:

* **Batching** is sub-linear: a batch of ``n`` items costs
  ``t1 * (f_b + (1 - f_b) * n)`` GPU-time where ``f_b`` is the
  fixed-overhead fraction (kernel launch, weight reads).  Larger batches are
  slower per invocation but cheaper per job — the speed/cost tension ESG
  navigates.
* **Multiple vGPUs** accelerate the GPU work (larger MIG share / concurrent
  kernels over the batch) with Amdahl-style diminishing returns
  (``gpu_parallel_fraction``), so richer GPU allocations are faster but
  cost more per job.
* **vCPUs** accelerate the pre/post-processing share of the function
  following Amdahl's law with a parallelisable fraction ``cpu_parallel``.

The model is deliberately simple and fully documented so its assumptions can
be audited; every scheduler (ESG and baselines) sees the *same* model, so
relative comparisons — the thing the paper's evaluation is about — do not
hinge on its absolute accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.profiles.configuration import Configuration
from repro.profiles.specs import FunctionSpec
from repro.utils.validation import ensure_in_range, ensure_non_negative

__all__ = [
    "PerformanceModel",
    "AnalyticalPerformanceModel",
    "NoisyPerformanceModel",
    "NOISE_BUFFER",
]

#: Block size of the buffered noise draws (see ``NoisyPerformanceModel``).
NOISE_BUFFER = 1024


class PerformanceModel:
    """Interface: map ``(function, configuration)`` to an execution latency."""

    def latency_ms(self, spec: FunctionSpec, config: Configuration) -> float:
        """Return the execution latency of one invocation, in milliseconds."""
        raise NotImplementedError

    def throughput_jobs_per_s(self, spec: FunctionSpec, config: Configuration) -> float:
        """Jobs per second this configuration sustains (batch / latency)."""
        latency = self.latency_ms(spec, config)
        return 1000.0 * config.batch_size / latency


@dataclass(frozen=True)
class AnalyticalPerformanceModel(PerformanceModel):
    """Deterministic latency model anchored at the Table 3 measurements.

    Parameters
    ----------
    batch_overhead_fraction:
        ``f_b`` above: fraction of the single-item GPU time that is fixed
        overhead independent of the batch content.
    gpu_parallel_fraction:
        Amdahl parallel fraction of the GPU work with respect to the number
        of vGPUs (larger MIG share / concurrent per-item kernels).
    cpu_parallel_fraction:
        Amdahl parallel fraction of the CPU part with respect to vCPUs.
    cpu_batch_fraction:
        Fraction of the CPU part that is per-batch (amortised) rather than
        per-item.
    """

    batch_overhead_fraction: float = 0.45
    gpu_parallel_fraction: float = 0.90
    cpu_parallel_fraction: float = 0.85
    cpu_batch_fraction: float = 0.30

    def __post_init__(self) -> None:
        ensure_in_range(self.batch_overhead_fraction, 0.0, 1.0, "batch_overhead_fraction")
        ensure_in_range(self.gpu_parallel_fraction, 0.0, 1.0, "gpu_parallel_fraction")
        ensure_in_range(self.cpu_parallel_fraction, 0.0, 1.0, "cpu_parallel_fraction")
        ensure_in_range(self.cpu_batch_fraction, 0.0, 1.0, "cpu_batch_fraction")

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def vgpu_speedup(self, vgpus: int) -> float:
        """Speedup of the GPU work when ``vgpus`` MIG slices are assigned."""
        p = self.gpu_parallel_fraction
        return 1.0 / ((1.0 - p) + p / vgpus)

    def gpu_time_ms(self, spec: FunctionSpec, config: Configuration) -> float:
        """GPU portion of the latency.

        The batch's GPU work grows sub-linearly with the batch size (fixed
        overhead ``f_b``) and is accelerated by additional vGPUs with
        Amdahl-style diminishing returns: the function launches concurrent
        kernels across its MIG slices (Section 3.2 of the paper), so a
        larger GPU share finishes the same batch faster but never perfectly
        linearly.
        """
        f_b = self.batch_overhead_fraction
        work = spec.gpu_ms * (f_b + (1.0 - f_b) * config.batch_size)
        return work / self.vgpu_speedup(config.vgpus)

    def cpu_time_ms(self, spec: FunctionSpec, config: Configuration) -> float:
        """CPU portion of the latency (pre/post-processing).

        Scales with the batch (partially amortised) and shrinks with more
        vCPUs following Amdahl's law.
        """
        f_c = self.cpu_batch_fraction
        work = spec.cpu_ms * (f_c + (1.0 - f_c) * config.batch_size)
        p = self.cpu_parallel_fraction
        speedup = 1.0 / ((1.0 - p) + p / config.vcpus)
        return work / speedup

    # ------------------------------------------------------------------
    # PerformanceModel interface
    # ------------------------------------------------------------------
    def latency_ms(self, spec: FunctionSpec, config: Configuration) -> float:
        """Total execution latency of one (possibly batched) invocation."""
        return self.cpu_time_ms(spec, config) + self.gpu_time_ms(spec, config)


@dataclass
class NoisyPerformanceModel(PerformanceModel):
    """Wraps a deterministic model with multiplicative Gaussian noise.

    The paper: "To accommodate the impact of other runtime factors on the
    performance, the emulations add Gaussian noises to the performance."

    Parameters
    ----------
    base:
        The deterministic model supplying the mean latency.
    rng:
        Random generator for the noise stream.
    sigma:
        Standard deviation of the multiplicative noise (fraction of the mean
        latency).
    floor_fraction:
        Lower clamp expressed as a fraction of the mean latency, so noise can
        never produce non-positive or absurdly small latencies.
    buffered:
        When True (``loop_mode="fast"``), noise factors are drawn from the
        RNG in blocks of :data:`NOISE_BUFFER` and mean latencies are
        memoized per ``(spec, config)``.  A block draw
        (``rng.normal(0.0, sigma, size=n)``) consumes the generator's
        stream exactly like ``n`` scalar draws, and the noise RNG is
        dedicated to this model, so over-drawing past the last sample is
        invisible — returned samples are byte-identical to unbuffered mode.
    """

    base: PerformanceModel
    rng: np.random.Generator
    sigma: float = 0.05
    floor_fraction: float = 0.5
    buffered: bool = False
    _draws: int = field(default=0, repr=False)
    _noise_buf: np.ndarray | None = field(default=None, repr=False)
    _noise_pos: int = field(default=0, repr=False)
    _mean_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        ensure_non_negative(self.sigma, "sigma")
        ensure_in_range(self.floor_fraction, 0.0, 1.0, "floor_fraction")

    def mean_latency_ms(self, spec: FunctionSpec, config: Configuration) -> float:
        """Latency without noise (what the scheduler's profile predicts)."""
        return self.base.latency_ms(spec, config)

    def latency_ms(self, spec: FunctionSpec, config: Configuration) -> float:
        """One noisy sample of the latency."""
        if self.buffered:
            key = (spec, config)
            mean = self._mean_cache.get(key)
            if mean is None:
                mean = self.base.latency_ms(spec, config)
                self._mean_cache[key] = mean
            if self.sigma == 0.0:
                return mean
            buf = self._noise_buf
            if buf is None or self._noise_pos >= len(buf):
                buf = self.rng.normal(0.0, self.sigma, size=NOISE_BUFFER)
                self._noise_buf = buf
                self._noise_pos = 0
            factor = 1.0 + float(buf[self._noise_pos])
            self._noise_pos += 1
            self._draws += 1
            return max(self.floor_fraction * mean, mean * factor)
        mean = self.base.latency_ms(spec, config)
        if self.sigma == 0.0:
            return mean
        factor = 1.0 + float(self.rng.normal(0.0, self.sigma))
        self._draws += 1
        return max(self.floor_fraction * mean, mean * factor)

    @property
    def draws(self) -> int:
        """Number of noisy samples generated (useful in tests)."""
        return self._draws
